//! Run an experiment the way the paper actually did: record a measurement
//! campaign once, then evaluate governors purely by *replaying* the
//! recorded table — no analytical model in the loop.
//!
//! ```text
//! cargo run --release --example replay_experiment
//! ```

use gpm::governors::{PerfTarget, TurboCore};
use gpm::harness::ExecEnv;
use gpm::hw::ConfigSpace;
use gpm::mpc::{MpcConfig, MpcGovernor};
use gpm::sim::{ApuSimulator, OraclePredictor, Platform, ReplayPlatform, SimParams};
use gpm::workloads::workload_by_name;

fn main() {
    let workload = workload_by_name("Spmv").unwrap();

    // 1. The measurement campaign: run each kernel at every configuration
    //    once and freeze the results (Section V's data capture; the full
    //    lattice so hill climbing can roam all five DPM states).
    let sim = ApuSimulator::default();
    let replay = ReplayPlatform::record(&sim, workload.kernels(), &ConfigSpace::full());
    println!(
        "recorded {} measurements for {} distinct kernels",
        replay.len(),
        workload.distinct_kernels()
    );

    // 2. From here on, only the recorded table is consulted.
    let table: &dyn Platform = &replay;
    let env = ExecEnv::new();

    // Baseline: Turbo Core, which also defines the performance target.
    let mut tc = TurboCore::new(table.params().tdp_w);
    let base = env.run(
        table,
        &workload,
        &mut tc,
        PerfTarget::new(1.0, 1.0),
        0,
        false,
    );
    let target = PerfTarget::new(base.ginstructions, base.kernel_time_s);
    println!(
        "Turbo Core (replayed): {:.2} J over {:.1} ms",
        base.total_energy_j(),
        base.wall_time_s() * 1e3
    );

    // MPC with perfect prediction, profiling run then steady state.
    let mut mpc = MpcGovernor::new(
        OraclePredictor::new(&sim),
        SimParams::default(),
        MpcConfig {
            store_truth: true,
            ..MpcConfig::default()
        },
    );
    env.run(table, &workload, &mut mpc, target, 0, true);
    let measured = env.run(table, &workload, &mut mpc, target, 1, true);
    println!(
        "MPC        (replayed): {:.2} J over {:.1} ms — {:.1}% savings, speedup {:.3}",
        measured.total_energy_j(),
        measured.wall_time_s() * 1e3,
        (1.0 - measured.total_energy_j() / base.total_energy_j()) * 100.0,
        base.wall_time_s() / measured.wall_time_s()
    );

    // 3. The table is a portable artifact: serialize, restore, re-verify.
    let json = replay.to_json();
    let restored = ReplayPlatform::from_json(&json).expect("roundtrip");
    let again = {
        let mut tc = TurboCore::new(restored.params().tdp_w);
        env.run(
            &restored,
            &workload,
            &mut tc,
            PerfTarget::new(1.0, 1.0),
            0,
            false,
        )
    };
    assert_eq!(again.total_energy_j(), base.total_energy_j());
    println!(
        "restored table reproduces the baseline bit-for-bit ({} KiB of JSON)",
        json.len() / 1024
    );
}
