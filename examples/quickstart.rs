//! Quickstart: evaluate the adaptive-MPC governor against AMD Turbo Core
//! on one benchmark.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors the paper's protocol end to end: run the measurement
//! campaign and train the Random Forest offline, replay the benchmark once
//! under Turbo Core to fix the performance target, let MPC profile the
//! application on its first invocation, then measure the steady state.

use gpm::harness::metrics::Comparison;
use gpm::harness::{EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm::mpc::HorizonMode;
use gpm::workloads::workload_by_name;

fn main() {
    // 1. Offline phase: measurement campaign + Random-Forest training.
    //    (EvalOptions::default() is the full-fidelity setup; `fast()` cuts
    //    the forest down for quick experimentation.)
    let ctx = EvalContext::build(EvalOptions::fast());
    println!(
        "trained Random Forest: time MAPE {:.1}%, power MAPE {:.1}% (paper: 25% / 12%)",
        ctx.rf_report.time_mape * 100.0,
        ctx.rf_report.power_mape * 100.0
    );

    // 2. Pick a workload. `kmeans` shows the low→high throughput
    //    transition that defeats history-based governors.
    let workload = workload_by_name("kmeans").expect("kmeans is in the suite");
    println!("workload: {workload}");

    // 3. Evaluate the full MPC system (adaptive horizon, α = 5%,
    //    optimizer overheads charged) and the PPK baseline. The execution
    //    environment is clean here — no tracing, no fault injection.
    let env = ExecEnv::new();
    let mpc = env.evaluate(
        &ctx,
        &workload,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let ppk = env.evaluate(&ctx, &workload, Scheme::PpkRf);

    let mpc_c = Comparison::between(&mpc.baseline, &mpc.measured);
    let ppk_c = Comparison::between(&ppk.baseline, &ppk.measured);
    println!(
        "MPC vs Turbo Core: {:+.1}% energy, speedup {:.3}",
        mpc_c.energy_savings_pct, mpc_c.speedup
    );
    println!(
        "PPK vs Turbo Core: {:+.1}% energy, speedup {:.3}",
        ppk_c.energy_savings_pct, ppk_c.speedup
    );

    // 4. Inspect MPC's decisions: horizon per kernel and the configs it
    //    chose.
    let stats = mpc.mpc_stats.expect("MPC scheme records stats");
    println!(
        "average horizon {:.1} of N={} kernels; {} predictor evaluations total",
        stats.average_horizon(),
        workload.len(),
        stats.total_evaluations()
    );
    for k in mpc.measured.per_kernel.iter().take(5) {
        println!(
            "  kernel {:>2} {:<16} -> {} ({:.1} ms)",
            k.position,
            k.name,
            k.config,
            k.time_s * 1e3
        );
    }
}
