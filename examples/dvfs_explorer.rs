//! Explore the DVFS configuration space of a single kernel: full sweep,
//! energy/performance Pareto frontier, and what each search strategy finds.
//!
//! ```text
//! cargo run --release --example dvfs_explorer [kernel]
//! ```
//!
//! `kernel` is one of `compute`, `memory`, `peak`, `unscalable`
//! (default: `peak`).

use gpm::governors::search::{exhaustive_best, hill_climb, EnergyEvaluator};
use gpm::harness::report::{fmt, Table};
use gpm::hw::{ConfigSpace, HwConfig};
use gpm::sim::predictor::KernelSnapshot;
use gpm::sim::{ApuSimulator, KernelCharacteristics, OraclePredictor, SimParams};
use gpm::workloads::{astar, max_flops, read_global_memory_coalesced, write_candidates};

fn pick_kernel(arg: Option<String>) -> KernelCharacteristics {
    match arg.as_deref() {
        Some("compute") => max_flops(),
        Some("memory") => read_global_memory_coalesced(),
        Some("unscalable") => astar(),
        _ => write_candidates(),
    }
}

fn main() {
    let kernel = pick_kernel(std::env::args().nth(1));
    println!("kernel: {kernel}\n");

    let sim = ApuSimulator::noiseless();
    let space = ConfigSpace::paper_campaign();

    // Full sweep: collect (time, energy) for every configuration.
    let mut points: Vec<(HwConfig, f64, f64)> = space
        .iter()
        .map(|cfg| {
            let out = sim.evaluate(&kernel, cfg);
            (cfg, out.time_s, out.energy.total_j())
        })
        .collect();

    // Pareto frontier: no other point is both faster and cheaper.
    points.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut frontier: Vec<&(HwConfig, f64, f64)> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in &points {
        if p.2 < best_energy {
            best_energy = p.2;
            frontier.push(p);
        }
    }

    let mut table = Table::new(vec!["config", "time (ms)", "energy (J)"]);
    for (cfg, t, e) in frontier.iter().take(12) {
        table.row(vec![cfg.to_string(), fmt(t * 1e3, 2), fmt(*e, 3)]);
    }
    println!(
        "energy/performance Pareto frontier ({} of {} configurations):",
        frontier.len(),
        points.len()
    );
    println!("{}", table.render());

    // What do the two search strategies find under a 10%-slack time cap?
    let out = sim.evaluate(&kernel, HwConfig::FAIL_SAFE);
    let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, kernel.clone());
    let eval = EnergyEvaluator::new(OraclePredictor::new(&sim), SimParams::noiseless());
    let cap = out.time_s * 1.10;

    let (ex, ex_evals) = exhaustive_best(&eval, &snap, &space, cap);
    let (hc, hc_evals) = hill_climb(&eval, &snap, HwConfig::FAIL_SAFE, cap);
    if let (Some(ex), Some(hc)) = (ex, hc) {
        println!("under a 10% time cap (vs fail-safe):");
        println!(
            "  exhaustive : {} — {:.3} J in {} evaluations",
            ex.config, ex.energy_j, ex_evals
        );
        println!(
            "  hill climb : {} — {:.3} J in {} evaluations ({:.1}x fewer, {:.1}% extra energy)",
            hc.config,
            hc.energy_j,
            hc_evals,
            ex_evals as f64 / hc_evals as f64,
            (hc.energy_j / ex.energy_j - 1.0) * 100.0
        );
    }
}
