//! Define a *custom* irregular GPGPU application and compare governors on
//! it.
//!
//! ```text
//! cargo run --release --example irregular_app
//! ```
//!
//! This exercises the public workload-building API: you describe each
//! kernel's intrinsic characteristics (compute, memory traffic, caching,
//! CU scaling), assemble the invocation sequence, and hand it to the
//! harness like any built-in benchmark. The app built here is a
//! three-phase pipeline with a high→low→high throughput shape — the
//! pattern where future-aware control matters most.

use gpm::governors::to;
use gpm::harness::metrics::Comparison;
use gpm::harness::report::{fmt, Table};
use gpm::harness::{turbo_core_baseline, EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm::hw::ConfigSpace;
use gpm::mpc::HorizonMode;
use gpm::sim::{KernelCharacteristics, KernelClass};
use gpm::workloads::{Category, Workload};

fn build_pipeline() -> Workload {
    // Phase 1: dense feature extraction — compute-bound, high throughput.
    let extract = KernelCharacteristics::builder("extract_features", 30.0)
        .class(KernelClass::ComputeBound)
        .memory_gb(0.2)
        .cache_hit(0.9)
        .parallel_fraction(0.99)
        .occupancy(0.85)
        .build();
    // Phase 2: sparse graph propagation — memory-bound, low throughput,
    // shrinking frontier.
    let propagate = KernelCharacteristics::builder("propagate", 4.0)
        .class(KernelClass::MemoryBound)
        .memory_gb(1.4)
        .cache_hit(0.25)
        .parallel_fraction(0.94)
        .occupancy(0.4)
        .build();
    // Phase 3: reduction + compaction — balanced.
    let reduce = KernelCharacteristics::builder("reduce_compact", 12.0)
        .class(KernelClass::Balanced)
        .memory_gb(0.5)
        .cache_hit(0.6)
        .parallel_fraction(0.97)
        .occupancy(0.6)
        .build();

    let mut seq = Vec::new();
    for i in 0..6 {
        seq.push(
            extract
                .with_input_scale(1.0 + 0.1 * i as f64)
                .renamed(format!("extract_{i}")),
        );
    }
    for i in 0..8 {
        let scale = 1.8 * (0.8f64).powi(i);
        seq.push(
            propagate
                .with_input_scale(scale)
                .renamed(format!("propagate_{i}")),
        );
    }
    for i in 0..4 {
        seq.push(reduce.with_input_scale(1.2).renamed(format!("reduce_{i}")));
    }
    Workload::new("pipeline", Category::IrregularInputVarying, "E6 P8 R4", seq)
}

fn main() {
    let ctx = EvalContext::build(EvalOptions::fast());
    let app = build_pipeline();
    println!("custom application: {app}\n");

    let schemes = [
        Scheme::TurboCore,
        Scheme::PpkRf,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
        Scheme::TheoreticallyOptimal,
    ];

    let mut table = Table::new(vec![
        "scheme",
        "energy (J)",
        "wall time (ms)",
        "energy savings (%)",
        "speedup",
    ]);
    let env = ExecEnv::new();
    for scheme in schemes {
        let out = env.evaluate(&ctx, &app, scheme);
        let c = Comparison::between(&out.baseline, &out.measured);
        table.row(vec![
            out.label.to_string(),
            fmt(out.measured.total_energy_j(), 2),
            fmt(out.measured.wall_time_s() * 1e3, 1),
            fmt(c.energy_savings_pct, 1),
            fmt(c.speedup, 3),
        ]);
    }
    println!("{}", table.render());

    // Peek at the offline-optimal plan for the first few kernels.
    let (_, target) = turbo_core_baseline(&ctx.sim, &app);
    let plan = to::plan_optimal(
        &ctx.sim,
        app.kernels(),
        &ConfigSpace::paper_campaign(),
        target.total_time_s(),
    );
    println!("Theoretically-optimal per-kernel configurations (first 6):");
    for (k, cfg) in app.kernels().iter().zip(plan.configs.iter()).take(6) {
        println!("  {:<14} -> {}", k.name(), cfg);
    }
}
