//! Implement your own power governor against the `Governor` trait and race
//! it against the paper's schemes.
//!
//! ```text
//! cargo run --release --example custom_governor
//! ```
//!
//! The custom policy here is a simple *race-to-idle* governor: run every
//! kernel at the highest GPU configuration with the CPU parked at P7. It
//! is a surprisingly strong baseline on this class of workloads — and the
//! comparison shows exactly where kernel-aware schemes (PPK/MPC) pull
//! ahead: kernels whose energy optimum is *not* the fastest configuration
//! (peak and unscalable classes).

use gpm::governors::{Governor, GovernorDecision, KernelContext};
use gpm::harness::metrics::Comparison;
use gpm::harness::report::{fmt, Table};
use gpm::harness::{turbo_core_baseline, EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm::hw::{CpuPState, CuCount, GpuDpm, HwConfig, NbState};
use gpm::mpc::HorizonMode;
use gpm::sim::{KernelCharacteristics, KernelOutcome};
use gpm::workloads::suite;

/// Race-to-idle: always the fastest GPU configuration, CPU parked low.
struct RaceToIdle;

impl Governor for RaceToIdle {
    fn name(&self) -> &str {
        "race-to-idle"
    }

    fn select(&mut self, _ctx: &KernelContext) -> GovernorDecision {
        GovernorDecision::instant(HwConfig::new(
            CpuPState::P7,
            NbState::Nb0,
            GpuDpm::Dpm4,
            CuCount::MAX,
        ))
    }

    fn observe(
        &mut self,
        _ctx: &KernelContext,
        _executed_at: HwConfig,
        _outcome: &KernelOutcome,
        _truth: Option<&KernelCharacteristics>,
    ) {
    }
}

fn main() {
    let ctx = EvalContext::build(EvalOptions::fast());
    let env = ExecEnv::new();

    let mut table = Table::new(vec![
        "benchmark",
        "race-to-idle savings (%)",
        "MPC savings (%)",
        "race-to-idle speedup",
        "MPC speedup",
    ]);

    // Benchmarks spanning the four scaling classes.
    for name in ["NBody", "lbm", "kmeans", "hybridsort"] {
        let workload = suite().into_iter().find(|w| w.name() == name).unwrap();
        let (baseline, target) = turbo_core_baseline(&ctx.sim, &workload);

        let mut rti = RaceToIdle;
        let rti_run = env.run(&ctx.sim, &workload, &mut rti, target, 0, false);
        let rti_c = Comparison::between(&baseline, &rti_run);

        let mpc = env.evaluate(
            &ctx,
            &workload,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let mpc_c = Comparison::between(&mpc.baseline, &mpc.measured);

        table.row(vec![
            name.to_string(),
            fmt(rti_c.energy_savings_pct, 1),
            fmt(mpc_c.energy_savings_pct, 1),
            fmt(rti_c.speedup, 3),
            fmt(mpc_c.speedup, 3),
        ]);
    }
    println!("custom governor (race-to-idle) vs the paper's MPC:\n");
    println!("{}", table.render());
    println!("note: on `lbm` (peak kernels) the fastest configuration is not the");
    println!("most efficient one — racing to idle at 8 CUs wastes both time and energy.");
}
