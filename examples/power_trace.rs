//! Capture the 1 ms power trace of a governed run — the view the paper's
//! power-management controller gives (Section V) — and render it as an
//! ASCII strip chart comparing Turbo Core against MPC.
//!
//! ```text
//! cargo run --release --example power_trace [benchmark]
//! ```

use gpm::harness::traces::power_segments;
use gpm::harness::{EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm::mpc::HorizonMode;
use gpm::sim::sampling::{sample_trace, trace_energy_j, PowerSample};
use gpm::workloads::workload_by_name;

fn strip_chart(title: &str, trace: &[PowerSample], max_w: f64) {
    println!("{title}");
    // Downsample to ~40 rows for the terminal.
    let step = (trace.len() / 40).max(1);
    for s in trace.iter().step_by(step) {
        let bar = (s.total_w / max_w * 50.0).round().clamp(0.0, 60.0) as usize;
        println!(
            "  {:>7.1} ms  {:>5.1} W  {}{}",
            s.t_s * 1e3,
            s.total_w,
            "#".repeat(bar),
            if s.label == "mpc-optimizer" {
                "  <- optimizer"
            } else {
                ""
            }
        );
    }
    println!();
}

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "kmeans".to_string());
    let ctx = EvalContext::build(EvalOptions::fast());
    let workload = workload_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name}, falling back to kmeans");
        workload_by_name("kmeans").unwrap()
    });

    let env = ExecEnv::new();
    let tc = env.evaluate(&ctx, &workload, Scheme::TurboCore);
    let mpc = env.evaluate(
        &ctx,
        &workload,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );

    let tc_segments = power_segments(&ctx.sim, &workload, &tc.measured);
    let mpc_segments = power_segments(&ctx.sim, &workload, &mpc.measured);
    let interval = 1e-3; // the paper's 1 ms controller sampling
    let tc_trace = sample_trace(&tc_segments, interval);
    let mpc_trace = sample_trace(&mpc_segments, interval);

    let max_w = tc_trace
        .iter()
        .chain(&mpc_trace)
        .map(|s| s.total_w)
        .fold(f64::MIN, f64::max);

    strip_chart(
        &format!("Turbo Core power trace — {}", workload.name()),
        &tc_trace,
        max_w,
    );
    strip_chart(
        &format!("MPC power trace — {}", workload.name()),
        &mpc_trace,
        max_w,
    );

    println!(
        "integrated from 1 ms samples: Turbo Core {:.2} J, MPC {:.2} J ({:.1}% savings)",
        trace_energy_j(&tc_trace, interval),
        trace_energy_j(&mpc_trace, interval),
        (1.0 - trace_energy_j(&mpc_trace, interval) / trace_energy_j(&tc_trace, interval)) * 100.0
    );
}
