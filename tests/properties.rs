//! Property-based tests over cross-crate invariants.

use gpm::governors::search::{exhaustive_best, hill_climb, EnergyEvaluator};
use gpm::governors::to::{solve_brute, ToSolver};
use gpm::governors::PerfTarget;
use gpm::hw::{ConfigSpace, CpuPState, CuCount, GpuDpm, HwConfig, NbState};
use gpm::mpc::{average_full_horizon, search_order, HorizonGenerator, HorizonMode, ProfiledKernel};
use gpm::pattern::{detect_period, KernelSignature, PatternExtractor};
use gpm::sim::predictor::KernelSnapshot;
use gpm::sim::{ApuSimulator, CounterSet, KernelCharacteristics, OraclePredictor, SimParams};
use proptest::prelude::*;

/// Strategy: an arbitrary (valid) hardware configuration.
fn any_config() -> impl Strategy<Value = HwConfig> {
    (0usize..7, 0usize..4, 0usize..5, 0usize..4).prop_map(|(c, n, g, u)| {
        HwConfig::new(
            CpuPState::from_index(c).unwrap(),
            NbState::from_index(n).unwrap(),
            GpuDpm::from_index(g).unwrap(),
            CuCount::from_index(u).unwrap(),
        )
    })
}

/// Strategy: an arbitrary plausible kernel.
fn any_kernel() -> impl Strategy<Value = KernelCharacteristics> {
    (
        1.0f64..60.0, // compute gops
        0.0f64..3.0,  // memory gb
        0.0f64..1.0,  // cache hit
        0.0f64..0.12, // interference
        0.3f64..1.0,  // parallel fraction
        0.05f64..1.0, // occupancy
        0.0f64..0.05, // fixed time
    )
        .prop_map(|(gops, gb, hit, intf, pf, occ, fixed)| {
            KernelCharacteristics::builder("prop", gops)
                .memory_gb(gb)
                .cache_hit(hit)
                .cache_interference(intf)
                .parallel_fraction(pf)
                .occupancy(occ)
                .fixed_time(fixed)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sim_outputs_are_finite_and_positive(k in any_kernel(), cfg in any_config()) {
        let sim = ApuSimulator::default();
        let out = sim.evaluate(&k, cfg);
        prop_assert!(out.time_s.is_finite() && out.time_s > 0.0);
        prop_assert!(out.power.total_w().is_finite() && out.power.total_w() > 0.0);
        prop_assert!(out.energy.total_j() > 0.0);
        prop_assert!((out.energy.total_j() - out.power.total_w() * out.time_s).abs() < 1e-6);
    }

    #[test]
    fn faster_gpu_clock_never_slows_a_kernel(k in any_kernel(), cfg in any_config()) {
        let sim = ApuSimulator::noiseless();
        if let Some(faster) = cfg.gpu.faster() {
            let mut up = cfg;
            up.gpu = faster;
            let t_base = sim.evaluate(&k, cfg).time_s;
            let t_up = sim.evaluate(&k, up).time_s;
            prop_assert!(t_up <= t_base * 1.0001, "t_up {} vs {}", t_up, t_base);
        }
    }

    #[test]
    fn higher_voltage_rail_draws_more_gpu_dynamic_power(k in any_kernel()) {
        let sim = ApuSimulator::noiseless();
        // Same clocks, CUs; only the GPU voltage request changes via DPM is
        // coupled to frequency, so compare rails via NB state instead.
        let lo = HwConfig::new(CpuPState::P7, NbState::Nb3, GpuDpm::Dpm0, CuCount::MAX);
        let hi = HwConfig::new(CpuPState::P7, NbState::Nb0, GpuDpm::Dpm0, CuCount::MAX);
        prop_assert!(hi.rail_voltage() > lo.rail_voltage());
        let p_lo = sim.evaluate(&k, lo).power.gpu_dyn_w;
        let p_hi = sim.evaluate(&k, hi).power.gpu_dyn_w;
        prop_assert!(p_hi > p_lo * 0.999);
    }

    #[test]
    fn hill_climb_never_beats_exhaustive_but_is_feasible(
        k in any_kernel(),
        slack in 1.0f64..2.0,
    ) {
        let sim = ApuSimulator::noiseless();
        let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k);
        let eval = EnergyEvaluator::new(OraclePredictor::new(&sim), SimParams::noiseless());
        let cap = out.time_s * slack;
        // Hill climbing steps through the full 560-point lattice, so the
        // exhaustive reference must cover the same space.
        let space = ConfigSpace::full();
        let (ex, _) = exhaustive_best(&eval, &snap, &space, cap);
        let (hc, evals) = hill_climb(&eval, &snap, HwConfig::FAIL_SAFE, cap);
        let ex = ex.expect("fail-safe is feasible so exhaustive must find something");
        let hc = hc.expect("hill climb starts feasible");
        prop_assert!(hc.time_s <= cap);
        prop_assert!(hc.energy_j >= ex.energy_j - 1e-9);
        prop_assert!(evals <= 60);
    }

    #[test]
    fn to_dp_is_optimal_vs_brute_force(
        times in prop::collection::vec(prop::collection::vec(1u32..8, 3), 1..5),
        budget_units in 4u32..24,
    ) {
        // Integer-valued toy instances so the DP grid is exact.
        let options: Vec<Vec<(f64, f64)>> = times
            .iter()
            .map(|ts| {
                ts.iter()
                    .enumerate()
                    .map(|(i, &t)| (t as f64, 10.0 / (t as f64) + i as f64))
                    .collect()
            })
            .collect();
        let budget = budget_units as f64;
        // A grid whose cell divides the integer option times exactly, and
        // above the solver's minimum grid of 8, so ceil-rounding is lossless.
        let solver = ToSolver { grid: (budget_units * 4) as usize };
        let dp = solver.solve(&options, budget);
        let brute = solve_brute(&options, budget);
        match (dp, brute) {
            (Some(d), Some((_, be))) => {
                let (t, e) = d.iter().enumerate().fold((0.0, 0.0), |(t, e), (k, &j)| {
                    (t + options[k][j].0, e + options[k][j].1)
                });
                prop_assert!(t <= budget + 1e-9);
                prop_assert!((e - be).abs() < 1e-6, "dp {} brute {}", e, be);
            }
            (None, None) => {}
            (d, b) => prop_assert!(false, "dp {:?} brute {:?}", d, b),
        }
    }

    #[test]
    fn search_order_is_always_a_permutation(
        gis in prop::collection::vec(0.1f64..50.0, 1..40),
        times in prop::collection::vec(0.001f64..0.5, 1..40),
        target in 0.5f64..100.0,
    ) {
        let n = gis.len().min(times.len());
        let profile: Vec<ProfiledKernel> = (0..n)
            .map(|i| ProfiledKernel { position: i, gi: gis[i], time_s: times[i] })
            .collect();
        let mut order = search_order(&profile, target);
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn horizon_is_always_bounded(
        n in 1usize..64,
        t_ppk in 0.0f64..1.0,
        alpha in 0.0f64..0.5,
        records in prop::collection::vec((0.001f64..0.2, 0.0f64..0.01), 0..20),
    ) {
        let mut gen = HorizonGenerator::new(
            HorizonMode::Adaptive { alpha },
            n,
            average_full_horizon(n),
            t_ppk,
            1.0,
        );
        for (i, (t, oh)) in records.iter().enumerate() {
            let h = gen.horizon_for(i);
            prop_assert!(h <= n);
            gen.record(*t, *oh);
        }
    }

    #[test]
    fn periodic_sequences_are_detected(period in 1usize..6, reps in 2usize..6) {
        let base: Vec<usize> = (0..period).collect();
        let mut seq = Vec::new();
        for _ in 0..reps {
            seq.extend(&base);
        }
        let detected = detect_period(&seq).expect("two full periods present");
        prop_assert!(detected <= period);
        // The detected period must actually explain the sequence.
        for i in detected..seq.len() {
            prop_assert_eq!(seq[i], seq[i - detected]);
        }
    }

    #[test]
    fn signatures_are_scale_stable_within_bins(values in prop::collection::vec(1.0f64..1e6, 8)) {
        let arr: [f64; 8] = values.clone().try_into().unwrap();
        let c1 = CounterSet::from_values(arr);
        let sig1 = KernelSignature::from_counters(&c1);
        // A sub-1% perturbation rarely crosses a log2 bin boundary; the
        // property we need is determinism + closeness, not exact equality.
        let jittered: Vec<f64> = values.iter().map(|v| v * 1.001).collect();
        let arr2: [f64; 8] = jittered.try_into().unwrap();
        let sig2 = KernelSignature::from_counters(&CounterSet::from_values(arr2));
        prop_assert!(sig1.distance(&sig2) <= 8);
        prop_assert_eq!(sig1, KernelSignature::from_counters(&c1));
    }

    #[test]
    fn perf_target_cap_is_consistent(
        total_gi in 1.0f64..100.0,
        total_t in 0.1f64..10.0,
        elapsed_frac in 0.0f64..1.0,
        ahead in 0.5f64..2.0,
    ) {
        let target = PerfTarget::new(total_gi, total_t);
        let elapsed_gi = total_gi * elapsed_frac;
        let elapsed_s = total_t * elapsed_frac * ahead;
        let expected = total_gi * 0.05;
        let cap = target.time_cap(elapsed_gi, elapsed_s, expected);
        // Running the next kernel exactly at the cap lands cumulative
        // throughput exactly on target.
        if cap > 0.0 {
            let thr = (elapsed_gi + expected) / (elapsed_s + cap);
            prop_assert!((thr / target.throughput() - 1.0).abs() < 1e-9);
        }
    }
}

#[test]
fn extractor_reference_predicts_any_recorded_sequence() {
    // Deterministic sequence-replay property over several shapes.
    let sim = ApuSimulator::default();
    let kernels = [
        KernelCharacteristics::compute_bound("a", 10.0),
        KernelCharacteristics::memory_bound("b", 1.0),
        KernelCharacteristics::peak("c", 8.0),
    ];
    for pattern in [
        vec![0usize, 1, 2, 1, 0],
        vec![0, 0, 1],
        vec![2, 1, 0, 0, 1, 2],
    ] {
        let mut px = PatternExtractor::new();
        let ids: Vec<_> = pattern
            .iter()
            .map(|&i| {
                let out = sim.evaluate(&kernels[i], HwConfig::FAIL_SAFE);
                px.observe(&out, HwConfig::FAIL_SAFE, None)
            })
            .collect();
        px.end_run();
        for (pos, &id) in ids.iter().enumerate() {
            assert_eq!(px.expected(pos), Some(id));
        }
        assert_eq!(px.lookahead(0, 100), ids);
    }
}
