//! Cross-crate integration tests: the full experiment protocol from
//! measurement campaign to scheme comparison.

use gpm::harness::metrics::Comparison;
use gpm::harness::{turbo_core_baseline, EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm::hw::HwConfig;
use gpm::mpc::HorizonMode;
use gpm::workloads::{suite, workload_by_name};
use std::sync::OnceLock;

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
}

#[test]
fn trained_model_is_in_papers_accuracy_regime() {
    let r = ctx().rf_report;
    assert!(r.time_mape < 0.45, "time MAPE {}", r.time_mape);
    assert!(r.power_mape < 0.25, "power MAPE {}", r.power_mape);
    assert!(r.power_r2 > 0.5, "power R² {}", r.power_r2);
}

#[test]
fn evaluate_scheme_is_deterministic() {
    let w = workload_by_name("EigenValue").unwrap();
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    let a = ExecEnv::new().evaluate(ctx(), &w, scheme);
    let b = ExecEnv::new().evaluate(ctx(), &w, scheme);
    assert_eq!(a.measured.total_energy_j(), b.measured.total_energy_j());
    assert_eq!(a.measured.wall_time_s(), b.measured.wall_time_s());
    assert_eq!(
        a.measured
            .per_kernel
            .iter()
            .map(|k| k.config)
            .collect::<Vec<_>>(),
        b.measured
            .per_kernel
            .iter()
            .map(|k| k.config)
            .collect::<Vec<_>>()
    );
}

#[test]
fn every_scheme_saves_energy_on_every_benchmark() {
    // All schemes park the busy-waiting CPU, so none should ever consume
    // *more* than Turbo Core on this suite.
    for w in suite() {
        for scheme in [
            Scheme::PpkRf,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
            Scheme::TheoreticallyOptimal,
        ] {
            let out = ExecEnv::new().evaluate(ctx(), &w, scheme);
            let c = Comparison::between(&out.baseline, &out.measured);
            assert!(
                c.energy_savings_pct > 0.0,
                "{} on {} lost energy: {:.1}%",
                out.label,
                w.name(),
                c.energy_savings_pct
            );
        }
    }
}

#[test]
fn mpc_keeps_suite_performance_near_target() {
    // The adaptive scheme bounds total performance loss to roughly α = 5%.
    for w in suite() {
        let out = ExecEnv::new().evaluate(
            ctx(),
            &w,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let c = Comparison::between(&out.baseline, &out.measured);
        assert!(
            c.speedup > 0.85,
            "{}: MPC speedup {:.3} lost more than 15%",
            w.name(),
            c.speedup
        );
    }
}

#[test]
fn to_never_misses_its_time_budget_badly() {
    for w in suite() {
        let out = ExecEnv::new().evaluate(ctx(), &w, Scheme::TheoreticallyOptimal);
        // TO plans on the noiseless model; measurement noise may cost a few
        // percent but not more.
        assert!(
            out.measured.kernel_time_s <= out.target.total_time_s() * 1.08,
            "{}: TO time {} vs budget {}",
            w.name(),
            out.measured.kernel_time_s,
            out.target.total_time_s()
        );
    }
}

#[test]
fn mpc_dominates_ppk_on_wall_time_suite_wide() {
    let mut mpc_total = 0.0;
    let mut ppk_total = 0.0;
    for w in suite() {
        let m = ExecEnv::new().evaluate(
            ctx(),
            &w,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let p = ExecEnv::new().evaluate(ctx(), &w, Scheme::PpkRf);
        mpc_total += m.measured.wall_time_s() / m.baseline.wall_time_s();
        ppk_total += p.measured.wall_time_s() / p.baseline.wall_time_s();
    }
    assert!(
        mpc_total < ppk_total,
        "suite-normalized MPC wall {mpc_total} should beat PPK {ppk_total}"
    );
}

#[test]
fn baseline_runs_are_reusable_across_governors() {
    let w = workload_by_name("Spmv").unwrap();
    let (base, target) = turbo_core_baseline(&ctx().sim, &w);
    // Replaying any fixed config against that target must account the same
    // instruction totals.
    let mut gov = gpm::governors::FixedGovernor::new(HwConfig::FAIL_SAFE);
    let run = ExecEnv::new().run(&ctx().sim, &w, &mut gov, target, 0, false);
    assert!((run.ginstructions - base.ginstructions).abs() < 1e-9);
}

#[test]
fn overheads_are_small_under_adaptive_horizon() {
    // Figure 14's regime: sub-percent performance overhead.
    for name in ["Spmv", "hybridsort", "XSBench"] {
        let w = workload_by_name(name).unwrap();
        let out = ExecEnv::new().evaluate(
            ctx(),
            &w,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let p_overhead = out.measured.overhead_time_s / out.baseline.wall_time_s();
        assert!(p_overhead < 0.05, "{name}: overhead fraction {p_overhead}");
    }
}

#[test]
fn profiling_run_uses_fail_safe_first_kernel() {
    let w = workload_by_name("lud").unwrap();
    let out = ExecEnv::new().evaluate(
        ctx(),
        &w,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let prof = out.profiling.expect("MPC profiles on run 0");
    assert_eq!(prof.per_kernel[0].config, HwConfig::FAIL_SAFE);
}
