//! "Shape" tests: the qualitative claims of every paper exhibit, asserted
//! end to end. These are the regression guard for EXPERIMENTS.md.

use gpm::harness::metrics::Comparison;
use gpm::harness::traces::{fig2_sweep, fig3_trace};
use gpm::harness::{EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm::hw::NbState;
use gpm::model::ErrorSpec;
use gpm::mpc::HorizonMode;
use gpm::sim::ApuSimulator;
use gpm::workloads::{
    astar, max_flops, read_global_memory_coalesced, suite, workload_by_name, write_candidates,
};
use std::sync::OnceLock;

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
}

fn compare(scheme: Scheme, workload: &str) -> Comparison {
    let w = workload_by_name(workload).unwrap();
    let out = ExecEnv::new().evaluate(ctx(), &w, scheme);
    Comparison::between(&out.baseline, &out.measured)
}

// ---- Figure 2 ----

#[test]
fn fig2_classes_have_their_documented_shapes() {
    let sim = ApuSimulator::noiseless();
    // (a) compute-bound: CU scaling, NB-insensitive.
    let a = fig2_sweep(&sim, &max_flops());
    let sp = |points: &[gpm::harness::traces::SweepPoint], nb: NbState, cu: u32| {
        points
            .iter()
            .find(|p| p.nb == nb && p.cu == cu)
            .unwrap()
            .speedup
    };
    assert!(sp(&a, NbState::Nb0, 8) > 3.0);
    // (b) memory-bound: plateau from NB2, NB3 collapse.
    let b = fig2_sweep(&sim, &read_global_memory_coalesced());
    assert!((sp(&b, NbState::Nb2, 8) / sp(&b, NbState::Nb0, 8) - 1.0).abs() < 0.06);
    assert!(sp(&b, NbState::Nb3, 8) < 0.75 * sp(&b, NbState::Nb2, 8));
    // (c) peak: interior CU optimum.
    let c = fig2_sweep(&sim, &write_candidates());
    let best = c
        .iter()
        .max_by(|x, y| x.speedup.partial_cmp(&y.speedup).unwrap())
        .unwrap();
    assert!(best.cu < 8, "peak kernel fastest at {} CUs", best.cu);
    // (d) unscalable: < 1.35x spread over the whole sweep.
    let d = fig2_sweep(&sim, &astar());
    let max = d.iter().map(|p| p.speedup).fold(f64::MIN, f64::max);
    assert!(max < 1.35, "unscalable spread {max}");
}

#[test]
fn fig2_class_ordering_survives_mild_counter_noise() {
    // Golden robustness regression: with every measurement routed through
    // the deterministic counter-noise channel at 5% intensity (≤ ±2.5%
    // timing jitter), the four scaling classes of Figure 2 must keep
    // their qualitative shapes — only the numeric thresholds widen.
    use gpm::faults::{FaultChannel, FaultInjector, FaultKey, FaultPlan};
    use gpm::hw::{CpuPState, CuCount, GpuDpm, HwConfig};
    use gpm::sim::KernelCharacteristics;

    let sim = ApuSimulator::noiseless();
    let mut plan = FaultPlan::zero(0xF162);
    plan.counter_noise = FaultChannel::new(1.0, 0.05);

    let cfg_at = |nb: NbState, cu: CuCount| HwConfig::new(CpuPState::P5, nb, GpuDpm::Dpm4, cu);
    let mut site = 0usize;
    let mut noisy_time = |kernel: &KernelCharacteristics, nb: NbState, cu: CuCount| {
        let mut out = sim.evaluate(kernel, cfg_at(nb, cu));
        let key = FaultKey {
            run_index: 0,
            position: site,
        };
        plan.corrupt_observation(key, &mut out);
        site += 1;
        out.time_s
    };
    let mut sweep = |kernel: &KernelCharacteristics| -> Vec<(NbState, u32, f64)> {
        let base = noisy_time(kernel, NbState::Nb3, CuCount::MIN);
        let mut points = Vec::new();
        for &nb in &NbState::ALL {
            for &cu in &CuCount::ALL {
                let t = noisy_time(kernel, nb, cu);
                points.push((nb, cu.get(), base / t));
            }
        }
        points
    };
    let sp = |points: &[(NbState, u32, f64)], nb: NbState, cu: u32| {
        points.iter().find(|p| p.0 == nb && p.1 == cu).unwrap().2
    };

    // (a) compute-bound still scales with CUs.
    let a = sweep(&max_flops());
    assert!(sp(&a, NbState::Nb0, 8) > 2.8);
    // (b) memory-bound still plateaus by NB2 and collapses at NB3.
    let b = sweep(&read_global_memory_coalesced());
    assert!((sp(&b, NbState::Nb2, 8) / sp(&b, NbState::Nb0, 8) - 1.0).abs() < 0.12);
    assert!(sp(&b, NbState::Nb3, 8) < 0.80 * sp(&b, NbState::Nb2, 8));
    // (c) peak still has an interior CU optimum.
    let c = sweep(&write_candidates());
    let best = c
        .iter()
        .max_by(|x, y| x.2.partial_cmp(&y.2).unwrap())
        .unwrap();
    assert!(
        best.1 < 8,
        "peak kernel fastest at {} CUs under noise",
        best.1
    );
    // (d) unscalable still barely moves.
    let d = sweep(&astar());
    let max = d.iter().map(|p| p.2).fold(f64::MIN, f64::max);
    assert!(max < 1.45, "unscalable spread {max} under noise");
}

// ---- Figure 3 ----

#[test]
fn fig3_throughput_transitions_match_paper() {
    let sim = ApuSimulator::noiseless();
    let spmv = fig3_trace(&sim, &workload_by_name("Spmv").unwrap());
    assert!(
        spmv[0] > 1.5 && *spmv.last().unwrap() < 0.5,
        "Spmv high→low"
    );
    let kmeans = fig3_trace(&sim, &workload_by_name("kmeans").unwrap());
    assert!(kmeans[0] < 0.6 && kmeans[10] > 1.0, "kmeans low→high");
    let hybrid = fig3_trace(&sim, &workload_by_name("hybridsort").unwrap());
    // Multiple phase transitions: the sign of (v - 1) flips several times.
    let flips = hybrid
        .windows(2)
        .filter(|w| (w[0] > 1.0) != (w[1] > 1.0))
        .count();
    assert!(flips >= 3, "hybridsort only {flips} phase transitions");
}

// ---- Figure 4 ----

#[test]
fn fig4_ppk_matches_to_on_regular_benchmarks() {
    for name in ["mandelbulbGPU", "NBody"] {
        let ppk = compare(Scheme::PpkOracle, name);
        let to = compare(Scheme::TheoreticallyOptimal, name);
        assert!(
            (ppk.energy_savings_pct - to.energy_savings_pct).abs() < 5.0,
            "{name}: PPK {} vs TO {}",
            ppk.energy_savings_pct,
            to.energy_savings_pct
        );
        assert!((ppk.speedup - to.speedup).abs() < 0.06);
    }
}

#[test]
fn fig4_ppk_trails_to_on_irregular_benchmarks() {
    // The limit-study gap that motivates MPC: summed over the irregular
    // set, oracle-PPK loses performance TO retains.
    let names = ["EigenValue", "Spmv", "hybridsort", "lulesh", "XSBench"];
    let mut ppk_speedup = 0.0;
    let mut to_speedup = 0.0;
    for name in names {
        ppk_speedup += compare(Scheme::PpkOracle, name).speedup;
        to_speedup += compare(Scheme::TheoreticallyOptimal, name).speedup;
    }
    assert!(
        to_speedup > ppk_speedup + 0.15,
        "TO {to_speedup} vs PPK {ppk_speedup} across irregular set"
    );
}

// ---- Figure 8 / 9 ----

#[test]
fn fig8_mpc_saves_substantial_energy_with_small_perf_loss() {
    let mut savings = 0.0;
    let mut speedups = 0.0;
    let all = suite();
    for w in &all {
        let c = compare(
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
            w.name(),
        );
        savings += c.energy_savings_pct;
        speedups += c.speedup;
    }
    let n = all.len() as f64;
    let avg_savings = savings / n;
    let avg_speedup = speedups / n;
    // Paper: 24.8% savings, 1.8% loss. Accept the simulator's band.
    assert!(avg_savings > 18.0, "suite savings {avg_savings}");
    assert!(avg_speedup > 0.93, "suite speedup {avg_speedup}");
}

#[test]
fn fig9_mpc_outperforms_ppk_on_phase_changing_benchmarks() {
    for name in ["Spmv", "srad", "lud"] {
        let mpc = compare(
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
            name,
        );
        let ppk = compare(Scheme::PpkRf, name);
        assert!(
            mpc.speedup >= ppk.speedup - 0.01,
            "{name}: MPC {} vs PPK {}",
            mpc.speedup,
            ppk.speedup
        );
    }
}

// ---- Figure 10 ----

#[test]
fn fig10_lbm_has_the_largest_gpu_savings() {
    // Use the oracle-predicted MPC so the shape is independent of the
    // (test-sized) forest's quality; the realistic run is recorded in
    // EXPERIMENTS.md from the full-fidelity context.
    let mut best = (String::new(), f64::MIN);
    for w in suite() {
        let c = compare(Scheme::MpcOracle, w.name());
        if c.gpu_energy_savings_pct > best.1 {
            best = (w.name().to_string(), c.gpu_energy_savings_pct);
        }
    }
    assert_eq!(
        best.0, "lbm",
        "largest GPU savings was {} ({:.1}%)",
        best.0, best.1
    );
    assert!(best.1 > 15.0, "lbm GPU savings only {:.1}%", best.1);
}

#[test]
fn fig10_cpu_dominates_chipwide_savings() {
    // Section VI-A: most of MPC's savings come from parking the
    // busy-waiting CPU (paper: 75% CPU / 25% GPU).
    let w = workload_by_name("NBody").unwrap();
    let out = ExecEnv::new().evaluate(
        ctx(),
        &w,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let cpu_saved = out.baseline.cpu_energy_j() - out.measured.cpu_energy_j();
    let gpu_saved = out.baseline.gpu_energy_j() - out.measured.gpu_energy_j();
    assert!(cpu_saved > gpu_saved, "CPU {cpu_saved} vs GPU {gpu_saved}");
}

// ---- Figure 12 ----

#[test]
fn fig12_oracle_mpc_captures_most_of_to() {
    let mut mpc_sum = 0.0;
    let mut to_sum = 0.0;
    for name in ["Spmv", "kmeans", "EigenValue", "lbm", "hybridsort"] {
        mpc_sum += compare(Scheme::MpcOracle, name).energy_savings_pct;
        to_sum += compare(Scheme::TheoreticallyOptimal, name).energy_savings_pct;
    }
    let capture = mpc_sum / to_sum;
    assert!(
        capture > 0.85,
        "MPC captured only {:.0}% of TO",
        capture * 100.0
    );
}

// ---- Figure 13 ----

#[test]
fn fig13_results_are_insensitive_to_moderate_prediction_error() {
    let w = "Spmv";
    let perfect = compare(
        Scheme::MpcError {
            spec: ErrorSpec::ERR_0,
        },
        w,
    );
    let err15 = compare(
        Scheme::MpcError {
            spec: ErrorSpec::ERR_15_10,
        },
        w,
    );
    assert!(
        (perfect.energy_savings_pct - err15.energy_savings_pct).abs() < 8.0,
        "perfect {} vs err15 {}",
        perfect.energy_savings_pct,
        err15.energy_savings_pct
    );
}

// ---- Figures 14 / 15 ----

#[test]
fn fig14_adaptive_overheads_are_sub_percent_range() {
    let mut worst = 0.0f64;
    for w in suite() {
        let out = ExecEnv::new().evaluate(
            ctx(),
            &w,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let p = out.measured.overhead_time_s / out.baseline.wall_time_s() * 100.0;
        worst = worst.max(p);
    }
    assert!(
        worst < 5.0,
        "worst-case perf overhead {worst}% exceeds the α bound"
    );
}

#[test]
fn fig15_long_kernel_benchmarks_use_longer_horizons() {
    let long = ExecEnv::new().evaluate(
        ctx(),
        &workload_by_name("XSBench").unwrap(),
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let short = ExecEnv::new().evaluate(
        ctx(),
        &workload_by_name("hybridsort").unwrap(),
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let lf = long.mpc_stats.unwrap().average_horizon_fraction(6);
    let sf = short.mpc_stats.unwrap().average_horizon_fraction(15);
    assert!(
        lf >= sf,
        "XSBench horizon fraction {lf} should be at least hybridsort's {sf}"
    );
}
