//! Integration tests of the `gpm` command-line tool.

use std::process::Command;

fn gpm(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_gpm"))
        .args(args)
        .output()
        .expect("spawn gpm binary");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn list_prints_the_suite() {
    let (stdout, _, ok) = gpm(&["list"]);
    assert!(ok);
    for name in ["mandelbulbGPU", "Spmv", "kmeans", "hybridsort"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn schemes_lists_every_policy() {
    let (stdout, _, ok) = gpm(&["schemes"]);
    assert!(ok);
    for s in ["turbo-core", "ppk", "mpc", "to", "equalizer-perf"] {
        assert!(stdout.contains(s), "missing {s}");
    }
}

#[test]
fn run_produces_valid_json() {
    let (stdout, stderr, ok) = gpm(&[
        "run",
        "--workload",
        "NBody",
        "--scheme",
        "to",
        "--fast",
        "--json",
    ]);
    assert!(ok, "stderr: {stderr}");
    let v: serde_json::Value = serde_json::from_str(&stdout).expect("valid JSON");
    assert_eq!(v["workload"], "NBody");
    assert_eq!(v["scheme"], "TO");
    assert!(v["energy_savings_pct"].as_f64().unwrap() > 0.0);
    assert!(v["speedup"].as_f64().unwrap() > 0.5);
}

#[test]
fn sweep_marks_one_energy_optimum() {
    let (stdout, _, ok) = gpm(&["sweep", "--kernel", "peak"]);
    assert!(ok);
    let marks = stdout.matches('*').count();
    assert_eq!(marks, 1, "expected exactly one optimal mark:\n{stdout}");
}

#[test]
fn trace_prints_one_row_per_invocation() {
    let (stdout, _, ok) = gpm(&["trace", "--workload", "Spmv"]);
    assert!(ok);
    assert_eq!(stdout.lines().count(), 30);
}

#[test]
fn unknown_command_fails_with_usage() {
    let (stdout, _, ok) = gpm(&["frobnicate"]);
    assert!(!ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn run_rejects_unknown_workload_and_scheme() {
    let (_, stderr, ok) = gpm(&["run", "--workload", "nope", "--scheme", "mpc"]);
    assert!(!ok);
    assert!(stderr.contains("unknown workload"));
    let (_, stderr, ok) = gpm(&["run", "--workload", "NBody", "--scheme", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown scheme"));
}
