//! End-to-end replay methodology test: governors evaluated against a
//! recorded measurement table (the paper's actual protocol) must behave
//! exactly as against the live model — and must never step outside the
//! campaign's coverage.

use gpm::governors::{OverheadModel, PerfTarget, PpkGovernor, TurboCore};
use gpm::harness::ExecEnv;
use gpm::hw::ConfigSpace;
use gpm::mpc::{MpcConfig, MpcGovernor};
use gpm::sim::{ApuSimulator, OraclePredictor, Platform, ReplayPlatform, SimParams};
use gpm::workloads::workload_by_name;

/// Records the campaign table for one workload's kernels over the paper's
/// 336-configuration space, plus the full lattice states governors may
/// also visit (fail-safe etc. are inside the campaign already; hill
/// climbing explores all five DPM states, so record the full space).
fn replay_for(sim: &ApuSimulator, workload: &str) -> (gpm::workloads::Workload, ReplayPlatform) {
    let w = workload_by_name(workload).unwrap();
    let replay = ReplayPlatform::record(sim, w.kernels(), &ConfigSpace::full());
    (w, replay)
}

#[test]
fn turbo_core_replay_is_bit_identical_to_live() {
    let sim = ApuSimulator::default();
    let (w, replay) = replay_for(&sim, "EigenValue");
    let run = |platform: &dyn Platform| {
        let mut gov = TurboCore::new(95.0);
        ExecEnv::new().run(platform, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false)
    };
    let live = run(&sim);
    let replayed = run(&replay);
    assert_eq!(live.kernel_time_s, replayed.kernel_time_s);
    assert_eq!(live.total_energy_j(), replayed.total_energy_j());
    assert_eq!(live.per_kernel.len(), replayed.per_kernel.len());
}

#[test]
fn mpc_replay_makes_identical_decisions() {
    let sim = ApuSimulator::default();
    let (w, replay) = replay_for(&sim, "kmeans");
    // Target from a live Turbo Core run.
    let mut tc = TurboCore::new(95.0);
    let base = ExecEnv::new().run(&sim, &w, &mut tc, PerfTarget::new(1.0, 1.0), 0, false);
    let target = PerfTarget::new(base.ginstructions, base.kernel_time_s);

    let run = |platform: &dyn Platform| {
        let mut gov = MpcGovernor::new(
            OraclePredictor::new(&sim),
            SimParams::default(),
            MpcConfig {
                store_truth: true,
                ..MpcConfig::default()
            },
        );
        let env = ExecEnv::new();
        env.run(platform, &w, &mut gov, target, 0, true);
        env.run(platform, &w, &mut gov, target, 1, true)
    };
    let live = run(&sim);
    let replayed = run(&replay);
    assert_eq!(
        live.per_kernel.iter().map(|k| k.config).collect::<Vec<_>>(),
        replayed
            .per_kernel
            .iter()
            .map(|k| k.config)
            .collect::<Vec<_>>(),
        "decision sequences diverged between live and replay"
    );
    assert_eq!(live.total_energy_j(), replayed.total_energy_j());
}

#[test]
fn governors_stay_within_the_full_lattice_coverage() {
    // Running PPK against a full-lattice recording must never panic —
    // i.e. no governor fabricates configurations outside hardware states.
    let sim = ApuSimulator::default();
    let (w, replay) = replay_for(&sim, "hybridsort");
    let mut tc = TurboCore::new(95.0);
    let base = ExecEnv::new().run(&replay, &w, &mut tc, PerfTarget::new(1.0, 1.0), 0, false);
    let target = PerfTarget::new(base.ginstructions, base.kernel_time_s);
    let mut ppk = PpkGovernor::new(
        OraclePredictor::new(&sim),
        SimParams::default(),
        ConfigSpace::paper_campaign(),
        OverheadModel::default(),
    )
    .with_truth_snapshots(true);
    let res = ExecEnv::new().run(&replay, &w, &mut ppk, target, 0, true);
    assert_eq!(res.per_kernel.len(), w.len());
}
