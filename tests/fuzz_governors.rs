//! Governor fuzzing: every policy must uphold its invariants on arbitrary
//! generated applications, not just the curated 15-benchmark suite.

use gpm::faults::FaultPlan;
use gpm::harness::{EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm::hw::ConfigSpace;
use gpm::mpc::HorizonMode;
use gpm::trace::{AggregateSink, TraceSink};
use gpm::workloads::{generate_population, GeneratorParams};
use std::sync::{Arc, OnceLock};

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
}

#[test]
fn all_schemes_uphold_invariants_on_generated_workloads() {
    let population = generate_population(&GeneratorParams::default(), 0xF00D, 12);
    let schemes = [
        Scheme::TurboCore,
        Scheme::PpkRf,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
        Scheme::TheoreticallyOptimal,
        Scheme::Equalizer {
            mode: gpm::governors::EqualizerMode::Efficiency,
        },
    ];
    let space = ConfigSpace::full();
    for w in &population {
        for scheme in schemes {
            let out = ExecEnv::new().evaluate(ctx(), w, scheme);
            let m = &out.measured;
            // Structural invariants.
            assert_eq!(m.per_kernel.len(), w.len(), "{}/{}", out.label, w.name());
            assert!(m.kernel_time_s > 0.0);
            assert!(m.total_energy_j() > 0.0);
            assert!(m.overhead_time_s >= 0.0);
            // Every chosen configuration is a real hardware state.
            for k in &m.per_kernel {
                assert!(
                    space.contains(k.config),
                    "{} chose {:?}",
                    out.label,
                    k.config
                );
            }
            // Energy accounting: totals are component sums.
            let component_sum = m.energy.cpu_j
                + m.energy.gpu_j
                + m.energy.dram_j
                + m.energy.other_j
                + m.overhead_energy.total_j();
            assert!(
                (component_sum - m.total_energy_j()).abs() < 1e-6,
                "{} energy accounting",
                out.label
            );
            // Instructions are workload-determined, not policy-determined.
            assert!(
                (m.ginstructions - out.baseline.ginstructions).abs() < 1e-9,
                "{} changed the instruction count",
                out.label
            );
        }
    }
}

#[test]
fn all_schemes_survive_seeded_fault_schedules() {
    // Deterministic fault schedules at a substantial rate: no governor may
    // panic, leave the hardware configuration space, or produce
    // non-finite accounting — and the injector must actually fire.
    let population = generate_population(&GeneratorParams::default(), 0xBAD5EED, 6);
    let schemes = [
        Scheme::TurboCore,
        Scheme::PpkRf,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
        Scheme::Equalizer {
            mode: gpm::governors::EqualizerMode::Efficiency,
        },
    ];
    let space = ConfigSpace::full();
    let mut total_faults = 0u64;
    for (i, w) in population.iter().enumerate() {
        let plan = FaultPlan::uniform(0x5EED ^ i as u64, 0.15);
        for scheme in schemes {
            let agg = Arc::new(AggregateSink::new());
            let sink: Arc<dyn TraceSink> = agg.clone();
            let env = ExecEnv::new()
                .with_trace(Arc::clone(&sink))
                .with_fault_plan(plan.clone());
            let out = env.evaluate(ctx(), w, scheme);
            let m = &out.measured;
            assert_eq!(m.per_kernel.len(), w.len(), "{}/{}", out.label, w.name());
            assert!(m.kernel_time_s.is_finite() && m.kernel_time_s > 0.0);
            assert!(m.total_energy_j().is_finite() && m.total_energy_j() > 0.0);
            assert!(m.overhead_time_s.is_finite() && m.overhead_time_s >= 0.0);
            assert!(m.transition_time_s.is_finite() && m.transition_time_s >= 0.0);
            for k in &m.per_kernel {
                assert!(
                    space.contains(k.config),
                    "{} chose {:?} under faults",
                    out.label,
                    k.config
                );
                assert!(k.time_s.is_finite() && k.time_s > 0.0);
                assert!(k.energy_j.is_finite() && k.energy_j >= 0.0);
            }
            total_faults += agg.summary().fault_injections;
        }
    }
    assert!(total_faults > 0, "fault schedules never fired");
}

#[test]
fn mpc_horizons_stay_bounded_on_generated_workloads() {
    let population = generate_population(&GeneratorParams::default(), 0xCAFE, 10);
    for w in &population {
        let out = ExecEnv::new().evaluate(
            ctx(),
            w,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let stats = out.mpc_stats.expect("MPC stats");
        assert!(
            stats.horizons.iter().all(|&h| h <= w.len()),
            "{}: horizon exceeded N",
            w.name()
        );
        assert!(stats.misprediction_rate() <= 1.0);
    }
}

#[test]
fn no_scheme_sustains_power_above_tdp() {
    // The package never exceeds TDP by more than transient noise under any
    // policy: all configurations live inside the part's envelope and Turbo
    // Core sheds when pushed.
    let population = generate_population(&GeneratorParams::default(), 0x7D9, 8);
    let tdp = ctx().sim.params().tdp_w;
    for w in &population {
        for scheme in [
            Scheme::TurboCore,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
            Scheme::TheoreticallyOptimal,
        ] {
            let out = ExecEnv::new().evaluate(ctx(), w, scheme);
            for (k, kernel) in out.measured.per_kernel.iter().zip(w.kernels()) {
                let p = ctx().sim.evaluate(kernel, k.config).power.package_w();
                assert!(
                    p <= tdp * 1.10,
                    "{} on {} ran {} at {:.1} W (TDP {tdp})",
                    out.label,
                    w.name(),
                    k.config,
                    p
                );
            }
        }
    }
}

#[test]
fn generated_workloads_keep_schemes_within_sane_perf_band() {
    // No target-constrained scheme should be catastrophically slow
    // (> 2× baseline) on any generated application.
    let population = generate_population(&GeneratorParams::default(), 0xD1CE, 10);
    for w in &population {
        for scheme in [
            Scheme::PpkRf,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        ] {
            let out = ExecEnv::new().evaluate(ctx(), w, scheme);
            let slowdown = out.measured.wall_time_s() / out.baseline.wall_time_s();
            assert!(
                slowdown < 2.0,
                "{} on {}: slowdown {slowdown}",
                out.label,
                w.name()
            );
        }
    }
}
