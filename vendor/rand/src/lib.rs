//! Offline shim of the `rand` 0.8 API surface this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] /
//! [`Rng::gen_bool`], and [`seq::SliceRandom`]'s `shuffle` / `choose`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast, high
//! quality, and fully deterministic for a given seed. Streams differ from
//! real `rand`'s ChaCha-based `StdRng`, which is fine here: the workspace
//! seeds every RNG explicitly and asserts distributional properties, not
//! golden sequences.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed material for [`from_seed`](SeedableRng::from_seed).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut state);
            for (b, s) in chunk.iter_mut().zip(v.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform sampling from a range type.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift reduction
/// with rejection, so small spans carry no modulo bias.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let r = rng.next_u64();
        let m = (r as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        unit_f64(self) < p
    }

    /// A uniformly random `f64` in `[0, 1)`.
    fn gen(&mut self) -> f64 {
        unit_f64(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    1,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded_u64(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..=u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..=u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..=u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let n = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..50).collect::<Vec<_>>(),
            "shuffle left slice untouched"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &v = xs.choose(&mut rng).unwrap();
            seen[v - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
