//! Offline shim of the `serde` facade.
//!
//! The real `serde` could not be vendored in this repository's build
//! environment (no network, no registry cache), so this crate provides the
//! subset the workspace uses: `Serialize` / `Deserialize` traits driven by
//! `#[derive(...)]`, routed through a JSON-shaped [`Content`] data model
//! that `serde_json` (also shimmed) prints and parses.
//!
//! Unlike real serde there is no zero-copy visitor machinery: serializers
//! build a [`Content`] tree and deserializers consume one. That is ample
//! for this workspace (config files, replay tables, reports, traces) and
//! keeps the shim small and auditable.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every shimmed (de)serializer speaks.
///
/// Maps preserve insertion order (fields serialize in declaration order),
/// which keeps JSON output deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also the encoding of non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, insertion-ordered.
    Map(Vec<(Content, Content)>),
}

static NULL: Content = Content::Null;

impl Content {
    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::I64(v) => Some(v as f64),
            Content::U64(v) => Some(v as f64),
            Content::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(v) => Some(v),
            Content::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::I64(v) => u64::try_from(v).ok(),
            Content::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an ordered map.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// Map lookup by string key; `None` for missing keys or non-maps.
    pub fn get(&self, key: &str) -> Option<&Content> {
        self.as_map().and_then(|m| map_get(m, key))
    }
}

impl std::ops::Index<&str> for Content {
    type Output = Content;

    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;

    fn index(&self, idx: usize) -> &Content {
        self.as_array().and_then(|s| s.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Content {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Content {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<bool> for Content {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Ordered-map lookup used by derived `Deserialize` impls.
pub fn map_get<'a>(map: &'a [(Content, Content)], key: &str) -> Option<&'a Content> {
    map.iter()
        .find(|(k, _)| k.as_str() == Some(key))
        .map(|(_, v)| v)
}

/// Deserialization error: a message plus the type being built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError {
            msg: format!("missing field `{field}` while deserializing {ty}"),
        }
    }

    /// The input's shape did not match the target type.
    pub fn expected(what: &str, ty: &str) -> DeError {
        DeError {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> DeError {
        DeError {
            msg: format!("unknown variant `{tag}` of enum {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself into the [`Content`] data model.
pub trait Serialize {
    /// Builds the data-model representation of `self`.
    fn serialize_content(&self) -> Content;
}

/// A type that can rebuild itself from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a data-model tree.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

/// Alias mirroring serde's owned-deserialization bound.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Module aliases so `serde::ser::Serialize` / `serde::de::Deserialize`
/// paths from the real crate keep resolving.
pub mod ser {
    pub use crate::Serialize;
}

/// See [`ser`].
pub mod de {
    pub use crate::{DeError as Error, Deserialize, DeserializeOwned};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                // JSON object keys arrive as strings; accept them too.
                if let Content::Str(s) = c {
                    return s
                        .parse()
                        .map_err(|_| DeError::expected("integer string", stringify!($t)));
                }
                let v = c
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(v)
                    .map_err(|_| DeError::custom(format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn serialize_content(&self) -> Content {
        match i64::try_from(*self) {
            Ok(v) => Content::I64(v),
            Err(_) => Content::U64(*self),
        }
    }
}

impl Deserialize for u64 {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        if let Content::Str(s) = c {
            return s
                .parse()
                .map_err(|_| DeError::expected("integer string", "u64"));
        }
        c.as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", "u64"))
    }
}

impl Serialize for u128 {
    fn serialize_content(&self) -> Content {
        match u64::try_from(*self) {
            Ok(v) => v.serialize_content(),
            Err(_) => Content::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        if let Some(v) = c.as_u64() {
            return Ok(v as u128);
        }
        c.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| DeError::expected("unsigned integer", "u128"))
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        if self.is_finite() {
            Content::F64(*self)
        } else {
            Content::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            // Non-finite floats serialize as null (as in serde_json);
            // round-trip them back as NaN rather than failing.
            Content::Null => Ok(f64::NAN),
            _ => c.as_f64().ok_or_else(|| DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        (*self as f64).serialize_content()
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(c).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        let s = c
            .as_str()
            .ok_or_else(|| DeError::expected("string", "char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::expected("single-character string", "char")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        self.as_slice().serialize_content()
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        let v = Vec::<T>::deserialize_content(c)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| DeError::custom(format!("expected {N} elements, found {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$i.serialize_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let expected = [$($i),+].len();
                if s.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected a {expected}-tuple, found {} elements", s.len()
                    )));
                }
                Ok(($($t::deserialize_content(&s[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

fn key_to_content(k: &Content) -> Content {
    k.clone()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_to_content(&k.serialize_content()),
                        v.serialize_content(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((K::deserialize_content(k)?, V::deserialize_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_content(&self) -> Content {
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.serialize_content(), v.serialize_content()))
            .collect();
        // Hash iteration order is unstable; sort by rendered key for
        // deterministic output.
        entries.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        Content::Map(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        c.as_map()
            .ok_or_else(|| DeError::expected("map", "HashMap"))?
            .iter()
            .map(|(k, v)| Ok((K::deserialize_content(k)?, V::deserialize_content(v)?)))
            .collect()
    }
}

impl Serialize for Content {
    fn serialize_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        Ok(c.clone())
    }
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn deserialize_content(_: &Content) -> Result<Self, DeError> {
        Ok(())
    }
}

impl Serialize for std::time::Duration {
    fn serialize_content(&self) -> Content {
        Content::F64(self.as_secs_f64())
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        let secs = f64::deserialize_content(c)?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(DeError::expected("non-negative seconds", "Duration"));
        }
        Ok(std::time::Duration::from_secs_f64(secs))
    }
}
