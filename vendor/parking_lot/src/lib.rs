//! Offline shim of `parking_lot`: the poison-free `Mutex`/`RwLock` API
//! over `std::sync` primitives. Poisoned locks are recovered instead of
//! panicking, matching parking_lot's semantics of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
