//! Offline shim of `serde_json`: compact and pretty JSON printing plus a
//! recursive-descent parser, both speaking the vendored `serde` crate's
//! [`Content`](serde::Content) data model (re-exported here as [`Value`]).
//!
//! Floats print via Rust's shortest-round-trip formatting, matching the
//! real crate's `float_roundtrip` feature closely enough for this
//! workspace's replay tables and reports. Non-finite floats serialize as
//! `null`, exactly like real `serde_json`.

use serde::{Content, DeserializeOwned, Serialize};
use std::fmt;

/// JSON value — alias of the vendored serde data model.
pub type Value = Content;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.serialize_content(), &mut out);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.serialize_content(), &mut out, 0);
    Ok(out)
}

/// Serializes `value` into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize_content())
}

/// Parses JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize_content(&value)?)
}

/// Rebuilds a deserializable type from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    Ok(T::deserialize_content(&value)?)
}

// ---------------------------------------------------------------- printer

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(v: f64, out: &mut String) {
    if v.is_finite() {
        // Shortest representation that round-trips (Rust's float Display).
        let s = format!("{v}");
        out.push_str(&s);
        // Ensure the token stays a float on re-parse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(n) => write_number(*n, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Content::Str(s) => write_escaped(s, out),
                    other => {
                        // JSON object keys must be strings; render scalar
                        // keys through their compact form.
                        let mut tmp = String::new();
                        write_compact(other, &mut tmp);
                        write_escaped(&tmp, out);
                    }
                }
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(indent + 1));
                match k {
                    Content::Str(s) => write_escaped(s, out),
                    other => {
                        let mut tmp = String::new();
                        write_compact(other, &mut tmp);
                        write_escaped(&tmp, out);
                    }
                }
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            b'"' => self.string().map(Content::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}, found `{}`",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((Content::Str(key), val));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}, found `{}`",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| Error::new("truncated surrogate"))?;
                                    self.pos += 6;
                                    let lo = u32::from_str_radix(
                                        std::str::from_utf8(lo_hex)
                                            .map_err(|_| Error::new("invalid surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| Error::new("invalid surrogate"))?;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| Error::new("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: find the full character in the
                    // source slice (input was a &str, so it is valid).
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("invalid UTF-8"))?;
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected a value at byte {start}")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (json, value) in [
            ("null", Content::Null),
            ("true", Content::Bool(true)),
            ("-42", Content::I64(-42)),
            ("1.5", Content::F64(1.5)),
            ("\"hi\\n\"", Content::Str("hi\n".into())),
        ] {
            let parsed: Value = from_str(json).unwrap();
            assert_eq!(parsed, value);
            let printed = to_string(&value).unwrap();
            let reparsed: Value = from_str(&printed).unwrap();
            assert_eq!(reparsed, value);
        }
    }

    #[test]
    fn float_precision_round_trips() {
        for v in [0.1, 1e-12, 123456.789012345, f64::MAX, 2.0f64.powi(-40)] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Content::Map(vec![
            (
                Content::Str("xs".into()),
                Content::Seq(vec![Content::I64(1), Content::F64(2.5)]),
            ),
            (
                Content::Str("s".into()),
                Content::Str("a \"quoted\" string".into()),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Value>(&compact).unwrap(), v);
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn integer_floats_stay_floats() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
        assert_eq!(from_str::<Value>(&s).unwrap(), Content::F64(3.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
