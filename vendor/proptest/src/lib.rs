//! Offline shim of the `proptest` API surface this workspace uses:
//! range / tuple / mapped strategies, `prop_oneof!` unions,
//! `prop::collection::vec`, `prop::option::of`, the `proptest!` macro
//! with an optional `#![proptest_config(...)]` header, and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Inputs are generated deterministically (seeded per test name and case
//! index), so failures reproduce across runs. There is no shrinking: a
//! failing case reports the case number and panics with the assertion
//! message, which is enough to re-run and debug deterministically.

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value using `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rand::Rng::gen_range(rng, self.start as f64..self.end as f64) as f32
        }
    }

    /// `bool` strategy: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }

    /// A uniform choice between boxed strategies of one value type —
    /// the strategy behind `prop_oneof!`. Built fluently so the macro
    /// expansion needs no `rand` types in the calling crate.
    pub struct Union<T> {
        arms: Vec<Box<dyn Fn(&mut StdRng) -> T>>,
    }

    impl<T> Union<T> {
        /// An empty union; combine with [`Union::or`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Union<T> {
            Union { arms: Vec::new() }
        }

        /// Adds one equally weighted arm.
        pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Union<T> {
            self.arms.push(Box::new(move |rng| s.generate(rng)));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
            let i = rand::Rng::gen_range(rng, 0..self.arms.len());
            (self.arms[i])(rng)
        }
    }
}

/// Runner configuration and deterministic seeding.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Builds the deterministic per-case RNG, so the `proptest!` expansion
/// never needs `rand` in the calling crate's dependency graph.
#[doc(hidden)]
pub fn __rng_for(seed: u64) -> rand::rngs::StdRng {
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// FNV-1a over the test identity and case index: the per-case RNG seed.
#[doc(hidden)]
pub fn __case_seed(module: &str, test: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in module.bytes().chain(test.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Inclusive-exclusive length bounds for collection strategies.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy producing `Vec`s of an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A `Vec` strategy with the given element strategy and length.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.lo..self.size.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy producing `Option`s of an inner strategy.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some(inner)` or `None` with equal probability.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
                if rng.gen_bool(0.5) {
                    Some(self.inner.generate(rng))
                } else {
                    None
                }
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// A uniform choice among strategies yielding one value type.
/// Unlike upstream proptest, arms are unweighted (`n => strat` weights
/// are not supported); the shimmed call sites only use uniform arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strat))+
    };
}

/// Defines property tests. Accepts an optional
/// `#![proptest_config(...)]` header followed by `fn name(arg in strategy,
/// ...)` items; each becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let __seed =
                    $crate::__case_seed(module_path!(), stringify!($name), __case);
                let mut __rng = $crate::__rng_for(__seed);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a property; panics on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property; panics on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 1u32..10, (a, b) in (0.0f64..1.0, 5i64..=9)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_bounds(
            xs in prop::collection::vec(0u8..=255, 2..6),
            fixed in prop::collection::vec(1usize..4, 3),
        ) {
            prop_assert!((2..6).contains(&xs.len()));
            prop_assert_eq!(fixed.len(), 3);
        }

        #[test]
        fn prop_map_applies(v in (1u32..5).prop_map(|x| x * 10)) {
            prop_assert!(v % 10 == 0 && (10..50).contains(&v));
        }

        #[test]
        fn oneof_draws_from_every_arm(
            vs in prop::collection::vec(
                prop_oneof![Just(1u32), (10u32..20), (100u32..200).prop_map(|x| x)],
                64,
            ),
        ) {
            prop_assert!(vs.iter().all(|v| {
                *v == 1 || (10..20).contains(v) || (100..200).contains(v)
            }));
        }

        #[test]
        fn option_of_yields_both_variants(
            vs in prop::collection::vec(prop::option::of(5u8..10), 64),
        ) {
            prop_assert!(vs
                .iter()
                .flatten()
                .all(|v| (5..10).contains(v)));
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            crate::__case_seed("m", "t", 3),
            crate::__case_seed("m", "t", 3)
        );
        assert_ne!(
            crate::__case_seed("m", "t", 3),
            crate::__case_seed("m", "t", 4)
        );
    }
}
