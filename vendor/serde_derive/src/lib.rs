//! Offline shim of `serde_derive`.
//!
//! Generates impls of the vendored `serde` facade's `Serialize` /
//! `Deserialize` traits (the `Content`-tree model, not real serde's
//! visitor machinery). Supported item shapes cover everything this
//! workspace derives:
//!
//! * structs with named fields (`#[serde(skip)]`, `#[serde(default)]`);
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays);
//! * unit structs;
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generic items are intentionally unsupported — the derive fails loudly
//! rather than generating subtly wrong bounds.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone, Copy)]
struct FieldAttrs {
    skip: bool,
    default: bool,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Parsed {
    name: String,
    item: Item,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive shim emitted invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive shim emitted invalid Deserialize impl")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Parsed {
    let mut tokens = input.into_iter().peekable();
    // Outer attributes and visibility.
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let item = match kind.as_str() {
        "struct" => Item::Struct(parse_struct_shape(&mut tokens, &name)),
        "enum" => Item::Enum(parse_enum_variants(&mut tokens, &name)),
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Parsed { name, item }
}

fn parse_struct_shape(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
    name: &str,
) -> Shape {
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream(), name))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
        other => panic!("serde_derive shim: malformed struct `{name}`: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream, ty: &str) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let attrs = collect_serde_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let field_name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name in `{ty}`, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                panic!("serde_derive shim: expected `:` after `{field_name}`, found {other:?}")
            }
        }
        skip_type_until_comma(&mut tokens);
        fields.push(Field {
            name: field_name,
            attrs,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    fields + usize::from(saw_token)
}

fn parse_enum_variants(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
    name: &str,
) -> Vec<Variant> {
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive shim: malformed enum `{name}`: {other:?}"),
    };
    let mut tokens = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        let _ = collect_serde_attrs(&mut tokens); // variant attrs (e.g. #[default]) are ignored
        let variant_name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant in `{name}`, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream(), name);
                tokens.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Optional discriminant, then the separating comma.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        variants.push(Variant {
            name: variant_name,
            shape,
        });
    }
    variants
}

fn skip_attributes(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let _ = collect_serde_attrs(tokens);
}

/// Consumes leading `#[...]` attributes, returning any `serde(...)` options.
fn collect_serde_attrs(
    tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>,
) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        let Some(TokenTree::Group(g)) = tokens.next() else {
            panic!("serde_derive shim: dangling `#`");
        };
        let mut inner = g.stream().into_iter();
        let Some(TokenTree::Ident(id)) = inner.next() else {
            continue;
        };
        if id.to_string() != "serde" {
            continue;
        }
        let Some(TokenTree::Group(args)) = inner.next() else {
            continue;
        };
        for tt in args.stream() {
            if let TokenTree::Ident(opt) = tt {
                match opt.to_string().as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                    "default" => attrs.default = true,
                    other => panic!("serde_derive shim: unsupported serde attribute `{other}`"),
                }
            }
        }
    }
    attrs
}

fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

/// Consumes a field's type: everything up to the next comma at angle-depth
/// zero. Parenthesised and bracketed sub-trees arrive as single groups, so
/// only `<`/`>` nesting needs manual tracking.
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut depth = 0i32;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                tokens.next();
                return;
            }
            _ => {}
        }
        tokens.next();
    }
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.item {
        Item::Struct(Shape::Named(fields)) => {
            let mut s = String::from(
                "let mut __m: Vec<(::serde::Content, ::serde::Content)> = Vec::new();\n",
            );
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                s.push_str(&format!(
                    "__m.push((::serde::Content::Str(String::from(\"{0}\")), \
                     ::serde::Serialize::serialize_content(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Content::Map(__m)");
            s
        }
        Item::Struct(Shape::Tuple(1)) => {
            "::serde::Serialize::serialize_content(&self.0)".to_string()
        }
        Item::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", elems.join(", "))
        }
        Item::Struct(Shape::Unit) => "::serde::Content::Null".to_string(),
        Item::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(\
                         ::serde::Content::Str(String::from(\"{vn}\")), \
                         ::serde::Serialize::serialize_content(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(String::from(\"{vn}\")), \
                             ::serde::Content::Seq(vec![{elems}]))]),\n",
                            binds = binds.join(", "),
                            elems = elems.join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.attrs.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    format!("{0}: __b_{0}", f.name)
                                }
                            })
                            .collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.attrs.skip)
                            .map(|f| {
                                format!(
                                    "(::serde::Content::Str(String::from(\"{0}\")), \
                                     ::serde::Serialize::serialize_content(__b_{0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(String::from(\"{vn}\")), \
                             ::serde::Content::Map(vec![{entries}]))]),\n",
                            binds = binds.join(", "),
                            entries = entries.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}\n"
    )
}

fn named_field_builders(fields: &[Field], ty: &str, map_expr: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let n = &f.name;
        if f.attrs.skip {
            s.push_str(&format!("{n}: ::core::default::Default::default(),\n"));
        } else if f.attrs.default {
            s.push_str(&format!(
                "{n}: match ::serde::map_get({map_expr}, \"{n}\") {{\n\
                     Some(__v) => ::serde::Deserialize::deserialize_content(__v)?,\n\
                     None => ::core::default::Default::default(),\n\
                 }},\n"
            ));
        } else {
            s.push_str(&format!(
                "{n}: match ::serde::map_get({map_expr}, \"{n}\") {{\n\
                     Some(__v) => ::serde::Deserialize::deserialize_content(__v)?,\n\
                     None => return Err(::serde::DeError::missing_field(\"{n}\", \"{ty}\")),\n\
                 }},\n"
            ));
        }
    }
    s
}

fn gen_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.item {
        Item::Struct(Shape::Named(fields)) => {
            let builders = named_field_builders(fields, name, "__m");
            format!(
                "match __c {{\n\
                     ::serde::Content::Map(__m) => Ok({name} {{\n{builders}}}),\n\
                     _ => Err(::serde::DeError::expected(\"map\", \"{name}\")),\n\
                 }}"
            )
        }
        Item::Struct(Shape::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_content(__c)?))")
        }
        Item::Struct(Shape::Tuple(n)) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_content(&__s[{i}])?"))
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Seq(__s) if __s.len() == {n} => \
                         Ok({name}({elems})),\n\
                     _ => Err(::serde::DeError::expected(\"{n}-element array\", \"{name}\")),\n\
                 }}",
                elems = elems.join(", "),
            )
        }
        Item::Struct(Shape::Unit) => format!("{{ let _ = __c; Ok({name}) }}"),
        Item::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Also accept the {"Variant": null} form.
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => {{ let _ = __payload; Ok({name}::{vn}) }},\n"
                        ));
                    }
                    Shape::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_content(__payload)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_content(&__s[{i}])?")
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                                 ::serde::Content::Seq(__s) if __s.len() == {n} => \
                                     Ok({name}::{vn}({elems})),\n\
                                 _ => Err(::serde::DeError::expected(\
                                     \"{n}-element array\", \"{name}::{vn}\")),\n\
                             }},\n",
                            elems = elems.join(", "),
                        ));
                    }
                    Shape::Named(fields) => {
                        let builders = named_field_builders(fields, name, "__vm");
                        payload_arms.push_str(&format!(
                            "\"{vn}\" => match __payload {{\n\
                                 ::serde::Content::Map(__vm) => Ok({name}::{vn} {{\n{builders}}}),\n\
                                 _ => Err(::serde::DeError::expected(\"map\", \"{name}::{vn}\")),\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                     ::serde::Content::Str(__tag) => match __tag.as_str() {{\n\
                         {unit_arms}\
                         __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                     }},\n\
                     ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = &__m[0];\n\
                         match __tag.as_str().unwrap_or_default() {{\n\
                             {payload_arms}\
                             __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                         }}\n\
                     }},\n\
                     _ => Err(::serde::DeError::expected(\"string or single-entry map\", \"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_content(__c: &::serde::Content) \
                 -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}
