//! Offline shim of `crossbeam`'s scoped threads, implemented over
//! `std::thread::scope` (stable since Rust 1.63). Matches the crossbeam
//! calling convention this workspace uses: `crossbeam::scope(|s| ...)`
//! returning `Result`, with spawn closures receiving a scope handle for
//! nested spawns.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scoped-thread namespace, mirroring `crossbeam::thread`.
pub mod thread {
    use super::*;

    /// Handle for spawning threads inside a [`scope`] invocation.
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// allowing nested spawns, and its result is available through the
        /// returned join handle.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope in which spawned threads may borrow from the
    /// enclosing environment; joins them all before returning. A panic in
    /// any spawned thread (or in `f`) surfaces as `Err`, like crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::{scope, Scope};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .expect("scope succeeds");
        assert_eq!(total, 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_handle() {
        let out = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().expect("inner join") * 2)
                .join()
                .expect("outer join")
        })
        .expect("scope succeeds");
        assert_eq!(out, 42);
    }
}
