//! Offline shim of the `criterion` benchmarking API this workspace uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple calibrated wall-clock loop: each benchmark is
//! warmed up, the iteration count is scaled to a target sample duration,
//! and the mean/min time per iteration is printed. No statistics engine,
//! no HTML reports — enough to compare magnitudes and catch regressions
//! by eye or in CI logs.

use std::time::{Duration, Instant};

/// Controls how much setup output is batched per timing measurement.
/// Only the variants used by this workspace exist; all behave the same
/// (one setup per routine invocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state; setup runs outside the timed section.
    SmallInput,
    /// Larger per-iteration state; same behavior in this shim.
    LargeInput,
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Times `routine`, calling it many times per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many calls fit in ~5ms?
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` with fresh untimed `setup` output per call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<40} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "{name:<40} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: default_sample_size(),
        }
    }
}

fn default_sample_size() -> usize {
    // CI smoke runs set GPM_BENCH_FAST=1 to keep wall time small.
    if std::env::var_os("GPM_BENCH_FAST").is_some() {
        3
    } else {
        20
    }
}

impl Criterion {
    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        };
        f(&mut b);
        report(name, &samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name);
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        };
        f(&mut b);
        report(&full, &samples);
        self
    }

    /// Ends the group. Exists for API compatibility.
    pub fn finish(self) {}
}

/// Re-export for `b.iter(|| black_box(...))` call sites that import it
/// from criterion rather than `std::hint`.
pub use std::hint::black_box;

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        c.sample_size(2);
        c.bench_function("shim/add", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }

    #[test]
    fn groups_and_batched_iteration_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).ends_with(" s"));
    }
}
