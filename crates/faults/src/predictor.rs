//! A predictor wrapper injecting deterministic outlier spikes.

use crate::injector::TAG_SPIKE;
use crate::plan::FaultPlan;
use crate::rng::{hash_words, mix64, unit_f64};
use gpm_hw::HwConfig;
use gpm_sim::predictor::KernelSnapshot;
use gpm_sim::{PowerPerfEstimate, PowerPerfPredictor, NUM_COUNTERS};

/// Wraps any [`PowerPerfPredictor`], replacing a deterministic slice of
/// its estimates with outliers (per the plan's `predictor_spike`
/// channel).
///
/// The spike decision is keyed on the *prediction inputs* — snapshot
/// counter bits, measured-at configuration, and candidate configuration —
/// never on call order. Optimizers re-evaluate the same (snapshot,
/// config) pair repeatedly while hill climbing and rely on consistent
/// answers; a call-order key would silently break that contract.
///
/// With the channel off the wrapper is value-identical to the inner
/// predictor.
#[derive(Debug, Clone)]
pub struct FaultyPredictor<P> {
    inner: P,
    plan: FaultPlan,
}

impl<P> FaultyPredictor<P> {
    /// Wraps `inner` under `plan`'s `predictor_spike` channel.
    pub fn new(inner: P, plan: &FaultPlan) -> FaultyPredictor<P> {
        FaultyPredictor {
            inner,
            plan: plan.clone(),
        }
    }

    /// The wrapped predictor.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: PowerPerfPredictor> PowerPerfPredictor for FaultyPredictor<P> {
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate {
        let mut est = self.inner.predict(snapshot, cfg);
        let ch = self.plan.predictor_spike;
        if ch.is_off() {
            return est;
        }
        let mut words = [0u64; NUM_COUNTERS + 4];
        words[0] = TAG_SPIKE;
        for (w, v) in words[1..=NUM_COUNTERS]
            .iter_mut()
            .zip(snapshot.counters.values())
        {
            *w = v.to_bits();
        }
        words[NUM_COUNTERS + 1] = snapshot.ginstructions.to_bits();
        words[NUM_COUNTERS + 2] = snapshot.measured_at.dense_index() as u64;
        words[NUM_COUNTERS + 3] = cfg.dense_index() as u64;
        let h = hash_words(self.plan.seed, &words);
        if unit_f64(h) >= ch.rate {
            return est;
        }
        let sub = mix64(h);
        if unit_f64(mix64(sub ^ 1)) < 0.15 {
            // Non-finite outlier: anomaly detection must reject it.
            est.time_s = f64::NAN;
        } else {
            est.time_s *= 1.0 + ch.intensity * (1.0 + 7.0 * unit_f64(mix64(sub ^ 2)));
            est.gpu_power_w *= 1.0 + ch.intensity * unit_f64(mix64(sub ^ 3));
        }
        est
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_sim::{ApuSimulator, KernelCharacteristics, OraclePredictor};

    fn snapshot() -> KernelSnapshot {
        let sim = ApuSimulator::noiseless();
        let k = KernelCharacteristics::memory_bound("mb", 2.0);
        let out = sim.evaluate_exact(&k, HwConfig::FAIL_SAFE);
        KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k)
    }

    fn oracle() -> OraclePredictor {
        OraclePredictor::new(&ApuSimulator::noiseless())
    }

    #[test]
    fn zero_plan_is_value_identical() {
        let inner = oracle();
        let wrapped = FaultyPredictor::new(oracle(), &FaultPlan::zero(5));
        let snap = snapshot();
        for cfg in [HwConfig::FAIL_SAFE, HwConfig::MAX_PERF, HwConfig::MPC_HOST] {
            assert_eq!(wrapped.predict(&snap, cfg), inner.predict(&snap, cfg));
        }
        assert_eq!(wrapped.name(), "oracle");
    }

    #[test]
    fn spikes_are_deterministic_across_calls() {
        let wrapped = FaultyPredictor::new(oracle(), &FaultPlan::uniform(9, 0.5));
        let snap = snapshot();
        for cfg in [HwConfig::FAIL_SAFE, HwConfig::MAX_PERF] {
            let a = wrapped.predict(&snap, cfg);
            let b = wrapped.predict(&snap, cfg);
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            assert_eq!(a.gpu_power_w.to_bits(), b.gpu_power_w.to_bits());
        }
    }

    #[test]
    fn full_rate_spikes_every_estimate() {
        let inner = oracle();
        let wrapped = FaultyPredictor::new(oracle(), &FaultPlan::uniform(13, 1.0));
        let snap = snapshot();
        let mut spiked = 0;
        let mut non_finite = 0;
        for cfg in gpm_hw::ConfigSpace::paper_campaign().iter().take(64) {
            let clean = inner.predict(&snap, cfg);
            let noisy = wrapped.predict(&snap, cfg);
            if !noisy.time_s.is_finite() {
                non_finite += 1;
            } else if noisy.time_s > clean.time_s {
                spiked += 1;
            }
        }
        assert_eq!(spiked + non_finite, 64);
        assert!(non_finite > 0, "no non-finite outliers in 64 draws");
        assert!(spiked > 0, "no finite spikes in 64 draws");
    }
}
