//! Deterministic fault randomness: a splitmix64-style hash chain.
//!
//! Every draw is a pure function of `(plan seed, channel tag, site key)`,
//! so fault schedules replay bit-identically regardless of call order,
//! thread interleaving, or which other channels fired first. This is the
//! property that makes a faulted campaign a *reproducible experiment*
//! rather than a flaky one.

/// One splitmix64 scrambling round (Steele, Lea & Flood's finalizer).
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds one word into a running hash state.
pub fn fold(state: u64, word: u64) -> u64 {
    mix64(state ^ word.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Hashes an arbitrary word sequence into one 64-bit draw.
pub fn hash_words(seed: u64, words: &[u64]) -> u64 {
    let mut h = mix64(seed);
    for &w in words {
        h = fold(h, w);
    }
    h
}

/// Maps a hash to a uniform f64 in `[0, 1)` using the top 53 bits.
pub fn unit_f64(hash: u64) -> f64 {
    (hash >> 11) as f64 / (1u64 << 53) as f64
}

/// Maps a hash to a uniform f64 in `[-1, 1)`.
pub fn signed_unit_f64(hash: u64) -> f64 {
    2.0 * unit_f64(hash) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_inputs() {
        assert_eq!(hash_words(7, &[1, 2, 3]), hash_words(7, &[1, 2, 3]));
        assert_ne!(hash_words(7, &[1, 2, 3]), hash_words(8, &[1, 2, 3]));
        assert_ne!(hash_words(7, &[1, 2, 3]), hash_words(7, &[1, 3, 2]));
    }

    #[test]
    fn unit_draws_stay_in_range_and_fill_it() {
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for i in 0..10_000u64 {
            let u = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
            let s = signed_unit_f64(mix64(i));
            assert!((-1.0..1.0).contains(&s));
        }
        // 10k draws should cover the unit interval reasonably well.
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn mix_has_no_trivial_fixed_point_at_zero() {
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(mix64(0)), mix64(0));
    }
}
