//! The seeded fault schedule: which channels fire, how often, how hard.

use serde::{Deserialize, Serialize};

/// One fault channel's dials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultChannel {
    /// Probability an eligible injection site fires, in `[0, 1]`.
    pub rate: f64,
    /// Channel-specific severity scale. `1.0` is the nominal severity
    /// documented per channel on [`FaultPlan`]; `0.0` makes firings
    /// harmless.
    pub intensity: f64,
}

impl FaultChannel {
    /// A channel that never fires.
    pub const OFF: FaultChannel = FaultChannel {
        rate: 0.0,
        intensity: 0.0,
    };

    /// A channel firing with probability `rate` at severity `intensity`.
    pub fn new(rate: f64, intensity: f64) -> FaultChannel {
        FaultChannel { rate, intensity }
    }

    /// Whether the channel can never fire.
    pub fn is_off(&self) -> bool {
        self.rate <= 0.0
    }
}

/// A fully deterministic fault schedule.
///
/// The plan holds no mutable state: whether a site fires and with what
/// magnitude is a pure hash of `(seed, channel, run index, position)`
/// (plus, for predictor spikes, the prediction inputs). Two runs with the
/// same plan therefore see byte-identical fault schedules, and a plan
/// with every channel off ([`FaultPlan::zero`]) is exactly the identity.
///
/// Channel severity at `intensity = 1.0`:
///
/// * `counter_noise` — observed counters perturbed up to ±100%, measured
///   time and instruction count up to ±50%; a 20% sub-slice of firings
///   additionally corrupts one counter to a non-finite value.
/// * `predictor_spike` — predicted time inflated up to 9×; a 15%
///   sub-slice returns a non-finite estimate instead.
/// * `stale_pattern` — pattern-store records scaled 2–5× on read; half of
///   the firings corrupt the record unambiguously (non-finite), which
///   hardened governors detect and discard.
/// * `transition_fail` — each knob-transition attempt fails with
///   probability `rate`, costing `intensity × 250 µs` per failed attempt;
///   after 3 failed attempts the dispatch falls back to
///   `HwConfig::FAIL_SAFE`.
/// * `tdp_throttle` — the kernel runs up to 2× slower at proportionally
///   reduced power (energy-neutral thermal throttling).
///
/// # Examples
///
/// ```
/// use gpm_faults::FaultPlan;
///
/// assert!(FaultPlan::zero(42).is_zero());
/// assert!(!FaultPlan::uniform(42, 0.1).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed of every per-site hash draw.
    pub seed: u64,
    /// Observation corruption on counters / measured time / instructions.
    pub counter_noise: FaultChannel,
    /// Outlier spikes on predictor estimates.
    pub predictor_spike: FaultChannel,
    /// Stale or corrupted pattern-store records.
    pub stale_pattern: FaultChannel,
    /// Transient knob-transition failures with latency penalties.
    pub transition_fail: FaultChannel,
    /// Transient TDP-throttle events.
    pub tdp_throttle: FaultChannel,
}

impl FaultPlan {
    /// The identity plan: every channel off. Runs under it are
    /// byte-identical to uninjected runs.
    pub fn zero(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            counter_noise: FaultChannel::OFF,
            predictor_spike: FaultChannel::OFF,
            stale_pattern: FaultChannel::OFF,
            transition_fail: FaultChannel::OFF,
            tdp_throttle: FaultChannel::OFF,
        }
    }

    /// Every channel firing at `rate` with nominal severity — the knob
    /// the robustness degradation sweep turns.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        let ch = FaultChannel::new(rate, 1.0);
        FaultPlan {
            seed,
            counter_noise: ch,
            predictor_spike: ch,
            stale_pattern: ch,
            transition_fail: ch,
            tdp_throttle: ch,
        }
    }

    /// A plan with only the observation-corruption channel armed.
    pub fn only_counter_noise(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            counter_noise: FaultChannel::new(rate, 1.0),
            ..FaultPlan::zero(seed)
        }
    }

    /// A plan with only the predictor-spike channel armed — the lever
    /// that drives governors into `PredictionAnomaly` fail-safes.
    pub fn only_predictor_spike(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            predictor_spike: FaultChannel::new(rate, 1.0),
            ..FaultPlan::zero(seed)
        }
    }

    /// A plan with only the stale-pattern channel armed — the lever that
    /// drives MPC into `StalePattern` fail-safes.
    pub fn only_stale_pattern(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            stale_pattern: FaultChannel::new(rate, 1.0),
            ..FaultPlan::zero(seed)
        }
    }

    /// A plan with only the knob-transition-failure channel armed — at
    /// `rate = 1.0` every dispatch past the first exhausts its retry
    /// budget and falls back to `HwConfig::FAIL_SAFE`
    /// (`TransitionFailed`).
    pub fn only_transition_fail(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            transition_fail: FaultChannel::new(rate, 1.0),
            ..FaultPlan::zero(seed)
        }
    }

    /// A plan with only the TDP-throttle channel armed.
    pub fn only_tdp_throttle(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            tdp_throttle: FaultChannel::new(rate, 1.0),
            ..FaultPlan::zero(seed)
        }
    }

    /// Whether no channel can ever fire.
    pub fn is_zero(&self) -> bool {
        self.counter_noise.is_off()
            && self.predictor_spike.is_off()
            && self.stale_pattern.is_off()
            && self.transition_fail.is_off()
            && self.tdp_throttle.is_off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_uniform_report_their_shape() {
        assert!(FaultPlan::zero(1).is_zero());
        let u = FaultPlan::uniform(1, 0.25);
        assert!(!u.is_zero());
        assert_eq!(u.counter_noise.rate, 0.25);
        assert_eq!(u.tdp_throttle.intensity, 1.0);
        // Rate 0 at nonzero intensity is still inert.
        assert!(FaultPlan::uniform(1, 0.0).is_zero());
    }

    #[test]
    fn single_channel_plans_arm_exactly_one_channel() {
        type ChannelOf = fn(&FaultPlan) -> &FaultChannel;
        let cases: [(FaultPlan, ChannelOf); 5] = [
            (FaultPlan::only_counter_noise(9, 0.5), |p| &p.counter_noise),
            (FaultPlan::only_predictor_spike(9, 0.5), |p| {
                &p.predictor_spike
            }),
            (FaultPlan::only_stale_pattern(9, 0.5), |p| &p.stale_pattern),
            (FaultPlan::only_transition_fail(9, 0.5), |p| {
                &p.transition_fail
            }),
            (FaultPlan::only_tdp_throttle(9, 0.5), |p| &p.tdp_throttle),
        ];
        for (plan, armed) in &cases {
            assert_eq!(plan.seed, 9);
            assert_eq!(armed(plan).rate, 0.5);
            assert_eq!(armed(plan).intensity, 1.0);
            let all = [
                plan.counter_noise,
                plan.predictor_spike,
                plan.stale_pattern,
                plan.transition_fail,
                plan.tdp_throttle,
            ];
            assert_eq!(all.iter().filter(|c| !c.is_off()).count(), 1);
        }
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let p = FaultPlan::uniform(0xFEED, 0.1);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
