//! The seeded fault schedule: which channels fire, how often, how hard.

use serde::{Deserialize, Serialize};

/// One fault channel's dials.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultChannel {
    /// Probability an eligible injection site fires, in `[0, 1]`.
    pub rate: f64,
    /// Channel-specific severity scale. `1.0` is the nominal severity
    /// documented per channel on [`FaultPlan`]; `0.0` makes firings
    /// harmless.
    pub intensity: f64,
}

impl FaultChannel {
    /// A channel that never fires.
    pub const OFF: FaultChannel = FaultChannel {
        rate: 0.0,
        intensity: 0.0,
    };

    /// A channel firing with probability `rate` at severity `intensity`.
    pub fn new(rate: f64, intensity: f64) -> FaultChannel {
        FaultChannel { rate, intensity }
    }

    /// Whether the channel can never fire.
    pub fn is_off(&self) -> bool {
        self.rate <= 0.0
    }
}

/// A fully deterministic fault schedule.
///
/// The plan holds no mutable state: whether a site fires and with what
/// magnitude is a pure hash of `(seed, channel, run index, position)`
/// (plus, for predictor spikes, the prediction inputs). Two runs with the
/// same plan therefore see byte-identical fault schedules, and a plan
/// with every channel off ([`FaultPlan::zero`]) is exactly the identity.
///
/// Channel severity at `intensity = 1.0`:
///
/// * `counter_noise` — observed counters perturbed up to ±100%, measured
///   time and instruction count up to ±50%; a 20% sub-slice of firings
///   additionally corrupts one counter to a non-finite value.
/// * `predictor_spike` — predicted time inflated up to 9×; a 15%
///   sub-slice returns a non-finite estimate instead.
/// * `stale_pattern` — pattern-store records scaled 2–5× on read; half of
///   the firings corrupt the record unambiguously (non-finite), which
///   hardened governors detect and discard.
/// * `transition_fail` — each knob-transition attempt fails with
///   probability `rate`, costing `intensity × 250 µs` per failed attempt;
///   after 3 failed attempts the dispatch falls back to
///   `HwConfig::FAIL_SAFE`.
/// * `tdp_throttle` — the kernel runs up to 2× slower at proportionally
///   reduced power (energy-neutral thermal throttling).
///
/// # Examples
///
/// ```
/// use gpm_faults::FaultPlan;
///
/// assert!(FaultPlan::zero(42).is_zero());
/// assert!(!FaultPlan::uniform(42, 0.1).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed of every per-site hash draw.
    pub seed: u64,
    /// Observation corruption on counters / measured time / instructions.
    pub counter_noise: FaultChannel,
    /// Outlier spikes on predictor estimates.
    pub predictor_spike: FaultChannel,
    /// Stale or corrupted pattern-store records.
    pub stale_pattern: FaultChannel,
    /// Transient knob-transition failures with latency penalties.
    pub transition_fail: FaultChannel,
    /// Transient TDP-throttle events.
    pub tdp_throttle: FaultChannel,
}

impl FaultPlan {
    /// The identity plan: every channel off. Runs under it are
    /// byte-identical to uninjected runs.
    pub fn zero(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            counter_noise: FaultChannel::OFF,
            predictor_spike: FaultChannel::OFF,
            stale_pattern: FaultChannel::OFF,
            transition_fail: FaultChannel::OFF,
            tdp_throttle: FaultChannel::OFF,
        }
    }

    /// Every channel firing at `rate` with nominal severity — the knob
    /// the robustness degradation sweep turns.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        let ch = FaultChannel::new(rate, 1.0);
        FaultPlan {
            seed,
            counter_noise: ch,
            predictor_spike: ch,
            stale_pattern: ch,
            transition_fail: ch,
            tdp_throttle: ch,
        }
    }

    /// Whether no channel can ever fire.
    pub fn is_zero(&self) -> bool {
        self.counter_noise.is_off()
            && self.predictor_spike.is_off()
            && self.stale_pattern.is_off()
            && self.transition_fail.is_off()
            && self.tdp_throttle.is_off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_uniform_report_their_shape() {
        assert!(FaultPlan::zero(1).is_zero());
        let u = FaultPlan::uniform(1, 0.25);
        assert!(!u.is_zero());
        assert_eq!(u.counter_noise.rate, 0.25);
        assert_eq!(u.tdp_throttle.intensity, 1.0);
        // Rate 0 at nonzero intensity is still inert.
        assert!(FaultPlan::uniform(1, 0.0).is_zero());
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let p = FaultPlan::uniform(0xFEED, 0.1);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
