//! The injection trait threaded through the dispatch loop and governors,
//! and its two implementations: [`NoFaults`] (the identity) and
//! [`FaultPlan`] (the deterministic schedule).

use crate::plan::FaultPlan;
use crate::rng::{hash_words, mix64, signed_unit_f64, unit_f64};
use gpm_hw::HwConfig;
use gpm_sim::predictor::KernelSnapshot;
use gpm_sim::{KernelOutcome, NUM_COUNTERS};
use gpm_trace::FaultChannelKind;
use std::fmt::Debug;
use std::sync::Arc;

/// Channel tags keeping the per-channel hash streams independent.
pub(crate) const TAG_COUNTER: u64 = 0xC0;
pub(crate) const TAG_SPIKE: u64 = 0x5B;
pub(crate) const TAG_STALE: u64 = 0x57;
pub(crate) const TAG_TRANSITION: u64 = 0x7A;
pub(crate) const TAG_TDP: u64 = 0xDB;

/// Knob-transition retry bound: after this many failed attempts the
/// dispatch gives up and runs the kernel at `HwConfig::FAIL_SAFE`.
pub const MAX_TRANSITION_ATTEMPTS: u32 = 3;

/// Latency charged per failed transition attempt at nominal intensity,
/// seconds — the same order as a real DVFS transition stall.
pub const TRANSITION_RETRY_PENALTY_S: f64 = 250e-6;

/// Identifies one injection site: which invocation and kernel position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultKey {
    /// 0-based application invocation index.
    pub run_index: usize,
    /// 0-based kernel position within the run.
    pub position: usize,
}

impl FaultKey {
    fn words(&self) -> [u64; 2] {
        [self.run_index as u64, self.position as u64]
    }
}

/// What an injector did at a site, for trace emission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFault {
    /// Which channel fired.
    pub channel: FaultChannelKind,
    /// Channel-specific severity (see the [`FaultPlan`] channel docs).
    pub magnitude: f64,
}

/// Resolution of a knob-transition request routed through an injector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionOutcome {
    /// Configuration actually reached.
    pub config: HwConfig,
    /// Latency penalty accumulated over failed attempts, seconds.
    pub penalty_s: f64,
    /// Attempts that failed before the transition resolved.
    pub failed_attempts: u32,
    /// Whether every retry failed and the dispatch fell back to
    /// `HwConfig::FAIL_SAFE`.
    pub fell_back: bool,
}

/// Deterministic fault injection, as seen by the dispatch loop and the
/// governors. All methods are pure functions of `(self, arguments)`; the
/// default implementation injects nothing.
pub trait FaultInjector: Send + Sync + Debug {
    /// Whether any channel can fire. Producers skip injection calls (and
    /// the cloning they imply) entirely when this is `false`, keeping
    /// clean runs byte-identical to pre-fault-layer behaviour.
    fn enabled(&self) -> bool {
        false
    }

    /// Corrupts the observation handed to the governor (counters,
    /// measured time, instruction count). The physical outcome used for
    /// energy accounting is unaffected.
    fn corrupt_observation(
        &self,
        _key: FaultKey,
        _outcome: &mut KernelOutcome,
    ) -> Option<InjectedFault> {
        None
    }

    /// A transient TDP-throttle event: stretches the physical outcome's
    /// time while reducing power proportionally (energy-neutral).
    fn throttle(&self, _key: FaultKey, _outcome: &mut KernelOutcome) -> Option<InjectedFault> {
        None
    }

    /// Routes a knob-transition request from `from` to `requested`.
    /// `None` means the transition succeeded immediately.
    fn transition(
        &self,
        _key: FaultKey,
        _from: HwConfig,
        _requested: HwConfig,
    ) -> Option<TransitionOutcome> {
        None
    }

    /// Corrupts a pattern-store snapshot as the governor reads it.
    fn corrupt_snapshot(
        &self,
        _key: FaultKey,
        _snapshot: &mut KernelSnapshot,
    ) -> Option<InjectedFault> {
        None
    }
}

/// The identity injector: nothing ever fires.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// A shared identity injector, the default for governors.
pub fn no_faults() -> Arc<dyn FaultInjector> {
    Arc::new(NoFaults)
}

impl FaultPlan {
    /// Draws the channel's firing decision at a site; `Some(substream)`
    /// when it fires, where `substream` seeds the magnitude draws.
    fn fire(&self, tag: u64, rate: f64, words: &[u64]) -> Option<u64> {
        if rate <= 0.0 {
            return None;
        }
        let mut all = Vec::with_capacity(words.len() + 1);
        all.push(tag);
        all.extend_from_slice(words);
        let h = hash_words(self.seed, &all);
        (unit_f64(h) < rate).then(|| mix64(h))
    }
}

impl FaultInjector for FaultPlan {
    fn enabled(&self) -> bool {
        !self.is_zero()
    }

    fn corrupt_observation(
        &self,
        key: FaultKey,
        outcome: &mut KernelOutcome,
    ) -> Option<InjectedFault> {
        let ch = self.counter_noise;
        let sub = self.fire(TAG_COUNTER, ch.rate, &key.words())?;
        let mut magnitude = 0.0f64;
        for (i, v) in outcome.counters.values_mut().iter_mut().enumerate() {
            let r = signed_unit_f64(mix64(sub ^ (i as u64 + 1)));
            let f = 1.0 + ch.intensity * r;
            *v *= f;
            magnitude = magnitude.max((f - 1.0).abs());
        }
        // Timing jitter on the measured duration and instruction count is
        // half the counter amplitude and bounded away from zero, so
        // downstream throughput arithmetic stays finite.
        let tj = 0.5 * ch.intensity * signed_unit_f64(mix64(sub ^ 0x71));
        outcome.time_s *= (1.0 + tj).max(0.05);
        let gj = 0.5 * ch.intensity * signed_unit_f64(mix64(sub ^ 0x72));
        outcome.ginstructions *= (1.0 + gj).max(0.0);
        // A slice of firings is wild: one counter turns non-finite,
        // exercising the governors' sanitization path.
        let wild = mix64(sub ^ 0x77);
        if unit_f64(wild) < 0.2 {
            let idx = (wild % NUM_COUNTERS as u64) as usize;
            outcome.counters.values_mut()[idx] = f64::NAN;
            magnitude = magnitude.max(ch.intensity);
        }
        Some(InjectedFault {
            channel: FaultChannelKind::CounterNoise,
            magnitude,
        })
    }

    fn throttle(&self, key: FaultKey, outcome: &mut KernelOutcome) -> Option<InjectedFault> {
        let ch = self.tdp_throttle;
        let sub = self.fire(TAG_TDP, ch.rate, &key.words())?;
        let factor = 1.0 + ch.intensity * unit_f64(mix64(sub ^ 1));
        outcome.time_s *= factor;
        let inv = 1.0 / factor;
        let p = &mut outcome.power;
        p.cpu_dyn_w *= inv;
        p.gpu_dyn_w *= inv;
        p.nb_dyn_w *= inv;
        p.dram_w *= inv;
        p.cpu_leak_w *= inv;
        p.gpu_leak_w *= inv;
        p.other_w *= inv;
        // Power × time is conserved, so the integrated energy breakdown
        // stays consistent without recomputation.
        Some(InjectedFault {
            channel: FaultChannelKind::TdpThrottle,
            magnitude: factor,
        })
    }

    fn transition(
        &self,
        key: FaultKey,
        from: HwConfig,
        requested: HwConfig,
    ) -> Option<TransitionOutcome> {
        let ch = self.transition_fail;
        if ch.is_off() || from == requested {
            return None;
        }
        let mut failed = 0u32;
        while failed < MAX_TRANSITION_ATTEMPTS {
            let words = [key.run_index as u64, key.position as u64, failed as u64];
            if self.fire(TAG_TRANSITION, ch.rate, &words).is_none() {
                break;
            }
            failed += 1;
        }
        if failed == 0 {
            return None;
        }
        let penalty_s = failed as f64 * ch.intensity * TRANSITION_RETRY_PENALTY_S;
        let fell_back = failed >= MAX_TRANSITION_ATTEMPTS;
        Some(TransitionOutcome {
            config: if fell_back {
                HwConfig::FAIL_SAFE
            } else {
                requested
            },
            penalty_s,
            failed_attempts: failed,
            fell_back,
        })
    }

    fn corrupt_snapshot(
        &self,
        key: FaultKey,
        snapshot: &mut KernelSnapshot,
    ) -> Option<InjectedFault> {
        let ch = self.stale_pattern;
        let sub = self.fire(TAG_STALE, ch.rate, &key.words())?;
        if unit_f64(mix64(sub ^ 0x5E)) < 0.5 {
            // Unambiguously corrupt: hardened governors detect the
            // malformed record and discard it (StalePattern fail-safe).
            snapshot.ginstructions = f64::NAN;
            Some(InjectedFault {
                channel: FaultChannelKind::StalePattern,
                magnitude: ch.intensity.max(1.0),
            })
        } else {
            // Silently stale: finite but badly scaled counters — the
            // search proceeds on wrong data, exercising downstream
            // prediction-anomaly detection instead.
            let factor = 1.0 + ch.intensity * (1.0 + 3.0 * unit_f64(mix64(sub ^ 0xA1)));
            for v in snapshot.counters.values_mut() {
                *v *= factor;
            }
            snapshot.ginstructions *= factor;
            Some(InjectedFault {
                channel: FaultChannelKind::StalePattern,
                magnitude: factor,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_sim::{ApuSimulator, KernelCharacteristics};

    fn outcome() -> KernelOutcome {
        ApuSimulator::noiseless().evaluate(
            &KernelCharacteristics::compute_bound("cb", 20.0),
            HwConfig::MAX_PERF,
        )
    }

    fn key(run: usize, pos: usize) -> FaultKey {
        FaultKey {
            run_index: run,
            position: pos,
        }
    }

    #[test]
    fn zero_plan_is_the_identity() {
        let plan = FaultPlan::zero(99);
        assert!(!plan.enabled());
        let clean = outcome();
        let mut out = clean.clone();
        assert!(plan.corrupt_observation(key(1, 0), &mut out).is_none());
        assert!(plan.throttle(key(1, 0), &mut out).is_none());
        assert!(plan
            .transition(key(1, 0), HwConfig::FAIL_SAFE, HwConfig::MAX_PERF)
            .is_none());
        assert_eq!(out, clean);
    }

    #[test]
    fn schedules_replay_bit_identically() {
        let plan = FaultPlan::uniform(0xFEED, 0.5);
        for pos in 0..32 {
            let mut a = outcome();
            let mut b = outcome();
            let fa = plan.corrupt_observation(key(1, pos), &mut a);
            let fb = plan.corrupt_observation(key(1, pos), &mut b);
            assert_eq!(fa, fb);
            // NaN-corrupted counters break PartialEq; compare bit patterns.
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            for (x, y) in a.counters.values().iter().zip(b.counters.values()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn firing_frequency_tracks_the_rate() {
        let plan = FaultPlan::uniform(0x0DD5, 0.3);
        let mut fired = 0;
        let n = 2000;
        for pos in 0..n {
            let mut out = outcome();
            if plan.throttle(key(2, pos), &mut out).is_some() {
                fired += 1;
            }
        }
        let freq = fired as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.05, "firing frequency {freq}");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::uniform(1, 0.5);
        let b = FaultPlan::uniform(2, 0.5);
        let mut differs = false;
        for pos in 0..64 {
            let mut oa = outcome();
            let mut ob = outcome();
            let fa = a.throttle(key(0, pos), &mut oa).is_some();
            let fb = b.throttle(key(0, pos), &mut ob).is_some();
            differs |= fa != fb;
        }
        assert!(differs);
    }

    #[test]
    fn throttle_conserves_energy() {
        let plan = FaultPlan::uniform(7, 1.0);
        let clean = outcome();
        let mut out = clean.clone();
        let fault = plan.throttle(key(0, 0), &mut out).expect("rate 1 fires");
        assert_eq!(fault.channel, FaultChannelKind::TdpThrottle);
        assert!(fault.magnitude > 1.0 && fault.magnitude <= 2.0);
        assert!(out.time_s > clean.time_s);
        assert!(out.power.total_w() < clean.power.total_w());
        let before = clean.power.total_w() * clean.time_s;
        let after = out.power.total_w() * out.time_s;
        assert!((before - after).abs() < 1e-9 * before);
    }

    #[test]
    fn transitions_retry_then_fall_back() {
        // Rate 1.0: every attempt fails, so every transition falls back.
        let always = FaultPlan::uniform(3, 1.0);
        let t = always
            .transition(key(0, 1), HwConfig::MAX_PERF, HwConfig::MPC_HOST)
            .expect("must fail");
        assert!(t.fell_back);
        assert_eq!(t.config, HwConfig::FAIL_SAFE);
        assert_eq!(t.failed_attempts, MAX_TRANSITION_ATTEMPTS);
        assert!(t.penalty_s > 0.0);
        // No-op transitions are never eligible.
        assert!(always
            .transition(key(0, 1), HwConfig::MAX_PERF, HwConfig::MAX_PERF)
            .is_none());
        // At a moderate rate, some firings succeed on retry.
        let sometimes = FaultPlan::uniform(3, 0.5);
        let mut recovered = false;
        for pos in 0..256 {
            if let Some(t) =
                sometimes.transition(key(0, pos), HwConfig::MAX_PERF, HwConfig::MPC_HOST)
            {
                if !t.fell_back {
                    assert_eq!(t.config, HwConfig::MPC_HOST);
                    assert!(t.failed_attempts < MAX_TRANSITION_ATTEMPTS);
                    recovered = true;
                }
            }
        }
        assert!(recovered, "no transition ever succeeded on retry");
    }

    #[test]
    fn stale_snapshots_are_either_malformed_or_scaled() {
        let plan = FaultPlan::uniform(11, 1.0);
        let base = outcome();
        let mut wild = 0;
        let mut scaled = 0;
        for pos in 0..64 {
            let mut snap = KernelSnapshot::counters_only(
                base.counters,
                HwConfig::MAX_PERF,
                base.ginstructions,
            );
            let fault = plan.corrupt_snapshot(key(1, pos), &mut snap).unwrap();
            assert_eq!(fault.channel, FaultChannelKind::StalePattern);
            if snap.is_well_formed() {
                scaled += 1;
                assert!(snap.ginstructions > base.ginstructions);
            } else {
                wild += 1;
            }
        }
        assert!(wild > 0 && scaled > 0, "wild {wild} scaled {scaled}");
    }
}
