//! Deterministic fault injection and graceful degradation for gpm.
//!
//! A production power manager must keep honoring its throughput
//! constraint when its inputs go bad: noisy or corrupted performance
//! counters, predictor outliers, stale pattern-store records, knob
//! transitions that fail transiently, thermal throttling. This crate
//! provides the *fault side* of that contract; the governors' hardening
//! (anomaly rejection, `FAIL_SAFE` fallbacks, bounded retries,
//! observation sanitization) lives with the governors and is exercised by
//! the robustness bench and the fuzz/property suites.
//!
//! The design constraint is determinism. A [`FaultPlan`] holds no mutable
//! state; whether a fault fires at a site and with what magnitude is a
//! pure hash of `(seed, channel, run index, kernel position)` — and, for
//! predictor spikes, the prediction inputs themselves. The same plan
//! therefore replays bit-identically, and the zero plan is provably the
//! identity (property-tested in `crates/harness/tests/fault_invariance.rs`).
//!
//! * [`FaultPlan`] — the seeded schedule; five independent channels.
//! * [`FaultInjector`] — the trait the execution environment
//!   (`gpm_harness::ExecEnv::with_fault_plan`) installs into the dispatch
//!   loop and the MPC governor's pattern-store reads; implemented by
//!   [`FaultPlan`] and by the identity injector [`NoFaults`].
//! * [`FaultyPredictor`] — wraps any `PowerPerfPredictor` with
//!   deterministic outlier spikes.
//!
//! # Examples
//!
//! ```
//! use gpm_faults::{FaultInjector, FaultKey, FaultPlan};
//!
//! let plan = FaultPlan::uniform(42, 0.1);
//! assert!(plan.enabled());
//! let key = FaultKey { run_index: 1, position: 3 };
//! // Pure function of (plan, key): same answer every time.
//! let a = plan.transition(key, gpm_hw::HwConfig::FAIL_SAFE, gpm_hw::HwConfig::MAX_PERF);
//! let b = plan.transition(key, gpm_hw::HwConfig::FAIL_SAFE, gpm_hw::HwConfig::MAX_PERF);
//! assert_eq!(a, b);
//! ```

pub mod injector;
pub mod plan;
pub mod predictor;
pub mod rng;

pub use injector::{
    no_faults, FaultInjector, FaultKey, InjectedFault, NoFaults, TransitionOutcome,
    MAX_TRANSITION_ATTEMPTS, TRANSITION_RETRY_PENALTY_S,
};
pub use plan::{FaultChannel, FaultPlan};
pub use predictor::FaultyPredictor;
