//! Adaptive Model-Predictive-Control GPU power management — the paper's
//! primary contribution (Section IV).
//!
//! At each kernel boundary the MPC governor optimizes energy over a
//! receding horizon of predicted future kernels, applies the resulting
//! configuration to the *current* kernel only, then shifts the horizon.
//! Four cooperating pieces (Figure 6):
//!
//! * the **kernel pattern extractor** (from [`gpm_pattern`]) predicts which
//!   kernels appear next and supplies their stored counters;
//! * the **power/performance predictor** (any
//!   [`PowerPerfPredictor`](gpm_sim::PowerPerfPredictor)) prices candidate
//!   configurations;
//! * the **optimizer** ([`optimizer`]) walks the window in the
//!   profiling-derived **search order** ([`mod@search_order`]) and greedily
//!   hill-climbs each kernel's knobs (via [`gpm_governors::search`]);
//! * the **performance tracker** (Eq. 4/5, [`gpm_governors::PerfTarget`])
//!   carries headroom between kernels, and the **adaptive horizon
//!   generator** ([`horizon`]) bounds total overhead to a fraction `α` of
//!   baseline runtime (Section IV-A4).
//!
//! # Examples
//!
//! Constructing the governor in its realistic configuration (Random-Forest
//! predictor, adaptive horizon, α = 5%):
//!
//! ```no_run
//! use gpm_governors::OverheadModel;
//! use gpm_hw::ConfigSpace;
//! use gpm_mpc::{HorizonMode, MpcConfig, MpcGovernor};
//! use gpm_model::{Dataset, ForestParams, RandomForestPredictor};
//! use gpm_sim::SimParams;
//!
//! # let dataset = Dataset::default();
//! let rf = RandomForestPredictor::train(&dataset, &ForestParams::default(), 7);
//! let mpc = MpcGovernor::new(rf, SimParams::default(), MpcConfig::default());
//! # let _ = mpc;
//! ```

pub mod governor;
pub mod horizon;
pub mod optimizer;
pub mod search_order;
pub mod stats;

pub use governor::{MpcConfig, MpcGovernor, WindowSolver};
pub use horizon::{HorizonGenerator, HorizonMode};
pub use optimizer::{optimize_window, optimize_window_exact, optimize_window_with, WindowPlan};
pub use search_order::{average_full_horizon, search_order, ProfiledKernel};
pub use stats::MpcStats;
