//! The MPC window optimizer (Section IV-A1a).
//!
//! For the kernel at position `i` with horizon `Hᵢ`, the optimizer
//! considers the window of positions `{i, …, i+Hᵢ−1}`, visits them in the
//! profiling-derived search order, and greedily hill-climbs each one's
//! hardware knobs under the running throughput constraint. Performance
//! headroom accumulates along the walk: energy saved (time spent) by an
//! already-optimized window kernel tightens or loosens the cap for the
//! next. The configuration chosen for position `i` is applied; the rest of
//! the window is provisional and will be re-optimized when the horizon
//! slides.

use gpm_governors::search::{
    hill_climb_with_memo, ConfigEstimate, EnergyEvaluator, EvalMemo, SearchStats,
};
use gpm_governors::to::ToSolver;
use gpm_governors::PerfTarget;
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
use std::collections::BTreeMap;

/// Result of optimizing one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPlan {
    /// The configuration to apply to the current kernel.
    pub config: HwConfig,
    /// Provisional assignments for every window position (including the
    /// current kernel), in the order they were optimized.
    pub window: Vec<(usize, HwConfig)>,
    /// Predictor evaluations spent.
    pub evaluations: u64,
    /// Whether the current kernel had to fall back to the fail-safe
    /// configuration (cap unsatisfiable or already violated).
    pub fail_safe: bool,
    /// Aggregated search telemetry across every window position. Its
    /// `evaluations` equals the plan-level count above (including the
    /// budget-reservation and fallback estimates).
    pub search: SearchStats,
    /// The search's estimate of the configuration applied to the current
    /// kernel, for prediction-error tracing.
    pub chosen: Option<ConfigEstimate>,
}

/// Optimizes the window starting at `current` over `horizon` positions.
///
/// `snapshots` maps positions to the *expected* kernels there (from the
/// pattern extractor); positions missing from the map (past the
/// application's end) are skipped. `elapsed_gi`/`elapsed_s` are the
/// retired-kernel sums feeding the Eq. 4 performance tracker.
///
/// Returns `None` when `current` itself has no snapshot — the caller has
/// no expectation to optimize against and should fall back to a
/// history-based decision.
#[allow(clippy::too_many_arguments)]
pub fn optimize_window<P: PowerPerfPredictor>(
    eval: &EnergyEvaluator<P>,
    snapshots: &BTreeMap<usize, KernelSnapshot>,
    search_order: &[usize],
    current: usize,
    horizon: usize,
    elapsed_gi: f64,
    elapsed_s: f64,
    target: &PerfTarget,
) -> Option<WindowPlan> {
    optimize_window_with(
        eval,
        snapshots,
        search_order,
        current,
        horizon,
        elapsed_gi,
        elapsed_s,
        target,
        &mut EvalMemo::new(),
    )
}

/// [`optimize_window`] against a caller-provided [`EvalMemo`], the form
/// the MPC governor's hot path uses so every hill climb across all
/// horizon steps of a decision (and across decisions) reuses one memo
/// allocation. Each climb re-scopes the memo, so plans and evaluation
/// counts are identical to [`optimize_window`].
#[allow(clippy::too_many_arguments)]
pub fn optimize_window_with<P: PowerPerfPredictor>(
    eval: &EnergyEvaluator<P>,
    snapshots: &BTreeMap<usize, KernelSnapshot>,
    search_order: &[usize],
    current: usize,
    horizon: usize,
    elapsed_gi: f64,
    elapsed_s: f64,
    target: &PerfTarget,
    memo: &mut EvalMemo,
) -> Option<WindowPlan> {
    snapshots.get(&current)?;
    // One span per *decision* (covering every per-position climb in the
    // window), not per climb — the guard is ~100 ns and would otherwise
    // run several times per dispatch.
    let _span = gpm_telemetry::span("search.hill_climb");
    let end = current + horizon.max(1);

    // Window positions in search order; anything the search order misses
    // (e.g. the application grew) is appended in execution order.
    let mut order: Vec<usize> = search_order
        .iter()
        .copied()
        .filter(|p| *p >= current && *p < end && snapshots.contains_key(p))
        .collect();
    for p in snapshots.keys().copied() {
        if p >= current && p < end && !order.contains(&p) {
            order.push(p);
        }
    }

    let mut evaluations = 0u64;

    // The guard behind the search-order heuristic (Section IV-A1a): the
    // whole window shares one Eq. 3 budget — the time that keeps
    // cumulative throughput on target at the window's end. When pricing a
    // kernel, reserve the *fastest recovery* (fail-safe) time of every
    // kernel not yet priced, so that slowing an early-priced kernel can
    // never make the upcoming low-throughput phase unable to "make up"
    // the difference.
    let window_gi: f64 = order.iter().map(|&p| snapshots[&p].ginstructions).sum();
    let window_budget_end = target.time_cap(elapsed_gi, elapsed_s, window_gi);
    let fs_time: std::collections::BTreeMap<usize, f64> = order
        .iter()
        .map(|&p| {
            evaluations += 1;
            (p, eval.estimate(&snapshots[&p], HwConfig::FAIL_SAFE).time_s)
        })
        .collect();
    let mut fs_remaining: f64 = fs_time.values().sum();

    let mut fail_safe = false;
    let mut virtual_s = elapsed_s;
    let mut window = Vec::with_capacity(order.len());
    let mut chosen_current = HwConfig::FAIL_SAFE;
    let mut chosen_est = None;
    let mut search = SearchStats::default();

    for p in order {
        let snap = &snapshots[&p];
        // The others' fail-safe reservation; this kernel competes for the
        // rest of the budget.
        fs_remaining -= fs_time[&p];
        let committed = virtual_s - elapsed_s;
        let cap_shared = window_budget_end - committed - fs_remaining;
        // Never looser than the kernel's own prefix cap would allow if it
        // were the last one standing; never negative protection needed —
        // hill_climb handles infeasible caps by returning None.
        let cap = cap_shared;
        let (best, stats) = hill_climb_with_memo(eval, snap, HwConfig::FAIL_SAFE, cap, memo);
        evaluations += stats.evaluations;
        search.merge(&stats);
        let est = match best {
            Some(best) => best,
            None => {
                // Even fail-safe misses the cap: run fail-safe anyway (the
                // paper's fallback) and absorb the debt.
                if p == current {
                    fail_safe = true;
                }
                evaluations += 1;
                eval.estimate(snap, HwConfig::FAIL_SAFE)
            }
        };
        if p == current {
            chosen_current = est.config;
            chosen_est = Some(est);
        }
        window.push((p, est.config));
        virtual_s += est.time_s;
    }

    search.evaluations = evaluations;
    Some(WindowPlan {
        config: chosen_current,
        window,
        evaluations,
        fail_safe,
        search,
        chosen: chosen_est,
    })
}

/// The *exact* window optimizer: solves Eq. 3 directly as a
/// multiple-choice knapsack over every configuration in `space` for every
/// window kernel (minimum window energy subject to the window-wide time
/// budget), via the same DP used by the Theoretically Optimal scheme.
///
/// This is the reference the paper's greedy heuristic approximates — the
/// "exhaustive MPC search" of the 65× search-cost claim. It costs
/// `|window| × |space|` predictor evaluations per decision (plus the DP),
/// against the heuristic's `|window| × Σ|knob|`, and is provided for
/// ablations and tests, not for runtime use.
///
/// Returns `None` when `current` has no snapshot. Kernels fall back to the
/// fail-safe configuration when even the all-fail-safe assignment misses
/// the budget.
#[allow(clippy::too_many_arguments)]
pub fn optimize_window_exact<P: PowerPerfPredictor>(
    eval: &EnergyEvaluator<P>,
    snapshots: &BTreeMap<usize, KernelSnapshot>,
    space: &ConfigSpace,
    current: usize,
    horizon: usize,
    elapsed_gi: f64,
    elapsed_s: f64,
    target: &PerfTarget,
) -> Option<WindowPlan> {
    snapshots.get(&current)?;
    let end = current + horizon.max(1);
    let positions: Vec<usize> = snapshots
        .keys()
        .copied()
        .filter(|&p| p >= current && p < end)
        .collect();

    let window_gi: f64 = positions.iter().map(|p| snapshots[p].ginstructions).sum();
    let budget = target.time_cap(elapsed_gi, elapsed_s, 0.0) + window_gi / target.throughput();

    let configs: Vec<HwConfig> = space.iter().collect();
    let mut evaluations = 0u64;
    // The candidate set per position is the whole space, so each position
    // is priced in one batched call; per-candidate estimates (and the
    // evaluation count) are identical to the former scalar loop.
    let mut estimates = Vec::new();
    let options: Vec<Vec<(f64, f64)>> = positions
        .iter()
        .map(|p| {
            eval.estimate_batch(&snapshots[p], &configs, &mut estimates);
            evaluations += estimates.len() as u64;
            estimates
                .iter()
                .map(|est| (est.time_s, est.energy_j))
                .collect()
        })
        .collect();

    let solution = if budget > 0.0 {
        ToSolver { grid: 1000 }.solve(&options, budget)
    } else {
        None
    };
    let (assignment, fail_safe) = match solution {
        Some(picks) => {
            let cfgs: Vec<HwConfig> = picks.iter().map(|&j| configs[j]).collect();
            (cfgs, false)
        }
        None => (vec![HwConfig::FAIL_SAFE; positions.len()], true),
    };

    let window: Vec<(usize, HwConfig)> = positions
        .iter()
        .copied()
        .zip(assignment.iter().copied())
        .collect();
    let config = window
        .iter()
        .find(|(p, _)| *p == current)
        .map(|(_, c)| *c)
        .unwrap_or(HwConfig::FAIL_SAFE);
    // The exact solver prices the whole space up front, so the chosen
    // configuration's estimate is a lookup, not an extra evaluation.
    let chosen = Some(eval.estimate(&snapshots[&current], config));
    Some(WindowPlan {
        config,
        window,
        evaluations,
        fail_safe,
        search: SearchStats {
            evaluations,
            ..SearchStats::default()
        },
        chosen,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_governors::search::hill_climb;
    use gpm_hw::{ConfigSpace, HwConfig};
    use gpm_sim::predictor::KernelSnapshot;
    use gpm_sim::{ApuSimulator, KernelCharacteristics, OraclePredictor, SimParams};

    struct Fixture {
        sim: ApuSimulator,
        eval: EnergyEvaluator<OraclePredictor>,
        kernels: Vec<KernelCharacteristics>,
        snapshots: BTreeMap<usize, KernelSnapshot>,
    }

    /// Builds positions 0..n cycling through the given kernels.
    fn fixture(kernels: Vec<KernelCharacteristics>, n: usize) -> Fixture {
        let sim = ApuSimulator::noiseless();
        let eval = EnergyEvaluator::new(OraclePredictor::new(&sim), SimParams::noiseless());
        let snapshots: BTreeMap<usize, KernelSnapshot> = (0..n)
            .map(|p| {
                let k = kernels[p % kernels.len()].clone();
                let out = sim.evaluate_exact(&k, HwConfig::FAIL_SAFE);
                (
                    p,
                    KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k),
                )
            })
            .collect();
        Fixture {
            sim,
            eval,
            kernels,
            snapshots,
        }
    }

    /// A target equal to fail-safe throughput scaled by `slack`.
    fn target_for(fx: &Fixture, n: usize, slack: f64) -> PerfTarget {
        let mut gi = 0.0;
        let mut t = 0.0;
        for p in 0..n {
            let k = &fx.kernels[p % fx.kernels.len()];
            let out = fx.sim.evaluate_exact(k, HwConfig::FAIL_SAFE);
            gi += out.ginstructions;
            t += out.time_s;
        }
        PerfTarget::new(gi, t * slack)
    }

    #[test]
    fn missing_current_snapshot_returns_none() {
        let fx = fixture(vec![KernelCharacteristics::compute_bound("cb", 10.0)], 3);
        let target = target_for(&fx, 3, 1.0);
        let plan = optimize_window(&fx.eval, &fx.snapshots, &[0, 1, 2], 5, 2, 0.0, 0.0, &target);
        assert!(plan.is_none());
    }

    #[test]
    fn single_kernel_window_matches_hill_climb() {
        let fx = fixture(vec![KernelCharacteristics::unscalable("us", 0.02)], 1);
        let target = target_for(&fx, 1, 1.5);
        let plan = optimize_window(&fx.eval, &fx.snapshots, &[0], 0, 1, 0.0, 0.0, &target).unwrap();
        let cap = target.time_cap(0.0, 0.0, fx.snapshots[&0].ginstructions);
        let (direct, _) = hill_climb(&fx.eval, &fx.snapshots[&0], HwConfig::FAIL_SAFE, cap);
        assert_eq!(plan.config, direct.unwrap().config);
        assert!(!plan.fail_safe);
        assert_eq!(plan.window.len(), 1);
    }

    #[test]
    fn window_truncates_at_application_end() {
        let fx = fixture(vec![KernelCharacteristics::compute_bound("cb", 10.0)], 4);
        let target = target_for(&fx, 4, 1.2);
        let order: Vec<usize> = (0..4).collect();
        let plan =
            optimize_window(&fx.eval, &fx.snapshots, &order, 2, 100, 0.0, 0.0, &target).unwrap();
        // Only positions 2 and 3 exist.
        assert_eq!(plan.window.len(), 2);
        assert!(plan.window.iter().all(|(p, _)| *p >= 2 && *p < 4));
    }

    #[test]
    fn respects_search_order_within_window() {
        let fx = fixture(
            vec![
                KernelCharacteristics::compute_bound("cb", 20.0),
                KernelCharacteristics::unscalable("us", 0.02),
            ],
            4,
        );
        let target = target_for(&fx, 4, 1.3);
        // Search order visits position 3 first, then 1, 0, 2.
        let plan = optimize_window(
            &fx.eval,
            &fx.snapshots,
            &[3, 1, 0, 2],
            0,
            4,
            0.0,
            0.0,
            &target,
        )
        .unwrap();
        let visited: Vec<usize> = plan.window.iter().map(|(p, _)| *p).collect();
        assert_eq!(visited, vec![3, 1, 0, 2]);
    }

    #[test]
    fn impossible_target_falls_back_to_fail_safe() {
        let fx = fixture(vec![KernelCharacteristics::compute_bound("cb", 20.0)], 2);
        // Target throughput 100× anything achievable.
        let gi = fx.snapshots[&0].ginstructions;
        let target = PerfTarget::new(
            gi * 100.0,
            fx.sim
                .evaluate_exact(&fx.kernels[0], HwConfig::MAX_PERF)
                .time_s,
        );
        let plan =
            optimize_window(&fx.eval, &fx.snapshots, &[0, 1], 0, 2, 0.0, 0.0, &target).unwrap();
        assert!(plan.fail_safe);
        assert_eq!(plan.config, HwConfig::FAIL_SAFE);
    }

    #[test]
    fn slack_lets_optimizer_save_energy() {
        let fx = fixture(vec![KernelCharacteristics::unscalable("us", 0.02)], 3);
        let target = target_for(&fx, 3, 2.0); // loose target
        let plan =
            optimize_window(&fx.eval, &fx.snapshots, &[0, 1, 2], 0, 3, 0.0, 0.0, &target).unwrap();
        assert!(!plan.fail_safe);
        let fs = fx.eval.estimate(&fx.snapshots[&0], HwConfig::FAIL_SAFE);
        let chosen = fx.eval.estimate(&fx.snapshots[&0], plan.config);
        assert!(chosen.energy_j < fs.energy_j);
    }

    #[test]
    fn exact_window_is_at_least_as_good_as_greedy() {
        // On the *predicted* objective, the DP solution of Eq. 3 must
        // lower-bound the heuristic's window energy whenever both are
        // feasible.
        let fx = fixture(
            vec![
                KernelCharacteristics::compute_bound("cb", 20.0),
                KernelCharacteristics::memory_bound("mb", 1.0),
                KernelCharacteristics::unscalable("us", 0.02),
            ],
            6,
        );
        let target = target_for(&fx, 6, 1.15);
        let order: Vec<usize> = (0..6).collect();
        let greedy =
            optimize_window(&fx.eval, &fx.snapshots, &order, 0, 6, 0.0, 0.0, &target).unwrap();
        let exact = optimize_window_exact(
            &fx.eval,
            &fx.snapshots,
            &ConfigSpace::paper_campaign(),
            0,
            6,
            0.0,
            0.0,
            &target,
        )
        .unwrap();
        assert!(!greedy.fail_safe && !exact.fail_safe);
        let window_energy = |plan: &WindowPlan| -> f64 {
            plan.window
                .iter()
                .map(|(p, cfg)| fx.eval.estimate(&fx.snapshots[p], *cfg).energy_j)
                .sum()
        };
        let ge = window_energy(&greedy);
        let ee = window_energy(&exact);
        assert!(
            ee <= ge * 1.001,
            "exact window energy {ee} should not exceed greedy {ge}"
        );
        // And the heuristic should not be far off (the paper's premise).
        assert!(ge <= ee * 1.5, "greedy {ge} vs exact {ee}");
    }

    #[test]
    fn exact_window_is_far_more_expensive() {
        let fx = fixture(vec![KernelCharacteristics::compute_bound("cb", 20.0)], 5);
        let target = target_for(&fx, 5, 1.2);
        let order: Vec<usize> = (0..5).collect();
        let greedy =
            optimize_window(&fx.eval, &fx.snapshots, &order, 0, 5, 0.0, 0.0, &target).unwrap();
        let exact = optimize_window_exact(
            &fx.eval,
            &fx.snapshots,
            &ConfigSpace::paper_campaign(),
            0,
            5,
            0.0,
            0.0,
            &target,
        )
        .unwrap();
        let ratio = exact.evaluations as f64 / greedy.evaluations as f64;
        assert!(ratio > 10.0, "exact/greedy evaluation ratio only {ratio}");
    }

    #[test]
    fn exact_window_falls_back_when_infeasible() {
        let fx = fixture(vec![KernelCharacteristics::compute_bound("cb", 20.0)], 2);
        let gi = fx.snapshots[&0].ginstructions;
        let t_best = fx
            .sim
            .evaluate_exact(&fx.kernels[0], HwConfig::MAX_PERF)
            .time_s;
        let target = PerfTarget::new(gi * 100.0, t_best);
        let exact = optimize_window_exact(
            &fx.eval,
            &fx.snapshots,
            &ConfigSpace::paper_campaign(),
            0,
            2,
            0.0,
            0.0,
            &target,
        )
        .unwrap();
        assert!(exact.fail_safe);
        assert_eq!(exact.config, HwConfig::FAIL_SAFE);
    }

    #[test]
    fn future_low_throughput_kernels_guard_current_choice() {
        // The Section IV "kernel 1" scenario: a fast kernel followed by
        // slow ones. With the future in view, the optimizer must keep the
        // fast kernel fast enough that the slow tail cannot sink the
        // average; a 1-kernel window would slow it down more aggressively.
        let fast = KernelCharacteristics::compute_bound("fast", 40.0);
        let slow = KernelCharacteristics::unscalable("slow", 0.08);
        let sim = ApuSimulator::noiseless();
        let eval = EnergyEvaluator::new(OraclePredictor::new(&sim), SimParams::noiseless());
        let mut snapshots = BTreeMap::new();
        for (p, k) in [fast.clone(), slow.clone(), slow.clone()]
            .into_iter()
            .enumerate()
        {
            let out = sim.evaluate_exact(&k, HwConfig::FAIL_SAFE);
            snapshots.insert(
                p,
                KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k),
            );
        }
        let gi: f64 = snapshots.values().map(|s| s.ginstructions).sum();
        let t: f64 = [&fast, &slow, &slow]
            .iter()
            .map(|k| sim.evaluate_exact(k, HwConfig::FAIL_SAFE).time_s)
            .sum();
        let target = PerfTarget::new(gi, t * 1.02);
        // Search order: slow kernels (below target) last ⇒ (1, 2) after 0?
        // Per the heuristic the fast kernel is above target: order (0, 2, 1).
        let with_future =
            optimize_window(&eval, &snapshots, &[0, 2, 1], 0, 3, 0.0, 0.0, &target).unwrap();
        let myopic =
            optimize_window(&eval, &snapshots, &[0, 2, 1], 0, 1, 0.0, 0.0, &target).unwrap();
        let t_future = eval.estimate(&snapshots[&0], with_future.config).time_s;
        let t_myopic = eval.estimate(&snapshots[&0], myopic.config).time_s;
        assert!(
            t_future <= t_myopic + 1e-12,
            "future-aware {t_future} should keep kernel 0 at least as fast as myopic {t_myopic}"
        );
    }
}
