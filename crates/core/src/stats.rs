//! Runtime statistics of the MPC governor, feeding Figures 14 and 15 and
//! the search-cost ablation.

use serde::{Deserialize, Serialize};

/// Accumulated MPC decision statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MpcStats {
    /// Horizon chosen at each post-profiling decision.
    pub horizons: Vec<usize>,
    /// Predictor evaluations per decision.
    pub evaluations: Vec<u64>,
    /// Optimizer overhead per decision, seconds.
    pub overheads_s: Vec<f64>,
    /// Decisions that fell back to the fail-safe configuration.
    pub fail_safe_decisions: usize,
    /// Decisions made during profiling runs (PPK mode).
    pub profiling_decisions: usize,
    /// Post-profiling kernels whose observed identity differed from the
    /// reference pattern's expectation (the pattern-misprediction rate of
    /// Section IV-A2).
    pub pattern_mispredictions: usize,
    /// Post-profiling kernels checked against the reference pattern.
    pub pattern_checks: usize,
    /// Predictor estimates the search layer rejected as anomalous
    /// (non-finite or outside the plausibility envelope).
    pub prediction_anomalies: u64,
    /// Pattern-store records discarded as stale/corrupted at read time.
    pub stale_rejections: u64,
}

impl MpcStats {
    /// Fresh, empty statistics.
    pub fn new() -> MpcStats {
        MpcStats::default()
    }

    /// Records one post-profiling decision.
    pub fn record_decision(
        &mut self,
        horizon: usize,
        evaluations: u64,
        overhead_s: f64,
        fail_safe: bool,
    ) {
        self.horizons.push(horizon);
        self.evaluations.push(evaluations);
        self.overheads_s.push(overhead_s);
        if fail_safe {
            self.fail_safe_decisions += 1;
        }
    }

    /// Mean horizon over all recorded decisions.
    pub fn average_horizon(&self) -> f64 {
        if self.horizons.is_empty() {
            return 0.0;
        }
        self.horizons.iter().sum::<usize>() as f64 / self.horizons.len() as f64
    }

    /// Mean horizon as a fraction of the application's `n` kernels — the
    /// quantity plotted in Figure 15.
    pub fn average_horizon_fraction(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.average_horizon() / n as f64
    }

    /// Total optimizer overhead, seconds.
    pub fn total_overhead_s(&self) -> f64 {
        self.overheads_s.iter().sum()
    }

    /// Total predictor evaluations.
    pub fn total_evaluations(&self) -> u64 {
        self.evaluations.iter().sum()
    }

    /// Fraction of post-profiling kernels the pattern extractor
    /// mispredicted, in [0, 1].
    pub fn misprediction_rate(&self) -> f64 {
        if self.pattern_checks == 0 {
            return 0.0;
        }
        self.pattern_mispredictions as f64 / self.pattern_checks as f64
    }

    /// Mean predictor evaluations per optimized window kernel, the
    /// quantity behind the paper's 19× search-cost claim.
    pub fn evaluations_per_window_kernel(&self) -> f64 {
        let window_kernels: usize = self.horizons.iter().map(|&h| h.max(1)).sum();
        if window_kernels == 0 {
            return 0.0;
        }
        self.total_evaluations() as f64 / window_kernels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_decisions() {
        let mut s = MpcStats::new();
        s.record_decision(4, 80, 1e-4, false);
        s.record_decision(2, 40, 5e-5, true);
        assert_eq!(s.average_horizon(), 3.0);
        assert!((s.average_horizon_fraction(6) - 0.5).abs() < 1e-12);
        assert_eq!(s.total_evaluations(), 120);
        assert!((s.total_overhead_s() - 1.5e-4).abs() < 1e-12);
        assert_eq!(s.fail_safe_decisions, 1);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = MpcStats::new();
        assert_eq!(s.average_horizon(), 0.0);
        assert_eq!(s.average_horizon_fraction(10), 0.0);
        assert_eq!(s.evaluations_per_window_kernel(), 0.0);
    }

    #[test]
    fn evaluations_per_window_kernel_counts_horizons() {
        let mut s = MpcStats::new();
        s.record_decision(5, 100, 0.0, false); // 20 evals per window kernel
        assert_eq!(s.evaluations_per_window_kernel(), 20.0);
        s.record_decision(0, 20, 0.0, false); // h=0 counts as 1
        assert_eq!(s.evaluations_per_window_kernel(), 20.0);
    }

    #[test]
    fn misprediction_rate_counts() {
        let mut s = MpcStats::new();
        assert_eq!(s.misprediction_rate(), 0.0);
        s.pattern_checks = 10;
        s.pattern_mispredictions = 3;
        assert!((s.misprediction_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_n_fraction_is_zero() {
        let mut s = MpcStats::new();
        s.record_decision(3, 1, 0.0, false);
        assert_eq!(s.average_horizon_fraction(0), 0.0);
    }
}
