//! The MPC governor: the full Figure 6 system behind the
//! [`Governor`] interface.
//!
//! Lifecycle, matching Section V-B:
//!
//! 1. **First application invocation** — no stored knowledge. The governor
//!    behaves exactly like PPK (fail-safe for the very first kernel, then
//!    one-kernel-lookback optimization) while the pattern extractor records
//!    the execution order and the total PPK optimization time `T_PPK`.
//! 2. **`end_run`** — the recorded order becomes the reference pattern;
//!    the search order (Section IV-A1a) and adaptive horizon generator
//!    (Section IV-A4) are derived from the profile.
//! 3. **Subsequent invocations** — full MPC: per-kernel adaptive horizon,
//!    window optimization in search order, greedy hill climbing, with the
//!    performance tracker feeding back actual elapsed time/instructions.

use crate::horizon::{HorizonGenerator, HorizonMode};
use crate::optimizer::{optimize_window_exact, optimize_window_with};
use crate::search_order::{average_full_horizon, search_order, ProfiledKernel};
use crate::stats::MpcStats;
use gpm_faults::{no_faults, FaultInjector, FaultKey};
use gpm_governors::search::{hill_climb_with_memo, EnergyEvaluator, EvalMemo};
use gpm_governors::{Governor, GovernorDecision, KernelContext, OverheadModel, PerfTarget};
use gpm_hw::HwConfig;
use gpm_pattern::PatternExtractor;
use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
use gpm_sim::{KernelCharacteristics, KernelOutcome, SimParams};
use gpm_trace::{noop_sink, FailSafeReason, FaultChannelKind, TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which window optimizer the governor runs each decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowSolver {
    /// The paper's polynomial-time heuristic: search-order walk + greedy
    /// hill climbing (Section IV-A1a). The runtime configuration.
    #[default]
    Greedy,
    /// The exact Eq. 3 solution (multiple-choice-knapsack DP over the full
    /// measured configuration space) — the expensive reference of the 65×
    /// search-cost claim. Ablation/testing only.
    ExactDp,
}

/// Static configuration of the MPC governor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MpcConfig {
    /// Horizon policy; the paper's evaluation uses `Adaptive { alpha: 0.05 }`.
    pub horizon_mode: HorizonMode,
    /// Optimizer cost accounting; `OverheadModel::free()` for limit studies.
    pub overhead: OverheadModel,
    /// Attach ground truth to stored snapshots (oracle-predictor studies).
    pub store_truth: bool,
    /// Window optimizer (greedy heuristic by default).
    pub solver: WindowSolver,
    /// Ablation switch: when `false`, the window walk visits kernels in
    /// plain execution order instead of the Section IV-A1a search order
    /// (used by the `search_order_ablation` binary to quantify the
    /// heuristic's contribution).
    pub use_search_order: bool,
    /// Extension beyond the paper: once the extractor detects a repeating
    /// kernel pattern *during the profiling run* (Totoni-style on-line
    /// detection), start MPC-style lookahead immediately using the
    /// detected period instead of waiting for the run to finish. Off by
    /// default (the paper runs pure PPK throughout the first invocation).
    pub period_lookahead: bool,
}

/// The adaptive-MPC power-management governor (the paper's contribution).
///
/// Generic over the power/performance predictor: plug in the trained
/// Random Forest for the realistic system, an oracle for limit studies, or
/// an error-injected model for Figure 13.
#[derive(Debug, Clone)]
pub struct MpcGovernor<P> {
    evaluator: EnergyEvaluator<P>,
    cfg: MpcConfig,
    extractor: PatternExtractor,
    last_snapshot: Option<KernelSnapshot>,
    profile: Vec<ProfiledKernel>,
    t_ppk: f64,
    search: Option<Vec<usize>>,
    horizon_gen: Option<HorizonGenerator>,
    pending_overhead_s: f64,
    target_seen: Option<PerfTarget>,
    stats: MpcStats,
    trace: Arc<dyn TraceSink>,
    faults: Arc<dyn FaultInjector>,
    /// Hoisted hill-climb memo shared by every window position, horizon
    /// step, and decision of this governor — one allocation for its
    /// lifetime (each climb re-scopes it, so decisions are unaffected).
    memo: EvalMemo,
}

impl<P: PowerPerfPredictor> MpcGovernor<P> {
    /// Creates the governor with the given predictor, simulator parameters
    /// (for the CPU `V²f` model), and configuration.
    pub fn new(predictor: P, params: SimParams, cfg: MpcConfig) -> MpcGovernor<P> {
        MpcGovernor {
            evaluator: EnergyEvaluator::new(predictor, params),
            cfg,
            extractor: PatternExtractor::new(),
            last_snapshot: None,
            profile: Vec::new(),
            t_ppk: 0.0,
            search: None,
            horizon_gen: None,
            pending_overhead_s: 0.0,
            target_seen: None,
            stats: MpcStats::new(),
            trace: noop_sink(),
            faults: no_faults(),
            memo: EvalMemo::new(),
        }
    }

    /// Installs a fault injector on the pattern-store read path
    /// (robustness studies). The default injector never fires, so
    /// ordinary governors pay nothing.
    pub fn with_fault_injector(mut self, faults: Arc<dyn FaultInjector>) -> MpcGovernor<P> {
        self.faults = faults;
        self
    }

    /// Decision statistics (horizons, evaluations, overheads).
    pub fn stats(&self) -> &MpcStats {
        &self.stats
    }

    /// The pattern extractor state.
    pub fn extractor(&self) -> &PatternExtractor {
        &self.extractor
    }

    /// The derived search order, once profiling has completed.
    pub fn search_order(&self) -> Option<&[usize]> {
        self.search.as_deref()
    }

    /// Total PPK optimization time accumulated during profiling — the
    /// `T_PPK` consumed by the adaptive horizon generator.
    pub fn t_ppk(&self) -> f64 {
        self.t_ppk
    }

    /// Whether the governor is still in its profiling (PPK) phase.
    pub fn is_profiling(&self) -> bool {
        self.search.is_none()
    }

    /// Reads a pattern-store snapshot for the kernel expected at window
    /// position `p`, routing it through the fault injector and discarding
    /// it (with a `Recovered` trace event) when it comes back malformed.
    fn window_snapshot(&mut self, run_index: usize, p: usize, id: usize) -> Option<KernelSnapshot> {
        let mut snap = self.extractor.record(id)?.snapshot();
        if self.faults.enabled() {
            let key = FaultKey {
                run_index,
                position: p,
            };
            if let Some(f) = self.faults.corrupt_snapshot(key, &mut snap) {
                if self.trace.enabled() {
                    self.trace.record(&TraceEvent::FaultInjected {
                        run_index,
                        position: p,
                        channel: f.channel,
                        magnitude: f.magnitude,
                    });
                }
            }
        }
        if snap.is_well_formed() {
            Some(snap)
        } else {
            // Stale/corrupted record: better to shrink the window than to
            // optimize against garbage.
            self.stats.stale_rejections += 1;
            if self.trace.enabled() {
                self.trace.record(&TraceEvent::Recovered {
                    run_index,
                    position: p,
                    channel: FaultChannelKind::StalePattern,
                    retries: 0,
                });
            }
            None
        }
    }

    /// Extension: an MPC-style decision during the profiling run, with
    /// lookahead synthesized from the detected period — the kernel
    /// expected at future position `q` is the one observed at `q − p`.
    /// Returns `None` when no period has been confirmed yet (fewer than
    /// two full periods observed) or the window would be empty.
    fn period_decision(&mut self, ctx: &KernelContext) -> Option<GovernorDecision> {
        let period = self.extractor.current_period()?;
        let run = self.extractor.run_so_far();
        if run.len() < 2 * period || ctx.position != run.len() {
            return None;
        }
        // Lookahead is sound up to one full period ahead.
        let ids: Vec<usize> = (ctx.position..ctx.position + period)
            .map(|q| run[q - period])
            .collect();
        let mut snapshots: BTreeMap<usize, KernelSnapshot> = BTreeMap::new();
        for (q, id) in (ctx.position..).zip(ids) {
            if let Some(snap) = self.window_snapshot(ctx.run_index, q, id) {
                snapshots.insert(q, snap);
            }
        }
        let order: Vec<usize> = snapshots.keys().copied().collect();
        let plan = optimize_window_with(
            &self.evaluator,
            &snapshots,
            &order,
            ctx.position,
            period,
            ctx.elapsed_gi,
            ctx.elapsed_kernel_s,
            &ctx.target,
            &mut self.memo,
        )?;
        let overhead_s = self.cfg.overhead.cost_s(plan.evaluations);
        self.t_ppk += overhead_s; // still first-invocation optimization cost
        self.pending_overhead_s = overhead_s;
        self.stats.prediction_anomalies += plan.search.anomalies;
        self.stats
            .record_decision(period, plan.evaluations, overhead_s, plan.fail_safe);
        if self.trace.enabled() {
            self.trace.record(&TraceEvent::Search {
                run_index: ctx.run_index,
                position: ctx.position,
                horizon: Some(period),
                evaluations: plan.evaluations,
                visits: plan.search.visits,
                pruned: plan.search.pruned,
                overhead_s,
            });
            if plan.fail_safe {
                let reason = if plan.search.anomalies > 0 {
                    FailSafeReason::PredictionAnomaly
                } else {
                    FailSafeReason::InfeasibleWindow
                };
                self.trace.record(&TraceEvent::FailSafe {
                    run_index: ctx.run_index,
                    position: ctx.position,
                    reason,
                });
            }
        }
        Some(GovernorDecision {
            config: plan.config,
            overhead_s,
            evaluations: plan.evaluations,
            horizon: Some(period),
            predicted: plan.chosen,
        })
    }

    /// PPK-style decision used while profiling (and past the reference
    /// pattern's end).
    fn ppk_decision(&mut self, ctx: &KernelContext, charge_t_ppk: bool) -> GovernorDecision {
        self.stats.profiling_decisions += 1;
        let Some(last) = self.last_snapshot.clone() else {
            return GovernorDecision::instant(HwConfig::FAIL_SAFE);
        };
        let cap = ctx
            .target
            .time_cap(ctx.elapsed_gi, ctx.elapsed_kernel_s, last.ginstructions);
        let (best, stats) = {
            let _span = gpm_telemetry::span("search.hill_climb");
            hill_climb_with_memo(
                &self.evaluator,
                &last,
                HwConfig::FAIL_SAFE,
                cap,
                &mut self.memo,
            )
        };
        let config = best.map(|b| b.config).unwrap_or(HwConfig::FAIL_SAFE);
        let overhead_s = self.cfg.overhead.cost_s(stats.evaluations);
        if charge_t_ppk {
            self.t_ppk += overhead_s;
        }
        self.pending_overhead_s = overhead_s;
        self.stats.prediction_anomalies += stats.anomalies;
        if self.trace.enabled() {
            self.trace.record(&TraceEvent::Search {
                run_index: ctx.run_index,
                position: ctx.position,
                horizon: None,
                evaluations: stats.evaluations,
                visits: stats.visits,
                pruned: stats.pruned,
                overhead_s,
            });
            if best.is_none() {
                let reason = if stats.anomalies > 0 {
                    FailSafeReason::PredictionAnomaly
                } else {
                    FailSafeReason::InfeasibleCap
                };
                self.trace.record(&TraceEvent::FailSafe {
                    run_index: ctx.run_index,
                    position: ctx.position,
                    reason,
                });
            }
        }
        GovernorDecision {
            config,
            overhead_s,
            evaluations: stats.evaluations,
            horizon: None,
            predicted: best,
        }
    }

    /// Full MPC decision once the reference pattern exists.
    fn mpc_decision(&mut self, ctx: &KernelContext) -> GovernorDecision {
        let gen = self
            .horizon_gen
            .as_ref()
            .expect("horizon generator exists post-profiling");
        let h = gen.horizon_for(ctx.position);
        if h == 0 {
            // No optimization budget: run the performance-safe default.
            self.stats.record_decision(0, 0, 0.0, false);
            self.pending_overhead_s = 0.0;
            if self.trace.enabled() {
                self.trace.record(&TraceEvent::Search {
                    run_index: ctx.run_index,
                    position: ctx.position,
                    horizon: Some(0),
                    evaluations: 0,
                    visits: gpm_trace::KnobVisits::default(),
                    pruned: 0,
                    overhead_s: 0.0,
                });
            }
            return GovernorDecision {
                config: HwConfig::FAIL_SAFE,
                overhead_s: 0.0,
                evaluations: 0,
                horizon: Some(0),
                predicted: None,
            };
        }

        let mut current_rejected = false;
        let mut snapshots: BTreeMap<usize, KernelSnapshot> = BTreeMap::new();
        for p in ctx.position..ctx.position + h {
            if let Some(id) = self.extractor.expected(p) {
                let before = self.stats.stale_rejections;
                if let Some(snap) = self.window_snapshot(ctx.run_index, p, id) {
                    snapshots.insert(p, snap);
                } else if p == ctx.position && self.stats.stale_rejections > before {
                    // The head kernel's own record was discarded; any
                    // resulting fail-safe is attributable to staleness.
                    current_rejected = true;
                }
            }
        }
        let execution_order: Vec<usize>;
        let search: &[usize] = if self.cfg.use_search_order {
            self.search.as_deref().unwrap_or(&[])
        } else {
            execution_order = snapshots.keys().copied().collect();
            &execution_order
        };
        let plan = match self.cfg.solver {
            WindowSolver::Greedy => optimize_window_with(
                &self.evaluator,
                &snapshots,
                search,
                ctx.position,
                h,
                ctx.elapsed_gi,
                ctx.elapsed_kernel_s,
                &ctx.target,
                &mut self.memo,
            ),
            WindowSolver::ExactDp => optimize_window_exact(
                &self.evaluator,
                &snapshots,
                &gpm_hw::ConfigSpace::paper_campaign(),
                ctx.position,
                h,
                ctx.elapsed_gi,
                ctx.elapsed_kernel_s,
                &ctx.target,
            ),
        };
        let (config, evals, fail_safe, search, chosen) = match plan {
            Some(p) => (p.config, p.evaluations, p.fail_safe, p.search, p.chosen),
            None => (HwConfig::FAIL_SAFE, 0, true, Default::default(), None),
        };
        let overhead_s = self.cfg.overhead.cost_s(evals);
        self.stats.record_decision(h, evals, overhead_s, fail_safe);
        self.pending_overhead_s = overhead_s;
        self.stats.prediction_anomalies += search.anomalies;
        if self.trace.enabled() {
            self.trace.record(&TraceEvent::Search {
                run_index: ctx.run_index,
                position: ctx.position,
                horizon: Some(h),
                evaluations: evals,
                visits: search.visits,
                pruned: search.pruned,
                overhead_s,
            });
            if fail_safe {
                let reason = if current_rejected {
                    FailSafeReason::StalePattern
                } else if search.anomalies > 0 {
                    FailSafeReason::PredictionAnomaly
                } else {
                    FailSafeReason::InfeasibleWindow
                };
                self.trace.record(&TraceEvent::FailSafe {
                    run_index: ctx.run_index,
                    position: ctx.position,
                    reason,
                });
            }
        }
        GovernorDecision {
            config,
            overhead_s,
            evaluations: evals,
            horizon: Some(h),
            predicted: chosen,
        }
    }
}

impl<P: PowerPerfPredictor> Governor for MpcGovernor<P> {
    fn name(&self) -> &str {
        "mpc"
    }

    fn select(&mut self, ctx: &KernelContext) -> GovernorDecision {
        self.target_seen = Some(ctx.target);
        let in_reference = self
            .extractor
            .reference_len()
            .is_some_and(|len| ctx.position < len);
        if self.search.is_some() && in_reference {
            self.mpc_decision(ctx)
        } else {
            // Profiling run, or the application outgrew its reference
            // pattern: fall back to history-based behaviour. T_PPK only
            // accumulates during true profiling.
            let charge = self.search.is_none();
            if self.cfg.period_lookahead && charge {
                if let Some(d) = self.period_decision(ctx) {
                    return d;
                }
            }
            self.ppk_decision(ctx, charge)
        }
    }

    fn observe(
        &mut self,
        ctx: &KernelContext,
        executed_at: HwConfig,
        outcome: &KernelOutcome,
        truth: Option<&KernelCharacteristics>,
    ) {
        // Never let a corrupted measurement into the pattern store, the
        // PPK lookback snapshot, or the horizon generator's budget tracker.
        let mut sanitized = outcome.clone();
        if sanitized.sanitize() && self.trace.enabled() {
            self.trace.record(&TraceEvent::Recovered {
                run_index: ctx.run_index,
                position: ctx.position,
                channel: FaultChannelKind::CounterNoise,
                retries: 0,
            });
        }
        let outcome = &sanitized;
        let truth = if self.cfg.store_truth {
            truth.cloned()
        } else {
            None
        };
        let expected = self.extractor.expected(ctx.position);
        let observed = self.extractor.observe(outcome, executed_at, truth.clone());
        if let Some(expected) = expected {
            self.stats.pattern_checks += 1;
            if expected != observed {
                self.stats.pattern_mispredictions += 1;
                if self.trace.enabled() {
                    self.trace.record(&TraceEvent::PatternMiss {
                        run_index: ctx.run_index,
                        position: ctx.position,
                        expected,
                        observed,
                    });
                }
            }
        }
        self.last_snapshot = Some(KernelSnapshot {
            counters: outcome.counters,
            measured_at: executed_at,
            ginstructions: outcome.ginstructions,
            truth,
        });
        if self.search.is_none() {
            self.profile.push(ProfiledKernel {
                position: ctx.position,
                gi: outcome.ginstructions,
                time_s: outcome.time_s,
            });
        }
        if let Some(gen) = self.horizon_gen.as_mut() {
            gen.record(outcome.time_s, self.pending_overhead_s);
        }
        self.pending_overhead_s = 0.0;
    }

    fn end_run(&mut self) {
        self.extractor.end_run();
        if self.search.is_none() {
            if let (Some(n), Some(target)) = (self.extractor.reference_len(), self.target_seen) {
                if n > 0 {
                    self.search = Some(search_order(&self.profile, target.throughput()));
                    let mut gen = HorizonGenerator::new(
                        self.cfg.horizon_mode,
                        n,
                        average_full_horizon(n),
                        self.t_ppk,
                        target.total_time_s(),
                    );
                    // Budget each position by its share of the profiled
                    // run time, so heterogeneous kernels are charged
                    // what they actually cost rather than T_total/N.
                    let weights: Vec<f64> = self.profile.iter().map(|p| p.time_s).collect();
                    gen.set_budget_weights(&weights);
                    self.horizon_gen = Some(gen);
                }
            }
        }
        if let Some(gen) = self.horizon_gen.as_mut() {
            gen.reset_run();
        }
        self.last_snapshot = None;
        self.pending_overhead_s = 0.0;
    }

    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = sink;
    }

    fn set_fault_injector(&mut self, faults: Arc<dyn FaultInjector>) {
        self.faults = faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::ConfigSpace;
    use gpm_sim::{ApuSimulator, OraclePredictor};

    /// Minimal driver: runs `governor` over the kernel sequence once,
    /// returning (total kernel time, total energy, total overhead time).
    fn drive(
        governor: &mut dyn Governor,
        sim: &ApuSimulator,
        kernels: &[KernelCharacteristics],
        target: PerfTarget,
        run_index: usize,
    ) -> (f64, f64, f64) {
        let mut elapsed_s = 0.0;
        let mut elapsed_gi = 0.0;
        let mut energy = 0.0;
        let mut overhead_s = 0.0;
        for (position, k) in kernels.iter().enumerate() {
            let ctx = KernelContext {
                position,
                run_index,
                elapsed_kernel_s: elapsed_s,
                elapsed_gi,
                target,
                total_kernels: Some(kernels.len()),
            };
            let d = governor.select(&ctx);
            overhead_s += d.overhead_s;
            let out = sim.evaluate(k, d.config);
            energy += out.energy.total_j();
            elapsed_s += out.time_s;
            elapsed_gi += out.ginstructions;
            governor.observe(&ctx, d.config, &out, Some(k));
        }
        governor.end_run();
        (elapsed_s, energy, overhead_s)
    }

    /// The irregular kmeans-style pattern: one long low-throughput kernel,
    /// then many fast ones (A B²⁰ condensed to B⁸).
    fn irregular_app() -> Vec<KernelCharacteristics> {
        let swap = KernelCharacteristics::unscalable("swap", 0.05);
        let kmeans = KernelCharacteristics::compute_bound("kmeans", 25.0);
        let mut seq = vec![swap];
        for _ in 0..8 {
            seq.push(kmeans.clone());
        }
        seq
    }

    fn baseline_target(sim: &ApuSimulator, kernels: &[KernelCharacteristics]) -> PerfTarget {
        let mut gi = 0.0;
        let mut t = 0.0;
        for k in kernels {
            let out = sim.evaluate(k, HwConfig::MAX_PERF);
            gi += out.ginstructions;
            t += out.time_s;
        }
        PerfTarget::new(gi, t)
    }

    fn oracle_mpc(sim: &ApuSimulator, cfg: MpcConfig) -> MpcGovernor<OraclePredictor> {
        let mut cfg = cfg;
        cfg.store_truth = true;
        MpcGovernor::new(OraclePredictor::new(sim), SimParams::noiseless(), cfg)
    }

    #[test]
    fn profiling_run_starts_fail_safe_and_records() {
        let sim = ApuSimulator::noiseless();
        let kernels = irregular_app();
        let target = baseline_target(&sim, &kernels);
        let mut mpc = oracle_mpc(&sim, MpcConfig::default());
        assert!(mpc.is_profiling());
        let ctx = KernelContext {
            position: 0,
            run_index: 0,
            elapsed_kernel_s: 0.0,
            elapsed_gi: 0.0,
            target,
            total_kernels: Some(kernels.len()),
        };
        let d = mpc.select(&ctx);
        assert_eq!(d.config, HwConfig::FAIL_SAFE);
        assert_eq!(d.horizon, None);
    }

    #[test]
    fn end_run_derives_search_order_and_horizon() {
        let sim = ApuSimulator::noiseless();
        let kernels = irregular_app();
        let target = baseline_target(&sim, &kernels);
        let mut mpc = oracle_mpc(&sim, MpcConfig::default());
        drive(&mut mpc, &sim, &kernels, target, 0);
        assert!(!mpc.is_profiling());
        let order = mpc.search_order().unwrap().to_vec();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..kernels.len()).collect::<Vec<_>>());
        assert!(mpc.t_ppk() > 0.0);
    }

    #[test]
    fn post_profiling_decisions_carry_horizons() {
        let sim = ApuSimulator::noiseless();
        let kernels = irregular_app();
        let target = baseline_target(&sim, &kernels);
        let mut mpc = oracle_mpc(&sim, MpcConfig::default());
        drive(&mut mpc, &sim, &kernels, target, 0);
        let profiling_decisions = mpc.stats().profiling_decisions;
        drive(&mut mpc, &sim, &kernels, target, 1);
        assert_eq!(mpc.stats().profiling_decisions, profiling_decisions);
        assert!(!mpc.stats().horizons.is_empty());
        let n = kernels.len();
        assert!(mpc.stats().horizons.iter().all(|&h| h <= n));
    }

    #[test]
    fn mpc_saves_energy_versus_max_perf_within_perf_budget() {
        let sim = ApuSimulator::noiseless();
        let kernels = irregular_app();
        let target = baseline_target(&sim, &kernels);
        // Baseline energy at max perf.
        let base_energy: f64 = kernels
            .iter()
            .map(|k| sim.evaluate(k, HwConfig::MAX_PERF).energy.total_j())
            .sum();
        let base_time = target.total_time_s();

        let mut mpc = oracle_mpc(&sim, MpcConfig::default());
        drive(&mut mpc, &sim, &kernels, target, 0); // profiling
        let (time, energy, overhead) = drive(&mut mpc, &sim, &kernels, target, 1);
        assert!(
            energy < base_energy * 0.95,
            "MPC energy {energy} should undercut max-perf {base_energy}"
        );
        assert!(
            time + overhead < base_time * 1.10,
            "MPC time {time}+{overhead} vs baseline {base_time}"
        );
    }

    #[test]
    fn full_horizon_mode_uses_n() {
        let sim = ApuSimulator::noiseless();
        let kernels = irregular_app();
        let target = baseline_target(&sim, &kernels);
        let cfg = MpcConfig {
            horizon_mode: HorizonMode::Full,
            overhead: OverheadModel::free(),
            store_truth: true,
            ..MpcConfig::default()
        };
        let mut mpc = oracle_mpc(&sim, cfg);
        drive(&mut mpc, &sim, &kernels, target, 0);
        drive(&mut mpc, &sim, &kernels, target, 1);
        assert!(mpc.stats().horizons.iter().all(|&h| h == kernels.len()));
    }

    #[test]
    fn zero_overhead_model_reports_zero_overhead() {
        let sim = ApuSimulator::noiseless();
        let kernels = irregular_app();
        let target = baseline_target(&sim, &kernels);
        let cfg = MpcConfig {
            horizon_mode: HorizonMode::Full,
            overhead: OverheadModel::free(),
            store_truth: true,
            ..MpcConfig::default()
        };
        let mut mpc = oracle_mpc(&sim, cfg);
        drive(&mut mpc, &sim, &kernels, target, 0);
        let (_, _, overhead) = drive(&mut mpc, &sim, &kernels, target, 1);
        assert_eq!(overhead, 0.0);
        assert_eq!(mpc.t_ppk(), 0.0);
    }

    #[test]
    fn period_lookahead_kicks_in_during_profiling() {
        // A strictly periodic application (AB)^6: after two observed
        // periods, the extension should switch from PPK to windowed
        // decisions with horizon = period while still in run 0.
        let sim = ApuSimulator::noiseless();
        let a = KernelCharacteristics::compute_bound("a", 20.0);
        let b = KernelCharacteristics::memory_bound("b", 1.0);
        let mut kernels = Vec::new();
        for _ in 0..6 {
            kernels.push(a.clone());
            kernels.push(b.clone());
        }
        let target = baseline_target(&sim, &kernels);

        let cfg = MpcConfig {
            store_truth: true,
            period_lookahead: true,
            ..MpcConfig::default()
        };
        let mut mpc = oracle_mpc(&sim, cfg);
        drive(&mut mpc, &sim, &kernels, target, 0);
        // Some profiling decisions were windowed with the detected period.
        let period_decisions = mpc.stats().horizons.iter().filter(|&&h| h == 2).count();
        assert!(
            period_decisions >= 4,
            "only {period_decisions} period-based decisions"
        );
    }

    #[test]
    fn period_lookahead_is_inert_for_aperiodic_apps() {
        let sim = ApuSimulator::noiseless();
        let kernels: Vec<KernelCharacteristics> = (0..6)
            .map(|i| KernelCharacteristics::compute_bound(format!("k{i}"), 8.0 + 4.0 * i as f64))
            .collect();
        let target = baseline_target(&sim, &kernels);
        let cfg = MpcConfig {
            store_truth: true,
            period_lookahead: true,
            ..MpcConfig::default()
        };
        let mut mpc = oracle_mpc(&sim, cfg);
        drive(&mut mpc, &sim, &kernels, target, 0);
        assert!(
            mpc.stats().horizons.is_empty(),
            "no windowed decisions expected"
        );
        assert_eq!(mpc.stats().profiling_decisions, 6);
    }

    #[test]
    fn regular_app_mpc_matches_ppk_closely() {
        // Single repeating kernel: future knowledge buys nothing (the
        // paper's regular benchmarks), so MPC and PPK energies agree
        // within a few percent.
        let sim = ApuSimulator::noiseless();
        let kernel = KernelCharacteristics::compute_bound("mandelbulb", 20.0);
        let kernels: Vec<_> = (0..10).map(|_| kernel.clone()).collect();
        let target = baseline_target(&sim, &kernels);

        let mut mpc = oracle_mpc(&sim, MpcConfig::default());
        drive(&mut mpc, &sim, &kernels, target, 0);
        let (_, mpc_energy, _) = drive(&mut mpc, &sim, &kernels, target, 1);

        let mut ppk = gpm_governors::PpkGovernor::new(
            OraclePredictor::new(&sim),
            SimParams::noiseless(),
            ConfigSpace::paper_campaign(),
            OverheadModel::default(),
        )
        .with_truth_snapshots(true);
        drive(&mut ppk, &sim, &kernels, target, 0);
        let (_, ppk_energy, _) = drive(&mut ppk, &sim, &kernels, target, 1);

        let ratio = mpc_energy / ppk_energy;
        assert!((0.9..=1.1).contains(&ratio), "MPC/PPK energy ratio {ratio}");
    }

    #[test]
    fn irregular_app_mpc_beats_ppk() {
        // kmeans-style low→high transition: PPK mispredicts the phase
        // change and loses performance it cannot recover; MPC anticipates
        // it (Section II-E).
        let sim = ApuSimulator::noiseless();
        let kernels = irregular_app();
        let target = baseline_target(&sim, &kernels);

        let mut mpc = oracle_mpc(&sim, MpcConfig::default());
        drive(&mut mpc, &sim, &kernels, target, 0);
        let (mpc_time, _, mpc_oh) = drive(&mut mpc, &sim, &kernels, target, 1);

        let mut ppk = gpm_governors::PpkGovernor::new(
            OraclePredictor::new(&sim),
            SimParams::noiseless(),
            ConfigSpace::paper_campaign(),
            OverheadModel::default(),
        )
        .with_truth_snapshots(true);
        drive(&mut ppk, &sim, &kernels, target, 0);
        let (ppk_time, _, ppk_oh) = drive(&mut ppk, &sim, &kernels, target, 1);

        let mpc_total = mpc_time + mpc_oh;
        let ppk_total = ppk_time + ppk_oh;
        assert!(
            mpc_total <= ppk_total * 1.02,
            "MPC wall time {mpc_total} should not trail PPK {ppk_total}"
        );
        // And MPC must stay within striking distance of the target.
        assert!(mpc_time <= target.total_time_s() * 1.10);
    }
}
