//! The adaptive prediction-horizon generator (Section IV-A4).
//!
//! A longer horizon finds better configurations but costs more optimizer
//! time between kernels. The generator bounds the *total* performance
//! penalty — MPC compute plus approximation losses — to a fraction `α` of
//! the baseline runtime by solving, for each kernel `i` (1-based):
//!
//! ```text
//! Hᵢ·(N̄/N)·T_PPK + Σⱼ₍ⱼ₌₁..ᵢ₋₁₎(Tⱼ + T_MPC,ⱼ) + T_total/N
//! ───────────────────────────────────────────────────────── ≤ 1 + α
//!                     i · T_total/N
//! ```
//!
//! giving `Hᵢ ≤ (N/N̄)·[(1 + α − 1/i)·i·T_total/N − Σⱼ(Tⱼ + T_MPC,ⱼ)]/T_PPK`,
//! floored to an integer and clamped to `[0, N]`.

use serde::{Deserialize, Serialize};

/// How the MPC horizon is chosen each kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HorizonMode {
    /// The paper's adaptive scheme with overhead budget `α`
    /// (0.05 in the evaluation).
    Adaptive {
        /// Maximum tolerated fractional performance penalty.
        alpha: f64,
    },
    /// Always use the full remaining application (the Section VI-E
    /// ablation).
    Full,
    /// A fixed horizon length.
    Fixed(usize),
}

impl Default for HorizonMode {
    fn default() -> HorizonMode {
        HorizonMode::Adaptive { alpha: 0.05 }
    }
}

/// Per-application state of the horizon generator.
///
/// Constructed after the profiling run from: the kernel count `N`, the
/// average full-horizon window `N̄`, the profiling run's total PPK
/// optimization time `T_PPK`, and the baseline total kernel time
/// `T_total`. During later runs the caller records each kernel's actual
/// time and MPC overhead so the budget reflects reality.
///
/// # Examples
///
/// ```
/// use gpm_mpc::{HorizonGenerator, HorizonMode};
///
/// let mut gen = HorizonGenerator::new(
///     HorizonMode::Adaptive { alpha: 0.05 },
///     10,     // N kernels
///     5.5,    // N̄
///     1e-3,   // T_PPK: 1 ms of profiling-run optimization
///     1.0,    // T_total: 1 s of baseline kernel time
/// );
/// let h0 = gen.horizon_for(0);
/// assert!(h0 <= 10);
/// gen.record(0.1, 1e-5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HorizonGenerator {
    mode: HorizonMode,
    n: usize,
    n_bar: f64,
    t_ppk: f64,
    t_total: f64,
    /// Cumulative time budget through each position: `cum_budget[i]` is
    /// the target elapsed time after kernel `i` retires. Uniform
    /// (`(i+1)·T_total/N`) unless [`set_budget_weights`] installed a
    /// profiled distribution.
    ///
    /// [`set_budget_weights`]: HorizonGenerator::set_budget_weights
    cum_budget: Vec<f64>,
    /// Σ (Tⱼ + T_MPC,ⱼ) over kernels retired so far this run.
    elapsed_with_overhead_s: f64,
    /// Kernels retired so far this run.
    retired: usize,
}

impl HorizonGenerator {
    /// Creates a generator; see the type-level docs for parameter meaning.
    ///
    /// # Panics
    ///
    /// Panics if `t_total` is non-positive or `n` is zero.
    pub fn new(
        mode: HorizonMode,
        n: usize,
        n_bar: f64,
        t_ppk: f64,
        t_total: f64,
    ) -> HorizonGenerator {
        assert!(n > 0, "kernel count must be positive");
        assert!(t_total > 0.0, "baseline time must be positive");
        let per_kernel = t_total / n as f64;
        HorizonGenerator {
            mode,
            n,
            n_bar: n_bar.max(1.0),
            t_ppk: t_ppk.max(0.0),
            t_total,
            cum_budget: (1..=n).map(|i| i as f64 * per_kernel).collect(),
            elapsed_with_overhead_s: 0.0,
            retired: 0,
        }
    }

    /// Replaces the uniform per-kernel budget with one proportional to
    /// `weights` (typically profiled execution time per position).
    ///
    /// The paper's Section IV-A4 inequality charges every kernel an equal
    /// `T_total/N` share, which declares heterogeneous applications
    /// "behind schedule" whenever a longer-than-average kernel runs at
    /// its cap — collapsing the horizon to zero for the rest of the run
    /// even though the plan is on target. Budgeting each position by its
    /// profiled share of the run keeps punctuality accounting consistent
    /// with how the application actually spends time. With uniform
    /// weights this is exactly the paper's formula.
    ///
    /// Ignored unless `weights` has one positive-sum entry per kernel.
    pub fn set_budget_weights(&mut self, weights: &[f64]) {
        if weights.len() != self.n {
            return;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 || weights.iter().any(|w| *w < 0.0 || !w.is_finite())
        {
            return;
        }
        let mut acc = 0.0;
        self.cum_budget = weights
            .iter()
            .map(|w| {
                acc += w / total * self.t_total;
                acc
            })
            .collect();
    }

    /// The horizon for the kernel at 0-based `position`.
    pub fn horizon_for(&self, position: usize) -> usize {
        match self.mode {
            HorizonMode::Full => self.n,
            HorizonMode::Fixed(h) => h.min(self.n),
            HorizonMode::Adaptive { alpha } => {
                if self.t_ppk <= 0.0 {
                    // Free optimization: no reason to shrink the horizon.
                    return self.n;
                }
                // The paper's inequality with per-position budgets Bᵢ
                // (uniform Bᵢ = T_total/N reproduces it exactly):
                //   Hᵢ·(N̄/N)·T_PPK + elapsed + Bᵢ ≤ (1+α)·Σⱼ₍ⱼ≤ᵢ₎Bⱼ
                let idx = position.min(self.n - 1);
                let cum = self.cum_budget[idx];
                let prev = if idx == 0 {
                    0.0
                } else {
                    self.cum_budget[idx - 1]
                };
                let b_i = cum - prev;
                let allowed = (1.0 + alpha) * cum - b_i - self.elapsed_with_overhead_s;
                let h = allowed * self.n as f64 / (self.n_bar * self.t_ppk);
                if !h.is_finite() || h <= 0.0 {
                    0
                } else {
                    (h.floor() as usize).min(self.n)
                }
            }
        }
    }

    /// Records a retired kernel's actual execution time and the MPC
    /// overhead spent deciding it.
    pub fn record(&mut self, kernel_time_s: f64, mpc_overhead_s: f64) {
        self.elapsed_with_overhead_s += kernel_time_s + mpc_overhead_s;
        self.retired += 1;
    }

    /// Resets per-run accumulators at an application-invocation boundary.
    pub fn reset_run(&mut self) {
        self.elapsed_with_overhead_s = 0.0;
        self.retired = 0;
    }

    /// The operating mode.
    pub fn mode(&self) -> HorizonMode {
        self.mode
    }

    /// Total kernels `N`.
    pub fn n(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(alpha: f64, t_ppk: f64) -> HorizonGenerator {
        // N = 10 kernels, N̄ = 5.5, T_total = 1 s (0.1 s/kernel).
        HorizonGenerator::new(HorizonMode::Adaptive { alpha }, 10, 5.5, t_ppk, 1.0)
    }

    #[test]
    fn full_mode_always_returns_n() {
        let mut g = HorizonGenerator::new(HorizonMode::Full, 7, 4.0, 1.0, 1.0);
        assert_eq!(g.horizon_for(0), 7);
        g.record(100.0, 100.0); // even with huge overruns
        assert_eq!(g.horizon_for(3), 7);
    }

    #[test]
    fn fixed_mode_clamps_to_n() {
        let g = HorizonGenerator::new(HorizonMode::Fixed(3), 7, 4.0, 1.0, 1.0);
        assert_eq!(g.horizon_for(0), 3);
        let g = HorizonGenerator::new(HorizonMode::Fixed(30), 7, 4.0, 1.0, 1.0);
        assert_eq!(g.horizon_for(0), 7);
    }

    #[test]
    fn cheap_optimization_allows_long_horizons() {
        // T_PPK = 100 µs over 10 kernels → 10 µs/kernel vs 100 ms kernels.
        let g = gen(0.05, 100e-6);
        assert_eq!(g.horizon_for(0), 10);
    }

    #[test]
    fn expensive_optimization_shrinks_horizon() {
        // T_PPK comparable to total runtime: horizons collapse.
        let g = gen(0.05, 0.5);
        assert!(g.horizon_for(0) <= 1, "h = {}", g.horizon_for(0));
    }

    #[test]
    fn zero_cost_ppk_means_full_horizon() {
        let g = gen(0.05, 0.0);
        assert_eq!(g.horizon_for(0), 10);
    }

    #[test]
    fn budget_grows_when_running_ahead() {
        let mut g = gen(0.05, 0.02);
        let h_initial = g.horizon_for(0);
        // Kernels finishing faster than baseline free up budget.
        for _ in 0..5 {
            g.record(0.05, 0.0); // half the 0.1 s baseline per kernel
        }
        let h_later = g.horizon_for(5);
        assert!(h_later >= h_initial, "initial {h_initial}, later {h_later}");
    }

    #[test]
    fn budget_shrinks_when_running_behind() {
        let mut g = gen(0.05, 0.02);
        for _ in 0..5 {
            g.record(0.2, 0.01); // twice the baseline plus overhead
        }
        assert_eq!(g.horizon_for(5), 0);
    }

    #[test]
    fn reset_restores_initial_budget() {
        let mut g = gen(0.05, 0.02);
        let h0 = g.horizon_for(0);
        g.record(0.5, 0.1);
        g.reset_run();
        assert_eq!(g.horizon_for(0), h0);
    }

    #[test]
    fn horizon_never_exceeds_n() {
        let g = HorizonGenerator::new(HorizonMode::Adaptive { alpha: 10.0 }, 5, 1.0, 1e-9, 1.0);
        for i in 0..5 {
            assert!(g.horizon_for(i) <= 5);
        }
    }

    #[test]
    #[should_panic(expected = "kernel count")]
    fn zero_kernels_panics() {
        let _ = HorizonGenerator::new(HorizonMode::Full, 0, 1.0, 1.0, 1.0);
    }
}
