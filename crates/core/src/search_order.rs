//! The MPC search-order heuristic (Section IV-A1a, Figure 7).
//!
//! Instead of backtracking over the exponential space of joint window
//! assignments, the paper fixes a *search order* over kernel positions
//! derived from the profiling run, such that no optimized kernel is ever
//! revisited:
//!
//! 1. Positions whose **accumulated** application throughput (up to and
//!    including that kernel) is at or above the overall target form the
//!    *above-target* group; the rest form the *below-target* group.
//! 2. The above-target group is ordered by **increasing** individual kernel
//!    throughput, the below-target group by **decreasing** throughput.
//! 3. The search order is the concatenation: above-target then
//!    below-target.
//!
//! Optimizing a window in this order makes the optimizer price the
//! *hardest-to-satisfy* future kernels first: it reserves performance for
//! upcoming low-throughput phases (can't "catch up" later) and banks
//! energy savings against upcoming high-throughput phases.

use serde::{Deserialize, Serialize};

/// Per-position profiling info gathered during the first application run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfiledKernel {
    /// Execution position within the application, 0-based.
    pub position: usize,
    /// Instructions executed, giga-instructions.
    pub gi: f64,
    /// Measured execution time, seconds.
    pub time_s: f64,
}

impl ProfiledKernel {
    /// Individual kernel throughput, giga-instructions per second.
    pub fn throughput(&self) -> f64 {
        self.gi / self.time_s.max(1e-12)
    }
}

/// Computes the MPC search order over kernel positions.
///
/// `target_throughput` is the application-level target (`I_total/T_total`
/// of the baseline). Returns a permutation of `0..profile.len()`.
///
/// # Examples
///
/// The worked example of Figure 7 — three above-target kernels followed by
/// three below-target ones yields the order (3, 2, 1, 6, 5, 4) in the
/// paper's 1-based numbering:
///
/// ```
/// use gpm_mpc::{search_order, ProfiledKernel};
///
/// let mk = |position, gi, time_s| ProfiledKernel { position, gi, time_s };
/// let profile = vec![
///     mk(0, 3.3, 1.0), // throughput 3.3, cumulative 3.3
///     mk(1, 2.4, 1.0), // 2.4, cumulative 2.85
///     mk(2, 1.5, 1.0), // 1.5, cumulative 2.4
///     mk(3, 5.0, 10.0), // 0.5, cumulative 0.94 → below target
///     mk(4, 5.5, 10.0), // 0.55
///     mk(5, 6.0, 10.0), // 0.60
/// ];
/// assert_eq!(search_order(&profile, 1.0), vec![2, 1, 0, 5, 4, 3]);
/// ```
pub fn search_order(profile: &[ProfiledKernel], target_throughput: f64) -> Vec<usize> {
    let mut above: Vec<&ProfiledKernel> = Vec::new();
    let mut below: Vec<&ProfiledKernel> = Vec::new();
    let mut cum_gi = 0.0;
    let mut cum_t = 0.0;
    for k in profile {
        cum_gi += k.gi;
        cum_t += k.time_s;
        let cum_throughput = cum_gi / cum_t.max(1e-12);
        if cum_throughput >= target_throughput {
            above.push(k);
        } else {
            below.push(k);
        }
    }
    above.sort_by(|a, b| {
        a.throughput()
            .partial_cmp(&b.throughput())
            .unwrap()
            .then(a.position.cmp(&b.position))
    });
    below.sort_by(|a, b| {
        b.throughput()
            .partial_cmp(&a.throughput())
            .unwrap()
            .then(a.position.cmp(&b.position))
    });
    above
        .iter()
        .chain(below.iter())
        .map(|k| k.position)
        .collect()
}

/// Average per-kernel horizon length `N̄` under full-horizon operation,
/// where kernel `i` (1-based) optimizes the window `{i, …, N}`:
/// `N̄ = (Σᵢ (N − i + 1)) / N = (N + 1) / 2`.
///
/// The adaptive horizon generator uses `N̄` to scale the profiling run's
/// total optimization time into a per-kernel MPC cost estimate.
pub fn average_full_horizon(n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        (n as f64 + 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(position: usize, gi: f64, time_s: f64) -> ProfiledKernel {
        ProfiledKernel {
            position,
            gi,
            time_s,
        }
    }

    #[test]
    fn figure_seven_example() {
        let profile = vec![
            mk(0, 3.3, 1.0),
            mk(1, 2.4, 1.0),
            mk(2, 1.5, 1.0),
            mk(3, 5.0, 10.0),
            mk(4, 5.5, 10.0),
            mk(5, 6.0, 10.0),
        ];
        assert_eq!(search_order(&profile, 1.0), vec![2, 1, 0, 5, 4, 3]);
    }

    #[test]
    fn order_is_a_permutation() {
        let profile: Vec<ProfiledKernel> = (0..20)
            .map(|i| mk(i, (i % 7 + 1) as f64, ((i % 3) + 1) as f64))
            .collect();
        let mut order = search_order(&profile, 1.5);
        order.sort_unstable();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn all_above_target_sorted_increasing() {
        let profile = vec![mk(0, 30.0, 1.0), mk(1, 10.0, 1.0), mk(2, 20.0, 1.0)];
        // Target far below every kernel: everything is above-target.
        assert_eq!(search_order(&profile, 1.0), vec![1, 2, 0]);
    }

    #[test]
    fn all_below_target_sorted_decreasing() {
        let profile = vec![mk(0, 1.0, 1.0), mk(1, 3.0, 1.0), mk(2, 2.0, 1.0)];
        assert_eq!(search_order(&profile, 100.0), vec![1, 2, 0]);
    }

    #[test]
    fn grouping_uses_cumulative_not_individual_throughput() {
        // Kernel 1 individually exceeds the target, but arrives after a
        // long slow kernel has dragged cumulative throughput below it.
        let profile = vec![mk(0, 1.0, 10.0), mk(1, 3.0, 1.0)];
        // Cumulative after k1: 4/11 ≈ 0.36 < 1 → below-target despite
        // individual throughput 3.0.
        let order = search_order(&profile, 1.0);
        assert_eq!(order, vec![1, 0]); // both below-target, decreasing
    }

    #[test]
    fn ties_broken_by_position() {
        let profile = vec![mk(0, 2.0, 1.0), mk(1, 2.0, 1.0), mk(2, 2.0, 1.0)];
        assert_eq!(search_order(&profile, 1.0), vec![0, 1, 2]);
    }

    #[test]
    fn empty_profile_empty_order() {
        assert!(search_order(&[], 1.0).is_empty());
    }

    #[test]
    fn average_full_horizon_values() {
        assert_eq!(average_full_horizon(0), 0.0);
        assert_eq!(average_full_horizon(1), 1.0);
        assert_eq!(average_full_horizon(9), 5.0);
        assert_eq!(average_full_horizon(30), 15.5);
    }

    #[test]
    fn zero_time_kernel_does_not_panic() {
        let profile = vec![mk(0, 1.0, 0.0), mk(1, 1.0, 1.0)];
        let order = search_order(&profile, 1.0);
        assert_eq!(order.len(), 2);
    }
}
