//! The scenario DSL: a declarative, fully seeded description of what a
//! fleet run executes.
//!
//! A [`FleetScenario`] is a list of [`ShardPlan`]s — one per simulated
//! device — each carrying a staggered arrival offset, an ordered job
//! queue of (workload, scheme) pairs, and its own deterministic
//! [`FaultPlan`]. Everything is a pure function of the scenario seed, so
//! a scenario value *is* the reproduction recipe: replaying it anywhere
//! yields byte-identical fleet results.

use gpm_faults::FaultPlan;
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;
use gpm_workloads::{generate_workload, suite, GeneratorParams, Workload};
use serde::{Deserialize, Serialize};

/// Serializable scheme selector — the subset of [`Scheme`] that makes
/// sense as a per-device fleet policy (parameter-free constructors so
/// scenarios stay declarative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeSpec {
    /// The shipping Turbo Core policy.
    TurboCore,
    /// PPK with the trained Random Forest.
    PpkRf,
    /// MPC with the Random Forest and the adaptive horizon (the paper's
    /// full system — the fleet default).
    MpcAdaptive,
    /// MPC with the Random Forest over the full remaining horizon.
    MpcFull,
}

impl SchemeSpec {
    /// The concrete [`Scheme`] this spec evaluates.
    pub fn to_scheme(self) -> Scheme {
        match self {
            SchemeSpec::TurboCore => Scheme::TurboCore,
            SchemeSpec::PpkRf => Scheme::PpkRf,
            SchemeSpec::MpcAdaptive => Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
            SchemeSpec::MpcFull => Scheme::MpcRf {
                horizon: HorizonMode::Full,
            },
        }
    }

    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            SchemeSpec::TurboCore => "TurboCore",
            SchemeSpec::PpkRf => "PPK(RF)",
            SchemeSpec::MpcAdaptive => "MPC(RF,adaptive)",
            SchemeSpec::MpcFull => "MPC(RF,full)",
        }
    }
}

/// Serializable workload selector: a named suite benchmark or a seeded
/// generated application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// One of the paper's benchmarks, by suite name.
    Named(String),
    /// A generated application with the paper's population statistics.
    Generated {
        /// Generator seed (deterministic per seed).
        seed: u64,
    },
}

impl WorkloadSpec {
    /// Materializes the workload.
    ///
    /// # Panics
    ///
    /// Panics when a named workload is not in the suite — scenarios are
    /// authored against the fixed benchmark set, so an unknown name is a
    /// scenario bug, not a runtime condition.
    pub fn materialize(&self) -> Workload {
        match self {
            WorkloadSpec::Named(name) => gpm_workloads::workload_by_name(name)
                .unwrap_or_else(|| panic!("unknown suite workload {name:?} in scenario")),
            WorkloadSpec::Generated { seed } => {
                generate_workload(&GeneratorParams::default(), *seed)
            }
        }
    }
}

/// One admission-queue entry: evaluate `scheme` on `workload`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// What to run.
    pub workload: WorkloadSpec,
    /// Which policy governs the device while running it.
    pub scheme: SchemeSpec,
}

/// Everything one simulated device executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Stable shard index (also the determinism sort key).
    pub shard_id: usize,
    /// Display label, e.g. `apu-03`.
    pub device: String,
    /// Simulated arrival offset before the shard's first job, seconds —
    /// models staggered job arrival across the fleet.
    pub arrival_offset_s: f64,
    /// Ordered job queue.
    pub jobs: Vec<JobSpec>,
    /// Deterministic fault schedule for this shard (zero = healthy).
    pub faults: FaultPlan,
}

/// A complete fleet scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenario {
    /// Scenario name (artifact stem).
    pub name: String,
    /// Root seed every derived quantity hashes from.
    pub seed: u64,
    /// Per-device plans, in shard order.
    pub shards: Vec<ShardPlan>,
}

/// Splitmix64 — the scenario builder's only randomness source, so shard
/// composition is a pure function of `(seed, shard, job)`.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FleetScenario {
    /// An empty scenario to extend with [`FleetScenario::shard`].
    pub fn new(name: impl Into<String>, seed: u64) -> FleetScenario {
        FleetScenario {
            name: name.into(),
            seed,
            shards: Vec::new(),
        }
    }

    /// Appends one shard plan (builder style).
    #[must_use]
    pub fn shard(mut self, plan: ShardPlan) -> FleetScenario {
        self.shards.push(plan);
        self
    }

    /// The canonical mixed soak scenario: `shards` devices with
    /// `jobs_per_shard` jobs each, drawing workloads round-robin from the
    /// suite interleaved with seeded generated applications, schemes
    /// rotating over every [`SchemeSpec`], arrivals staggered 10 ms per
    /// shard, and every third shard running under a mild uniform fault
    /// plan (rate 5%) while the rest stay healthy.
    ///
    /// Deterministic per `(seed, shards, jobs_per_shard)`.
    pub fn mixed(seed: u64, shards: usize, jobs_per_shard: usize) -> FleetScenario {
        let suite_workloads = suite();
        let names: Vec<&str> = suite_workloads.iter().map(|w| w.name()).collect();
        let schemes = [
            SchemeSpec::MpcAdaptive,
            SchemeSpec::PpkRf,
            SchemeSpec::TurboCore,
            SchemeSpec::MpcFull,
        ];
        let mut scenario = FleetScenario::new(format!("mixed-{shards}x{jobs_per_shard}"), seed);
        for shard_id in 0..shards {
            let mut jobs = Vec::with_capacity(jobs_per_shard);
            for j in 0..jobs_per_shard {
                let draw = mix(seed ^ mix(shard_id as u64) ^ (j as u64));
                // One job in four is an out-of-suite generated app; the
                // rest cycle through the paper benchmarks.
                let workload = if draw % 4 == 3 {
                    WorkloadSpec::Generated { seed: draw >> 2 }
                } else {
                    WorkloadSpec::Named(names[(draw as usize >> 2) % names.len()].to_string())
                };
                let scheme = schemes[(draw as usize >> 32) % schemes.len()];
                jobs.push(JobSpec { workload, scheme });
            }
            let faults = if shard_id % 3 == 2 {
                FaultPlan::uniform(seed ^ (shard_id as u64).wrapping_mul(0x9e37), 0.05)
            } else {
                FaultPlan::zero(seed ^ shard_id as u64)
            };
            scenario.shards.push(ShardPlan {
                shard_id,
                device: format!("apu-{shard_id:02}"),
                arrival_offset_s: shard_id as f64 * 0.010,
                jobs,
                faults,
            });
        }
        scenario
    }

    /// Total jobs across all shards.
    pub fn total_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.jobs.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_scenario_is_deterministic() {
        let a = FleetScenario::mixed(42, 8, 3);
        let b = FleetScenario::mixed(42, 8, 3);
        assert_eq!(a, b);
        assert_ne!(a, FleetScenario::mixed(43, 8, 3));
    }

    #[test]
    fn mixed_scenario_has_requested_shape() {
        let s = FleetScenario::mixed(7, 9, 4);
        assert_eq!(s.shards.len(), 9);
        assert_eq!(s.total_jobs(), 36);
        for (i, shard) in s.shards.iter().enumerate() {
            assert_eq!(shard.shard_id, i);
            assert!((shard.arrival_offset_s - i as f64 * 0.010).abs() < 1e-12);
        }
        // Every third shard is faulty, the rest healthy.
        assert!(!s.shards[2].faults.is_zero());
        assert!(s.shards[0].faults.is_zero());
        assert!(s.shards[1].faults.is_zero());
    }

    #[test]
    fn mixed_scenario_mixes_workloads_and_schemes() {
        let s = FleetScenario::mixed(1, 12, 6);
        let mut named = 0usize;
        let mut generated = 0usize;
        let mut schemes = std::collections::BTreeSet::new();
        for shard in &s.shards {
            for job in &shard.jobs {
                match &job.workload {
                    WorkloadSpec::Named(_) => named += 1,
                    WorkloadSpec::Generated { .. } => generated += 1,
                }
                schemes.insert(format!("{:?}", job.scheme));
            }
        }
        assert!(
            named > 0 && generated > 0,
            "named {named} generated {generated}"
        );
        assert!(schemes.len() >= 3, "schemes {schemes:?}");
    }

    #[test]
    fn workload_specs_materialize() {
        assert_eq!(
            WorkloadSpec::Named("Spmv".into()).materialize().name(),
            "Spmv"
        );
        let g = WorkloadSpec::Generated { seed: 99 }.materialize();
        assert!(!g.kernels().is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown suite workload")]
    fn unknown_named_workload_panics() {
        let _ = WorkloadSpec::Named("NotABenchmark".into()).materialize();
    }

    #[test]
    fn scheme_specs_map_to_schemes() {
        assert_eq!(SchemeSpec::TurboCore.to_scheme(), Scheme::TurboCore);
        assert_eq!(SchemeSpec::PpkRf.to_scheme(), Scheme::PpkRf);
        assert!(matches!(
            SchemeSpec::MpcAdaptive.to_scheme(),
            Scheme::MpcRf {
                horizon: HorizonMode::Adaptive { .. }
            }
        ));
        assert!(matches!(
            SchemeSpec::MpcFull.to_scheme(),
            Scheme::MpcRf {
                horizon: HorizonMode::Full
            }
        ));
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let s = FleetScenario::mixed(5, 4, 2);
        let json = serde_json::to_string(&s).unwrap();
        let back: FleetScenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
