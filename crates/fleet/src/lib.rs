//! `gpm-fleet` — sharded multi-device fleet simulation service.
//!
//! The paper governs one APU between kernel launches; this crate scales
//! that governor to a fleet. A [`FleetScenario`] (the declarative DSL in
//! [`scenario`]) describes N simulated devices with staggered arrivals,
//! mixed workloads, and per-shard fault plans; [`FleetService`] executes
//! the scenario with a pool of worker threads that claim whole shards
//! from a work-stealing admission cursor, each shard running hermetically
//! in its own [`gpm_harness::ExecEnv`] while sharing the read-only
//! trained forest and the memoized Turbo Core baseline cache of one
//! [`gpm_harness::EvalContext`]. Telemetry flows through `gpm-trace`
//! ([`gpm_trace::TraceSummary::merge`]) into a [`FleetReport`] with a
//! fleet-level energy/throughput rollup ([`telemetry`]).
//!
//! # Determinism contract
//!
//! The serialized [`FleetReport`] is **byte-identical for any worker
//! count** — 1, 2, or one per core. Shards never share mutable state,
//! worker scheduling only changes *which thread* runs a shard, and
//! reports are assembled in shard order. `tests/fleet_determinism.rs`
//! enforces the contract by diffing full artifacts across worker counts,
//! and `fleet_bench` re-checks it on every benchmark run.
//!
//! ```no_run
//! use gpm_fleet::{FleetScenario, FleetService};
//! use gpm_harness::{EvalContext, EvalOptions};
//!
//! let ctx = EvalContext::build(EvalOptions::fast());
//! let scenario = FleetScenario::mixed(42, 8, 4);
//! let report = FleetService::new(ctx).run(&scenario);
//! println!(
//!     "{} jobs, {:.1} GI/s fleet throughput",
//!     report.rollup.jobs, report.rollup.throughput_gips
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod service;
pub mod telemetry;

pub use scenario::{FleetScenario, JobSpec, SchemeSpec, ShardPlan, WorkloadSpec};
pub use service::FleetService;
pub use telemetry::{FleetReport, FleetRollup, JobReport, ShardReport};
