//! Fleet telemetry: per-job and per-shard reports plus the fleet-level
//! rollup.
//!
//! Reports are plain serializable values assembled in shard order, so the
//! serialized [`FleetReport`] is the byte-identity artifact the
//! determinism suite diffs across worker counts.

use gpm_harness::{Comparison, SchemeOutcome};
use gpm_telemetry::TelemetrySnapshot;
use gpm_trace::TraceSummary;
use serde::{Deserialize, Serialize};

/// One evaluated (workload, scheme) pair on one shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Workload name.
    pub workload: String,
    /// Scheme display label.
    pub scheme: String,
    /// Scheme wall-clock time, seconds (kernels + overheads).
    pub wall_time_s: f64,
    /// Scheme chip-wide energy, joules.
    pub energy_j: f64,
    /// Work done, giga-instructions.
    pub ginstructions: f64,
    /// Chip-wide energy savings vs the shard's Turbo Core baseline, %.
    pub energy_savings_pct: f64,
    /// Wall-clock speedup vs the baseline.
    pub speedup: f64,
}

impl JobReport {
    /// Builds the report from an evaluated outcome.
    pub fn from_outcome(out: &SchemeOutcome) -> JobReport {
        let cmp = Comparison::between(&out.baseline, &out.measured);
        JobReport {
            workload: out.measured.workload.clone(),
            scheme: out.label.to_string(),
            wall_time_s: out.measured.wall_time_s(),
            energy_j: out.measured.total_energy_j(),
            ginstructions: out.measured.ginstructions,
            energy_savings_pct: cmp.energy_savings_pct,
            speedup: cmp.speedup,
        }
    }
}

/// Everything one shard produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Stable shard index.
    pub shard_id: usize,
    /// Device label from the plan.
    pub device: String,
    /// Arrival offset from the plan, seconds.
    pub arrival_offset_s: f64,
    /// Per-job results, in admission order.
    pub jobs: Vec<JobReport>,
    /// Simulated busy time: sum of job wall-clock times, seconds.
    pub busy_time_s: f64,
    /// Shard chip-wide energy, joules.
    pub energy_j: f64,
    /// Shard work done, giga-instructions.
    pub ginstructions: f64,
    /// Turbo Core baselines this shard resolved (computed or served from
    /// the shared cache). The compute/hit split depends only on worker
    /// scheduling, so the fleet artifact keeps the sum and zeroes the
    /// split inside `trace` to preserve byte-identity.
    pub baseline_resolutions: u64,
    /// The shard's merged decision-level trace counters
    /// (`baseline_simulations`/`baseline_cache_hits` normalized to 0 —
    /// see `baseline_resolutions`).
    pub trace: TraceSummary,
    /// Snapshot of the shard's private telemetry registry, populated when
    /// the service ran with [`crate::FleetService::with_telemetry`]. Span
    /// rows carry wall-clock timings, which are not deterministic, so
    /// this field is excluded from the serialized artifact to keep
    /// [`FleetReport::to_artifact_json`] byte-identical across worker
    /// counts and with/without registries live.
    #[serde(skip)]
    pub telemetry: Option<TelemetrySnapshot>,
}

impl ShardReport {
    /// Simulated completion time of the shard's last job (arrival offset
    /// plus busy time), seconds.
    pub fn completion_s(&self) -> f64 {
        self.arrival_offset_s + self.busy_time_s
    }
}

/// Fleet-level rollup across every shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRollup {
    /// Shards executed.
    pub shards: usize,
    /// Jobs executed.
    pub jobs: usize,
    /// Total chip-wide energy, joules.
    pub energy_j: f64,
    /// Total work done, giga-instructions.
    pub ginstructions: f64,
    /// Simulated makespan: latest shard completion, seconds.
    pub makespan_s: f64,
    /// Fleet throughput: total giga-instructions / makespan.
    pub throughput_gips: f64,
    /// Fail-safe fallbacks observed fleet-wide.
    pub fail_safe_entries: u64,
    /// Faults injected fleet-wide.
    pub fault_injections: u64,
    /// All shard trace summaries merged in shard order.
    pub trace: TraceSummary,
    /// All per-shard telemetry snapshots merged in shard order (present
    /// when the service ran with a registry installed). Excluded from
    /// the serialized artifact for the same reason as
    /// [`ShardReport::telemetry`].
    #[serde(skip)]
    pub telemetry: Option<TelemetrySnapshot>,
}

impl FleetRollup {
    /// Rolls up shard reports (assumed sorted by `shard_id`).
    pub fn from_shards(shards: &[ShardReport]) -> FleetRollup {
        let mut trace = TraceSummary::default();
        let mut telemetry: Option<TelemetrySnapshot> = None;
        let mut energy_j = 0.0;
        let mut ginstructions = 0.0;
        let mut makespan_s = 0.0f64;
        let mut jobs = 0;
        for s in shards {
            trace.merge(&s.trace);
            if let Some(snap) = &s.telemetry {
                telemetry
                    .get_or_insert_with(TelemetrySnapshot::default)
                    .merge(snap);
            }
            energy_j += s.energy_j;
            ginstructions += s.ginstructions;
            makespan_s = makespan_s.max(s.completion_s());
            jobs += s.jobs.len();
        }
        FleetRollup {
            shards: shards.len(),
            jobs,
            energy_j,
            ginstructions,
            makespan_s,
            throughput_gips: if makespan_s > 0.0 {
                ginstructions / makespan_s
            } else {
                0.0
            },
            fail_safe_entries: trace.fail_safe_events,
            fault_injections: trace.fault_injections,
            trace,
            telemetry,
        }
    }
}

/// The full fleet artifact: scenario identity, per-shard reports, and
/// the rollup. Serialized bytes of this value are the determinism
/// contract — identical for any worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Per-shard reports, sorted by `shard_id`.
    pub shards: Vec<ShardReport>,
    /// Fleet-level rollup.
    pub rollup: FleetRollup,
}

impl FleetReport {
    /// The canonical serialized artifact (pretty JSON, stable field
    /// order) used for byte-identity diffs and `results/` emission.
    pub fn to_artifact_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("fleet report serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(id: usize, offset: f64, busy: f64, energy: f64, gi: f64) -> ShardReport {
        ShardReport {
            shard_id: id,
            device: format!("apu-{id:02}"),
            arrival_offset_s: offset,
            jobs: vec![JobReport {
                workload: "w".into(),
                scheme: "s".into(),
                wall_time_s: busy,
                energy_j: energy,
                ginstructions: gi,
                energy_savings_pct: 0.0,
                speedup: 1.0,
            }],
            busy_time_s: busy,
            energy_j: energy,
            ginstructions: gi,
            baseline_resolutions: 1,
            trace: TraceSummary::default(),
            telemetry: None,
        }
    }

    #[test]
    fn rollup_totals_energy_work_and_makespan() {
        let shards = vec![shard(0, 0.0, 2.0, 10.0, 4.0), shard(1, 0.5, 1.0, 6.0, 2.0)];
        let r = FleetRollup::from_shards(&shards);
        assert_eq!(r.shards, 2);
        assert_eq!(r.jobs, 2);
        assert!((r.energy_j - 16.0).abs() < 1e-12);
        assert!((r.ginstructions - 6.0).abs() < 1e-12);
        // Shard 0 completes at 2.0 s, shard 1 at 1.5 s.
        assert!((r.makespan_s - 2.0).abs() < 1e-12);
        assert!((r.throughput_gips - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rollup_of_empty_fleet_is_zero() {
        let r = FleetRollup::from_shards(&[]);
        assert_eq!(r.shards, 0);
        assert_eq!(r.jobs, 0);
        assert_eq!(r.throughput_gips, 0.0);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let shards = vec![shard(0, 0.0, 1.0, 5.0, 3.0)];
        let report = FleetReport {
            scenario: "t".into(),
            seed: 1,
            rollup: FleetRollup::from_shards(&shards),
            shards,
        };
        let json = report.to_artifact_json();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
