//! The sharded fleet service: N simulated devices, each with its own
//! [`ExecEnv`] and fault plan, sharing one read-only [`EvalContext`]
//! (trained forest + memoized Turbo Core baselines).
//!
//! # Determinism
//!
//! Worker threads claim *whole shards* from an atomic admission cursor
//! (work stealing: a fast worker drains more shards), and every shard is
//! evaluated hermetically — its own `ExecEnv`, trace sink, and fault
//! plan, with no cross-shard mutable state. Completed shard reports are
//! pushed under a mutex tagged with their shard id and sorted before
//! assembly, so the serialized [`FleetReport`] is byte-identical for any
//! worker count. The only shared state, the context's baseline cache, is
//! value-deterministic: whichever shard resolves a baseline first stores
//! the same bits any other shard would have computed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gpm_harness::{EvalContext, ExecEnv};
use gpm_telemetry::Telemetry;
use gpm_trace::AggregateSink;
use parking_lot::Mutex;

use crate::scenario::{FleetScenario, ShardPlan};
use crate::telemetry::{FleetReport, FleetRollup, JobReport, ShardReport};

/// The fleet simulation service.
///
/// Owns the shared evaluation context; [`FleetService::run`] executes a
/// scenario and returns the aggregate report.
pub struct FleetService {
    ctx: EvalContext,
    workers: usize,
    telemetry: Option<Telemetry>,
}

impl FleetService {
    /// A service over `ctx` with automatic worker sizing
    /// ([`std::thread::available_parallelism`], capped by shard count).
    pub fn new(ctx: EvalContext) -> FleetService {
        FleetService {
            ctx,
            workers: 0,
            telemetry: None,
        }
    }

    /// Pins the worker-thread count; `0` restores automatic sizing.
    /// Results are byte-identical for every setting.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> FleetService {
        self.workers = workers;
        self
    }

    /// Installs a fleet-level telemetry registry. Workers record
    /// `fleet.worker`/`fleet.shard` spans plus bridge counters
    /// (`gpm_fleet_jobs_total`, `gpm_fleet_shards_total`,
    /// `gpm_fleet_fail_safe_total`) into it, and every shard additionally
    /// gets a private per-shard registry whose snapshot lands in
    /// [`ShardReport::telemetry`] and, merged, in
    /// [`FleetRollup::telemetry`]. Snapshots carry wall-clock span
    /// timings, so they are `#[serde(skip)]`ed out of the artifact —
    /// the serialized [`FleetReport`] stays byte-identical for any
    /// worker count with registries live.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> FleetService {
        self.telemetry = Some(telemetry);
        self
    }

    /// The fleet-level telemetry registry, if installed.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// The shared evaluation context.
    pub fn ctx(&self) -> &EvalContext {
        &self.ctx
    }

    /// Worker threads a scenario with `shards` shards would use.
    pub fn effective_workers(&self, shards: usize) -> usize {
        let auto = || std::thread::available_parallelism().map_or(1, |n| n.get());
        let w = if self.workers == 0 {
            auto()
        } else {
            self.workers
        };
        w.clamp(1, shards.max(1))
    }

    /// Runs every shard of `scenario` to completion and returns the
    /// fleet report (shards sorted by id).
    pub fn run(&self, scenario: &FleetScenario) -> FleetReport {
        let workers = self.effective_workers(scenario.shards.len());
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<ShardReport>> =
            Mutex::new(Vec::with_capacity(scenario.shards.len()));

        crossbeam::scope(|scope| {
            for _ in 0..workers {
                let cursor = &cursor;
                let results = &results;
                let telemetry = self.telemetry.as_ref();
                scope.spawn(move |_| {
                    // Route spans and bridge counters from this worker
                    // into the fleet registry; inert when none installed.
                    let _enter = telemetry.map(|t| t.enter());
                    let _worker_span = gpm_telemetry::span("fleet.worker");
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(plan) = scenario.shards.get(idx) else {
                            break;
                        };
                        let report = run_shard(&self.ctx, plan, telemetry.is_some());
                        if let Some(t) = telemetry {
                            t.counter("gpm_fleet_shards_total").inc();
                            t.counter("gpm_fleet_jobs_total")
                                .add(report.jobs.len() as u64);
                            t.counter("gpm_fleet_fail_safe_total")
                                .add(report.trace.fail_safe_events);
                        }
                        results.lock().push(report);
                    }
                });
            }
        })
        .expect("fleet worker panicked");

        let mut shards = results.into_inner();
        shards.sort_by_key(|s| s.shard_id);
        FleetReport {
            scenario: scenario.name.clone(),
            seed: scenario.seed,
            rollup: FleetRollup::from_shards(&shards),
            shards,
        }
    }
}

/// Evaluates one shard's job queue hermetically. With `instrument` set,
/// the shard gets a private telemetry registry (snapshotted into the
/// report) and a `fleet.shard` span in whatever registry the calling
/// worker has entered.
fn run_shard(ctx: &EvalContext, plan: &ShardPlan, instrument: bool) -> ShardReport {
    let _shard_span = gpm_telemetry::span("fleet.shard");
    let shard_telemetry = instrument.then(Telemetry::new);
    let sink = Arc::new(AggregateSink::new());
    let mut env = ExecEnv::new()
        .with_trace(sink.clone())
        .with_fault_plan(plan.faults.clone());
    if let Some(t) = &shard_telemetry {
        env = env.with_telemetry(t.clone());
    }
    let mut jobs = Vec::with_capacity(plan.jobs.len());
    let mut busy_time_s = 0.0;
    let mut energy_j = 0.0;
    let mut ginstructions = 0.0;
    for job in &plan.jobs {
        let workload = job.workload.materialize();
        let out = env.evaluate(ctx, &workload, job.scheme.to_scheme());
        let report = JobReport::from_outcome(&out);
        busy_time_s += report.wall_time_s;
        energy_j += report.energy_j;
        ginstructions += report.ginstructions;
        jobs.push(report);
    }
    let mut trace = sink.summary();
    // Whether a shard's baseline resolution computed the entry or hit one
    // another shard already stored depends only on worker scheduling;
    // keep the scheduling-independent resolution count and drop the
    // split so the artifact is byte-identical for any worker count.
    let baseline_resolutions = trace.baseline_simulations + trace.baseline_cache_hits;
    trace.baseline_simulations = 0;
    trace.baseline_cache_hits = 0;
    ShardReport {
        shard_id: plan.shard_id,
        device: plan.device.clone(),
        arrival_offset_s: plan.arrival_offset_s,
        jobs,
        busy_time_s,
        energy_j,
        ginstructions,
        baseline_resolutions,
        trace,
        telemetry: shard_telemetry.map(|t| t.snapshot()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_harness::EvalOptions;

    fn ctx() -> EvalContext {
        EvalContext::build(EvalOptions::fast())
    }

    #[test]
    fn single_shard_runs_all_jobs_in_order() {
        let scenario = FleetScenario::mixed(11, 1, 3);
        let report = FleetService::new(ctx()).with_workers(1).run(&scenario);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].jobs.len(), 3);
        assert_eq!(report.rollup.jobs, 3);
        assert!(report.rollup.energy_j > 0.0);
        assert!(report.rollup.throughput_gips > 0.0);
        // Job order matches the plan's admission order.
        for (job, spec) in report.shards[0].jobs.iter().zip(&scenario.shards[0].jobs) {
            assert_eq!(job.workload, spec.workload.materialize().name());
            assert_eq!(job.scheme, spec.scheme.to_scheme().label().as_ref());
        }
    }

    #[test]
    fn effective_workers_clamps_to_shard_count() {
        let svc = FleetService::new(ctx()).with_workers(64);
        assert_eq!(svc.effective_workers(4), 4);
        assert_eq!(svc.effective_workers(0), 1);
        let auto = FleetService::new(svc.ctx.clone());
        assert!(auto.effective_workers(1000) >= 1);
    }

    #[test]
    fn faulty_shards_record_injections_and_healthy_shards_do_not() {
        // mixed() arms every third shard (id 2) with a uniform plan.
        let scenario = FleetScenario::mixed(3, 3, 2);
        let report = FleetService::new(ctx()).with_workers(2).run(&scenario);
        assert!(report.shards[2].trace.fault_injections > 0);
        assert_eq!(report.shards[0].trace.fault_injections, 0);
        assert_eq!(
            report.rollup.fault_injections,
            report
                .shards
                .iter()
                .map(|s| s.trace.fault_injections)
                .sum::<u64>()
        );
    }
}
