//! The fleet determinism contract: serialized fleet artifacts are
//! byte-identical for any worker count, and repeated runs of the same
//! scenario never drift (soak).
//!
//! This suite is the load-bearing gate for every future scaling change —
//! if a PR introduces worker-count-dependent state (shared RNG, unsorted
//! assembly, cross-shard mutation), the artifact diff here catches it.

use gpm_fleet::{FleetScenario, FleetService};
use gpm_harness::{EvalContext, EvalOptions};

fn ctx() -> EvalContext {
    EvalContext::build(EvalOptions::fast())
}

/// The headline gate from the issue: a ≥8-shard mixed-workload scenario
/// (staggered arrivals, generated + suite workloads, faulty and healthy
/// shards) replayed at 1, 2, and auto workers produces byte-identical
/// serialized artifacts.
#[test]
fn mixed_scenario_artifacts_are_byte_identical_across_worker_counts() {
    let ctx = ctx();
    let scenario = FleetScenario::mixed(0xF1EE7, 8, 3);
    assert!(scenario.shards.len() >= 8);

    let one = FleetService::new(ctx.clone())
        .with_workers(1)
        .run(&scenario)
        .to_artifact_json();
    let two = FleetService::new(ctx.clone())
        .with_workers(2)
        .run(&scenario)
        .to_artifact_json();
    let auto = FleetService::new(ctx).run(&scenario).to_artifact_json();

    assert_eq!(one, two, "1-worker and 2-worker artifacts diverged");
    assert_eq!(one, auto, "1-worker and auto-worker artifacts diverged");
}

/// Sharing one context (baseline cache warm from a previous run) must
/// not change results either: a cold context and a warm one produce the
/// same bytes, because cached baselines are value-deterministic.
#[test]
fn warm_baseline_cache_does_not_change_artifacts() {
    let scenario = FleetScenario::mixed(0xCAFE, 8, 2);

    let cold = FleetService::new(ctx()).with_workers(2).run(&scenario);
    let warm_svc = FleetService::new(ctx()).with_workers(2);
    let _prime = warm_svc.run(&scenario); // warm the shared cache
    let warm = warm_svc.run(&scenario);

    assert_eq!(cold.to_artifact_json(), warm.to_artifact_json());
    // The warm run actually hit the cache — the contract is "same bytes
    // despite different cache states", so prove the states differed.
    let stats = warm_svc.ctx().baseline_stats();
    assert!(
        stats.hits > 0,
        "expected baseline cache hits, got {stats:?}"
    );
}

/// Soak: replaying the same seeded scenario many times on one service
/// never drifts from the first artifact. `GPM_FLEET_SOAK_ITERS`
/// overrides the iteration count (CI's fleet-soak job raises it).
#[test]
fn repeated_replays_never_drift() {
    let iters: usize = std::env::var("GPM_FLEET_SOAK_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let scenario = FleetScenario::mixed(0x50A4, 8, 2);
    let svc = FleetService::new(ctx());
    let first = svc.run(&scenario).to_artifact_json();
    for i in 1..iters {
        let again = svc.run(&scenario).to_artifact_json();
        assert_eq!(first, again, "artifact drifted on replay {i}");
    }
}

/// Live telemetry registries must be invisible to the artifact: a run
/// with per-shard registries and a fleet-level registry installed is
/// byte-identical to a clean run, at every worker count — while the
/// registries demonstrably observed the fleet (so the gate is not
/// vacuous).
#[test]
fn live_telemetry_registries_do_not_change_artifacts() {
    let ctx = ctx();
    let scenario = FleetScenario::mixed(0x7E1E, 8, 2);
    let clean = FleetService::new(ctx.clone())
        .with_workers(2)
        .run(&scenario)
        .to_artifact_json();

    for workers in [1usize, 2, 4] {
        let fleet_tel = gpm_telemetry::Telemetry::new();
        let report = FleetService::new(ctx.clone())
            .with_workers(workers)
            .with_telemetry(fleet_tel.clone())
            .run(&scenario);
        assert_eq!(
            clean,
            report.to_artifact_json(),
            "telemetry-instrumented artifact diverged at {workers} workers"
        );

        // The fleet registry saw every shard and job, and recorded
        // worker/shard spans.
        let fleet_snap = fleet_tel.snapshot();
        assert_eq!(
            fleet_snap.counter("gpm_fleet_shards_total"),
            Some(report.shards.len() as u64)
        );
        assert_eq!(
            fleet_snap.counter("gpm_fleet_jobs_total"),
            Some(report.rollup.jobs as u64)
        );
        assert_eq!(
            fleet_snap.span("fleet.shard").map(|s| s.count),
            Some(report.shards.len() as u64)
        );
        assert!(fleet_snap.span("fleet.worker").is_some());

        // Per-shard registries were snapshotted into the reports and the
        // rollup merge agrees with the trace-side dispatch accounting.
        let rollup_snap = report.rollup.telemetry.as_ref().expect("rollup snapshot");
        assert_eq!(
            rollup_snap.counter("gpm_dispatches_total"),
            Some(report.rollup.trace.dispatches)
        );
        for shard in &report.shards {
            let snap = shard.telemetry.as_ref().expect("shard snapshot");
            assert_eq!(
                snap.counter("gpm_dispatches_total"),
                Some(shard.trace.dispatches)
            );
        }
    }
}

/// Different seeds must produce different fleets — guards against the
/// scenario builder collapsing to a constant (which would make the
/// byte-identity gates vacuous).
#[test]
fn distinct_seeds_produce_distinct_artifacts() {
    let ctx = ctx();
    let a = FleetService::new(ctx.clone())
        .with_workers(1)
        .run(&FleetScenario::mixed(1, 8, 2))
        .to_artifact_json();
    let b = FleetService::new(ctx)
        .with_workers(1)
        .run(&FleetScenario::mixed(2, 8, 2))
        .to_artifact_json();
    assert_ne!(a, b);
}

/// The rollup is internally consistent with the per-shard reports it
/// aggregates (totals, makespan, merged trace counters).
#[test]
fn rollup_is_consistent_with_shard_reports() {
    let scenario = FleetScenario::mixed(7, 8, 2);
    let report = FleetService::new(ctx()).run(&scenario);

    let energy: f64 = report.shards.iter().map(|s| s.energy_j).sum();
    let gi: f64 = report.shards.iter().map(|s| s.ginstructions).sum();
    let makespan = report
        .shards
        .iter()
        .map(|s| s.completion_s())
        .fold(0.0f64, f64::max);
    assert!((report.rollup.energy_j - energy).abs() < 1e-9);
    assert!((report.rollup.ginstructions - gi).abs() < 1e-9);
    assert!((report.rollup.makespan_s - makespan).abs() < 1e-12);
    assert_eq!(
        report.rollup.jobs,
        report.shards.iter().map(|s| s.jobs.len()).sum::<usize>()
    );
    assert_eq!(
        report.rollup.trace.decisions,
        report.shards.iter().map(|s| s.trace.decisions).sum::<u64>()
    );
    assert_eq!(
        report.rollup.fault_injections,
        report
            .shards
            .iter()
            .map(|s| s.trace.fault_injections)
            .sum::<u64>()
    );
}
