//! Criterion benchmarks of the end-to-end experiment pipelines: a full
//! governor replay of a benchmark under each scheme, mirroring the per-
//! figure workloads. These time the *reproduction harness*, not the
//! modelled hardware.

use criterion::{criterion_group, criterion_main, Criterion};
use gpm_harness::env::ExecEnv;
use gpm_harness::{EvalContext, EvalOptions, Scheme};
use gpm_mpc::HorizonMode;
use gpm_workloads::workload_by_name;
use std::hint::black_box;
use std::sync::OnceLock;

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
}

fn bench_schemes(c: &mut Criterion) {
    let env = ExecEnv::new();
    let w = workload_by_name("Spmv").unwrap();
    let mut group = c.benchmark_group("pipeline/spmv");
    group.sample_size(10);
    group.bench_function("turbo_core", |b| {
        b.iter(|| black_box(env.evaluate(ctx(), &w, Scheme::TurboCore)))
    });
    group.bench_function("ppk_rf", |b| {
        b.iter(|| black_box(env.evaluate(ctx(), &w, Scheme::PpkRf)))
    });
    group.bench_function("mpc_rf_adaptive", |b| {
        b.iter(|| {
            black_box(env.evaluate(
                ctx(),
                &w,
                Scheme::MpcRf {
                    horizon: HorizonMode::default(),
                },
            ))
        })
    });
    group.bench_function("mpc_oracle_full", |b| {
        b.iter(|| black_box(env.evaluate(ctx(), &w, Scheme::MpcOracle)))
    });
    group.bench_function("theoretically_optimal", |b| {
        b.iter(|| black_box(env.evaluate(ctx(), &w, Scheme::TheoreticallyOptimal)))
    });
    group.finish();
}

fn bench_workload_sizes(c: &mut Criterion) {
    let env = ExecEnv::new();
    let mut group = c.benchmark_group("pipeline/mpc_by_workload");
    group.sample_size(10);
    for name in ["XSBench", "kmeans", "Spmv"] {
        let w = workload_by_name(name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(env.evaluate(
                    ctx(),
                    &w,
                    Scheme::MpcRf {
                        horizon: HorizonMode::default(),
                    },
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes, bench_workload_sizes);
criterion_main!(benches);
