//! Criterion micro-benchmarks of the building blocks on the runtime's
//! critical path: one simulator evaluation, one Random-Forest prediction,
//! signature computation, hill-climb and exhaustive search, the TO DP
//! solve, and a pattern-extractor update.
//!
//! These quantify the constants behind the paper's overhead model
//! (Section IV-A1a's 19× / 65× search-cost arguments).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpm_governors::search::{exhaustive_best, hill_climb, EnergyEvaluator};
use gpm_governors::to::ToSolver;
use gpm_harness::{context, EvalOptions};
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_model::{Dataset, ForestParams, RandomForestPredictor};
use gpm_pattern::{KernelSignature, PatternExtractor};
use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
use gpm_sim::{ApuSimulator, KernelCharacteristics, OraclePredictor, SimParams};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let sim = ApuSimulator::default();
    let k = KernelCharacteristics::peak("bench", 12.0);
    c.bench_function("sim/evaluate_kernel", |b| {
        b.iter(|| black_box(sim.evaluate(black_box(&k), black_box(HwConfig::FAIL_SAFE))))
    });
}

fn bench_rf_predict(c: &mut Criterion) {
    let sim = ApuSimulator::default();
    let kernels = vec![
        KernelCharacteristics::compute_bound("a", 15.0),
        KernelCharacteristics::memory_bound("b", 1.5),
    ];
    let space = context::training_space(4);
    let ds = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
    let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 7);
    let out = sim.evaluate(&kernels[0], HwConfig::FAIL_SAFE);
    let snap = KernelSnapshot::counters_only(out.counters, HwConfig::FAIL_SAFE, 1.0);
    c.bench_function("model/rf_predict", |b| {
        b.iter(|| black_box(rf.predict(black_box(&snap), black_box(HwConfig::MAX_PERF))))
    });
    // One decision's worth of candidates, scalar loop vs one batched call.
    let cfgs: Vec<HwConfig> = ConfigSpace::paper_campaign().iter().collect();
    c.bench_function("model/rf_predict_scalar_336", |b| {
        b.iter(|| {
            for &cfg in &cfgs {
                black_box(rf.predict(black_box(&snap), cfg));
            }
        })
    });
    let mut batch = Vec::new();
    c.bench_function("model/rf_predict_batch_336", |b| {
        b.iter(|| {
            rf.predict_batch(black_box(&snap), &cfgs, &mut batch);
            black_box(&batch);
        })
    });
}

fn bench_rf_train(c: &mut Criterion) {
    let sim = ApuSimulator::default();
    let kernels = vec![
        KernelCharacteristics::compute_bound("a", 15.0),
        KernelCharacteristics::memory_bound("b", 1.5),
    ];
    let space = context::training_space(8);
    let ds = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
    let params = EvalOptions::fast().forest;
    let mut group = c.benchmark_group("model");
    group.sample_size(10);
    group.bench_function("rf_train_small", |b| {
        b.iter(|| black_box(RandomForestPredictor::train(black_box(&ds), &params, 7)))
    });
    group.finish();
}

fn bench_searches(c: &mut Criterion) {
    let sim = ApuSimulator::noiseless();
    let k = KernelCharacteristics::peak("bench", 12.0);
    let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
    let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k);
    let eval = EnergyEvaluator::new(OraclePredictor::new(&sim), SimParams::noiseless());
    let cap = out.time_s * 1.1;
    let space = ConfigSpace::paper_campaign();
    c.bench_function("search/hill_climb", |b| {
        b.iter(|| {
            black_box(hill_climb(
                &eval,
                black_box(&snap),
                HwConfig::FAIL_SAFE,
                cap,
            ))
        })
    });
    c.bench_function("search/exhaustive_336", |b| {
        b.iter(|| black_box(exhaustive_best(&eval, black_box(&snap), &space, cap)))
    });

    // The governor's real per-decision search: hill climb priced by the
    // Random-Forest predictor through its batched flat engine.
    let kernels = vec![
        KernelCharacteristics::compute_bound("a", 15.0),
        KernelCharacteristics::memory_bound("b", 1.5),
    ];
    let campaign = context::training_space(4);
    let ds = Dataset::from_campaign(&sim, &kernels, &campaign, HwConfig::FAIL_SAFE);
    let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 7);
    let rf_eval = EnergyEvaluator::new(rf, SimParams::noiseless());
    c.bench_function("search/hill_climb_rf", |b| {
        b.iter(|| {
            black_box(hill_climb(
                &rf_eval,
                black_box(&snap),
                HwConfig::FAIL_SAFE,
                cap,
            ))
        })
    });
    c.bench_function("search/exhaustive_rf_336", |b| {
        b.iter(|| black_box(exhaustive_best(&rf_eval, black_box(&snap), &space, cap)))
    });
}

fn bench_to_solver(c: &mut Criterion) {
    // A Spmv-sized instance: 30 kernels × 336 options.
    let sim = ApuSimulator::noiseless();
    let w = gpm_workloads::workload_by_name("Spmv").unwrap();
    let configs: Vec<HwConfig> = ConfigSpace::paper_campaign().iter().collect();
    let options: Vec<Vec<(f64, f64)>> = w
        .kernels()
        .iter()
        .map(|k| {
            configs
                .iter()
                .map(|&cfg| {
                    let out = sim.evaluate_exact(k, cfg);
                    (out.time_s, out.energy.total_j())
                })
                .collect()
        })
        .collect();
    let budget: f64 = w
        .kernels()
        .iter()
        .map(|k| sim.evaluate_exact(k, HwConfig::MAX_PERF).time_s)
        .sum();
    let mut group = c.benchmark_group("to");
    group.sample_size(10);
    group.bench_function("dp_solve_spmv", |b| {
        b.iter(|| black_box(ToSolver::default().solve(black_box(&options), budget)))
    });
    group.bench_function("lagrangian_solve_spmv", |b| {
        b.iter(|| black_box(ToSolver::solve_lagrangian(black_box(&options), budget)))
    });
    group.finish();
}

fn bench_pattern(c: &mut Criterion) {
    let sim = ApuSimulator::default();
    let k = KernelCharacteristics::compute_bound("bench", 10.0);
    let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
    c.bench_function("pattern/signature", |b| {
        b.iter(|| black_box(KernelSignature::from_counters(black_box(&out.counters))))
    });
    c.bench_function("pattern/observe", |b| {
        b.iter_batched(
            PatternExtractor::new,
            |mut px| {
                px.observe(black_box(&out), HwConfig::FAIL_SAFE, None);
                black_box(px)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_governor_steps(c: &mut Criterion) {
    use gpm_governors::{Equalizer, EqualizerMode, Governor, KernelContext, PerfTarget};
    let sim = ApuSimulator::default();
    let k = KernelCharacteristics::memory_bound("bench", 1.0);
    let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
    let ctx = KernelContext {
        position: 0,
        run_index: 0,
        elapsed_kernel_s: 0.0,
        elapsed_gi: 0.0,
        target: PerfTarget::new(1.0, 1.0),
        total_kernels: None,
    };
    c.bench_function("governor/equalizer_step", |b| {
        b.iter_batched(
            || Equalizer::new(EqualizerMode::Efficiency),
            |mut gov| {
                let d = gov.select(&ctx);
                gov.observe(&ctx, d.config, black_box(&out), None);
                black_box(gov)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_transition_cost(c: &mut Criterion) {
    let params = SimParams {
        dvfs_transition_scale: 1.0,
        ..SimParams::default()
    };
    c.bench_function("sim/transition_cost", |b| {
        b.iter(|| {
            black_box(gpm_sim::transition::transition_cost_s(
                &params,
                black_box(HwConfig::MAX_PERF),
                black_box(HwConfig::FAIL_SAFE),
            ))
        })
    });
}

fn bench_workload_generation(c: &mut Criterion) {
    let params = gpm_workloads::GeneratorParams::default();
    let mut seed = 0u64;
    c.bench_function("workloads/generate", |b| {
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(gpm_workloads::generate_workload(&params, seed))
        })
    });
}

criterion_group!(
    benches,
    bench_simulator,
    bench_rf_predict,
    bench_rf_train,
    bench_searches,
    bench_to_solver,
    bench_pattern,
    bench_governor_steps,
    bench_transition_cost,
    bench_workload_generation
);
criterion_main!(benches);
