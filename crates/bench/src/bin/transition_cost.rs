//! Extension: sensitivity to DVFS transition latency.
//!
//! The paper (like most DVFS work) charges nothing for changing power
//! states. Real parts pay µs-scale PLL/voltage-ramp costs and a large DRAM
//! retraining penalty when the memory clock moves. This experiment re-runs
//! PPK and MPC with the transition model at nominal (1×) and exaggerated
//! (10×) latencies and reports how much of their gains survive — a check
//! that kernel-granularity DVFS remains profitable under realistic
//! switching costs.

use gpm_harness::env::ExecEnv;
use gpm_harness::report::{fmt, Table};
use gpm_harness::{EvalContext, EvalOptions, Scheme};
use gpm_mpc::HorizonMode;
use gpm_sim::SimParams;
use gpm_workloads::suite;

fn context_with_scale(scale: f64) -> EvalContext {
    let opts = EvalOptions {
        sim_params: SimParams {
            dvfs_transition_scale: scale,
            ..SimParams::default()
        },
        ..EvalOptions::default()
    };
    EvalContext::build(opts)
}

fn main() {
    let scales = [0.0, 1.0, 10.0];
    let mut headers = vec!["benchmark".to_string()];
    for s in scales {
        headers.push(format!("MPC sav% @{s}x"));
        headers.push(format!("MPC spd @{s}x"));
    }
    headers.push("transitions (ms) @1x".into());
    let mut table = Table::new(headers);

    let mut per_scale: Vec<Vec<(String, f64, f64, f64)>> = Vec::new();
    for &scale in &scales {
        eprintln!("building context at transition scale {scale}x ...");
        let ctx = context_with_scale(scale);
        let env = ExecEnv::new();
        let rows: Vec<(String, f64, f64, f64)> = suite()
            .iter()
            .map(|w| {
                eprintln!("  {} @{}x ...", w.name(), scale);
                let out = env.evaluate(
                    &ctx,
                    w,
                    Scheme::MpcRf {
                        horizon: HorizonMode::default(),
                    },
                );
                let c = gpm_harness::metrics::Comparison::between(&out.baseline, &out.measured);
                (
                    w.name().to_string(),
                    c.energy_savings_pct,
                    c.speedup,
                    out.measured.transition_time_s * 1e3,
                )
            })
            .collect();
        per_scale.push(rows);
    }

    let n = per_scale[0].len();
    for i in 0..n {
        let mut row = vec![per_scale[0][i].0.clone()];
        for rows in &per_scale {
            row.push(fmt(rows[i].1, 1));
            row.push(fmt(rows[i].2, 3));
        }
        row.push(fmt(per_scale[1][i].3, 3));
        table.row(row);
    }
    println!("DVFS transition-cost sensitivity (MPC, adaptive horizon)");
    println!("{}", table.render());

    for (rows, s) in per_scale.iter().zip(scales) {
        let sav: f64 = rows.iter().map(|r| r.1).sum::<f64>() / n as f64;
        let spd: f64 = rows.iter().map(|r| r.2).sum::<f64>() / n as f64;
        println!("scale {s:>4}x: avg savings {sav:.1}%, avg speedup {spd:.3}");
    }
}
