//! Robustness of the headline result to measurement-noise realizations.
//!
//! Every number in this reproduction is deterministic given the noise
//! seed. This experiment re-runs the Figure 8 protocol under five
//! different noise seeds (fresh measurement campaign, fresh training,
//! fresh runtime noise) and reports mean ± spread of the headline
//! quantities — the error bars the paper's single-testbed numbers lack.

use gpm_bench::{evaluate_suite, suite_average};
use gpm_harness::report::{fmt, Table};
use gpm_harness::{EvalContext, EvalOptions, Scheme};
use gpm_mpc::HorizonMode;
use gpm_sim::SimParams;

fn main() {
    let seeds = [
        0x9e3779b97f4a7c15u64,
        0x1234_5678,
        0xDEAD_BEEF,
        0x0F0F_F0F0,
        0xABCD_EF01,
    ];
    let mut table = Table::new(vec![
        "noise seed",
        "RF time MAPE (%)",
        "MPC energy savings (%)",
        "MPC speedup",
        "PPK speedup",
    ]);
    let mut savings = Vec::new();
    let mut speedups = Vec::new();
    for &seed in &seeds {
        eprintln!("seed {seed:#x}: building context ...");
        let options = EvalOptions {
            sim_params: SimParams {
                noise_seed: seed,
                ..SimParams::default()
            },
            ..EvalOptions::default()
        };
        let ctx = EvalContext::build(options);
        let mpc = evaluate_suite(
            &ctx,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let ppk = evaluate_suite(&ctx, Scheme::PpkRf);
        let ma = suite_average(&mpc);
        let pa = suite_average(&ppk);
        savings.push(ma.energy_savings_pct);
        speedups.push(ma.speedup);
        table.row(vec![
            format!("{seed:#x}"),
            fmt(ctx.rf_report.time_mape * 100.0, 1),
            fmt(ma.energy_savings_pct, 1),
            fmt(ma.speedup, 3),
            fmt(pa.speedup, 3),
        ]);
    }

    println!("Headline stability across measurement-noise seeds");
    println!("{}", table.render());

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let spread = |v: &[f64]| {
        let m = mean(v);
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
    };
    println!(
        "MPC energy savings {:.1} ± {:.2} pts; speedup {:.3} ± {:.3}",
        mean(&savings),
        spread(&savings),
        mean(&speedups),
        spread(&speedups)
    );
}
