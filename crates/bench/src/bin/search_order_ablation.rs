//! Section IV-A1a ablation: does the profiling-derived *search order*
//! matter, or would walking the window in plain execution order do?
//!
//! Both variants run the identical greedy window optimizer (oracle
//! prediction, full horizon, no overheads); only the visiting order of
//! window kernels differs. The paper's heuristic prices hard-to-satisfy
//! kernels first, which should matter most on benchmarks with strong
//! throughput phases (Spmv, kmeans, lud).

use gpm_governors::OverheadModel;
use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::report::{fmt, Table};
use gpm_harness::turbo_core_baseline;
use gpm_mpc::{HorizonMode, MpcConfig, MpcGovernor};
use gpm_sim::{ApuSimulator, OraclePredictor};
use gpm_workloads::suite;

fn main() {
    let sim = ApuSimulator::default();
    let env = ExecEnv::new();
    let mut table = Table::new(vec![
        "benchmark",
        "ordered savings (%)",
        "exec-order savings (%)",
        "ordered speedup",
        "exec-order speedup",
    ]);

    let mut ordered_cs = Vec::new();
    let mut plain_cs = Vec::new();
    for w in suite() {
        eprintln!("  search-order ablation on {} ...", w.name());
        let (baseline, target) = turbo_core_baseline(&sim, &w);
        let mut row = vec![w.name().to_string()];
        let mut comparisons = Vec::new();
        for use_search_order in [true, false] {
            let cfg = MpcConfig {
                horizon_mode: HorizonMode::Full,
                overhead: OverheadModel::free(),
                store_truth: true,
                use_search_order,
                ..MpcConfig::default()
            };
            let mut gov = MpcGovernor::new(OraclePredictor::new(&sim), sim.params().clone(), cfg);
            env.run(&sim, &w, &mut gov, target, 0, true);
            let measured = env.run(&sim, &w, &mut gov, target, 1, true);
            comparisons.push(Comparison::between(&baseline, &measured));
        }
        row.push(fmt(comparisons[0].energy_savings_pct, 1));
        row.push(fmt(comparisons[1].energy_savings_pct, 1));
        row.push(fmt(comparisons[0].speedup, 3));
        row.push(fmt(comparisons[1].speedup, 3));
        table.row(row);
        ordered_cs.push(comparisons[0]);
        plain_cs.push(comparisons[1]);
    }
    let oa = summarize(&ordered_cs);
    let pa = summarize(&plain_cs);
    table.row(vec![
        "AVERAGE".into(),
        fmt(oa.energy_savings_pct, 1),
        fmt(pa.energy_savings_pct, 1),
        fmt(oa.speedup, 3),
        fmt(pa.speedup, 3),
    ]);

    println!("Search-order ablation: Section IV-A1a ordering vs plain execution order");
    println!("{}", table.render());
    println!(
        "search order buys {:+.1} pts of savings and {:+.1}% performance on average",
        oa.energy_savings_pct - pa.energy_savings_pct,
        (oa.speedup / pa.speedup - 1.0) * 100.0
    );
}
