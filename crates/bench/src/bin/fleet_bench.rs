//! Fleet scaling + determinism gate.
//!
//! Runs the canonical mixed fleet scenario through [`gpm_fleet`] at 1, 2,
//! and auto worker threads, measuring host wall-clock throughput at each
//! setting, and:
//!
//! * asserts the serialized fleet artifacts are **byte-identical** across
//!   all three worker counts (the gpm-fleet determinism contract);
//! * gates auto-worker speedup over 1 worker at
//!   `GPM_FLEET_MIN_SCALING` (default 1.05×), skipped on single-core
//!   hosts where no scaling is possible.
//!
//! `--soak <seconds>` instead replays seeded scenarios (rotating seeds)
//! for at least that long, diffing every artifact against the first for
//! its seed — the CI fleet-soak job runs 60 s of this. Every run (soak
//! and sweep) executes under a live fleet [`gpm_telemetry`] registry
//! plus per-shard registries, and soak mode prints a periodic one-line
//! status derived from the same values a Prometheus scrape would see:
//! jobs/s, p99 simulated decision latency, and the fail-safe rate.
//!
//! `--telemetry-out PATH` writes the final Prometheus text exposition
//! (fleet counters merged with the per-shard rollup);
//! `--telemetry-port PORT` additionally serves it live on
//! `127.0.0.1:PORT/metrics` for the duration of the run, so a soak can
//! be watched from a real Prometheus scraper.
//!
//! Emits `results/BENCH_fleet.json` either way. `GPM_BENCH_FAST=1`
//! selects the fast training context (CI default). Build with
//! `--release`; debug numbers are meaningless.

use gpm_bench::{bench_context, emit_artifact, fast_from_env};
use gpm_fleet::{FleetReport, FleetScenario, FleetService};
use gpm_telemetry::{Telemetry, TelemetrySnapshot};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpListener;
use std::time::Instant;

#[derive(Serialize)]
struct WorkerPoint {
    workers: usize,
    wall_s: f64,
    jobs_per_s: f64,
}

#[derive(Serialize)]
struct FleetBenchReport {
    scenario: String,
    seed: u64,
    shards: usize,
    jobs: usize,
    simulated_makespan_s: f64,
    simulated_throughput_gips: f64,
    fleet_energy_j: f64,
    fail_safe_entries: u64,
    fault_injections: u64,
    deterministic: bool,
    scaling: Vec<WorkerPoint>,
    auto_speedup_over_1: f64,
    min_scaling_gate: f64,
    soak_seconds: f64,
    soak_iterations: usize,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed scenario run; returns (report, artifact bytes, wall).
fn timed_run(svc: &FleetService, scenario: &FleetScenario) -> (FleetReport, String, f64) {
    let start = Instant::now();
    let report = svc.run(scenario);
    let wall = start.elapsed().as_secs_f64();
    let json = report.to_artifact_json();
    (report, json, wall)
}

/// One soak status line, derived from exactly the values a Prometheus
/// scrape of the fleet registry (and the per-shard rollup) would see.
fn status_line(
    elapsed_s: f64,
    fleet: &TelemetrySnapshot,
    rollup: Option<&TelemetrySnapshot>,
) -> String {
    let jobs = fleet.counter("gpm_fleet_jobs_total").unwrap_or(0);
    let fail_safe = fleet.counter("gpm_fleet_fail_safe_total").unwrap_or(0);
    let shards = fleet.counter("gpm_fleet_shards_total").unwrap_or(0);
    let p99 = rollup
        .and_then(|r| r.quantile("gpm_decision_seconds", 0.99))
        .map_or("n/a".to_string(), |s| format!("{:.1} us", s * 1e6));
    format!(
        "soak {elapsed_s:>5.1} s | {:.1} jobs/s | p99 decision {} | fail-safe {:.2}/job | {} shards",
        jobs as f64 / elapsed_s.max(1e-9),
        p99,
        fail_safe as f64 / (jobs.max(1)) as f64,
        shards
    )
}

/// Serves the registry's Prometheus text exposition on
/// `127.0.0.1:port` from a detached thread (dies with the process).
fn serve_prometheus(port: u16, telemetry: Telemetry) {
    let listener = TcpListener::bind(("127.0.0.1", port))
        .unwrap_or_else(|e| panic!("bind telemetry port {port}: {e}"));
    println!("serving Prometheus metrics on http://127.0.0.1:{port}/metrics");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Drain whatever request line arrives; every path gets the
            // same exposition.
            let mut buf = [0u8; 1024];
            let _ = stream.read(&mut buf);
            let body = telemetry.snapshot().to_prometheus();
            let _ = write!(
                stream,
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{}",
                body.len(),
                body
            );
        }
    });
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let soak_secs: Option<f64> = argv
        .iter()
        .position(|a| a == "--soak")
        .map(|i| argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(60.0));
    let telemetry_out: Option<String> = argv.iter().position(|a| a == "--telemetry-out").map(|i| {
        argv.get(i + 1)
            .expect("--telemetry-out needs a path")
            .clone()
    });
    let telemetry_port: Option<u16> = argv.iter().position(|a| a == "--telemetry-port").map(|i| {
        argv.get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--telemetry-port needs a port number")
    });

    let ctx = bench_context(fast_from_env());
    let seed = 0xF1EE7u64;
    let (shards, jobs_per_shard) = if fast_from_env() { (8, 2) } else { (12, 4) };
    let scenario = FleetScenario::mixed(seed, shards, jobs_per_shard);

    // One fleet-level registry spans the whole process (soak + sweep);
    // shard-level registries are created per shard by the service and
    // surface merged through each report's rollup.
    let telemetry = Telemetry::new();
    if let Some(port) = telemetry_port {
        serve_prometheus(port, telemetry.clone());
    }
    let mut last_rollup_snap: Option<TelemetrySnapshot> = None;

    let mut soak_elapsed = 0.0;
    let mut soak_iters = 0usize;
    if let Some(budget) = soak_secs {
        // Soak mode: rotate seeds, two replays per seed, diff against the
        // first artifact for that seed.
        let svc = FleetService::new(ctx.clone()).with_telemetry(telemetry.clone());
        let start = Instant::now();
        let mut last_status = Instant::now();
        let mut round = 0u64;
        while start.elapsed().as_secs_f64() < budget {
            let s = FleetScenario::mixed(seed ^ round.wrapping_mul(0x9e37_79b9), shards, 2);
            let (_, first, _) = timed_run(&svc, &s);
            let (report, again, _) = timed_run(&svc, &s);
            assert_eq!(first, again, "soak artifact drifted on round {round}");
            last_rollup_snap = report.rollup.telemetry.clone();
            round += 1;
            soak_iters += 2;
            if last_status.elapsed().as_secs_f64() >= 5.0 {
                println!(
                    "  {}",
                    status_line(
                        start.elapsed().as_secs_f64(),
                        &telemetry.snapshot(),
                        last_rollup_snap.as_ref(),
                    )
                );
                last_status = Instant::now();
            }
        }
        soak_elapsed = start.elapsed().as_secs_f64();
        println!(
            "  {}",
            status_line(
                soak_elapsed,
                &telemetry.snapshot(),
                last_rollup_snap.as_ref()
            )
        );
        println!("soak: {soak_iters} runs over {soak_elapsed:.1} s, no drift");
    }

    // Scaling sweep: 1, 2, auto workers over the same scenario.
    let auto_workers = FleetService::new(ctx.clone()).effective_workers(scenario.shards.len());
    let mut scaling = Vec::new();
    let mut artifacts: Vec<String> = Vec::new();
    let mut last_report_json = String::new();
    for &workers in &[1usize, 2, 0] {
        let svc = FleetService::new(ctx.clone())
            .with_workers(workers)
            .with_telemetry(telemetry.clone());
        let (full_report, json, wall) = timed_run(&svc, &scenario);
        last_rollup_snap = full_report.rollup.telemetry.clone();
        let effective = svc.effective_workers(scenario.shards.len());
        scaling.push(WorkerPoint {
            workers: effective,
            wall_s: wall,
            jobs_per_s: scenario.total_jobs() as f64 / wall,
        });
        println!(
            "  {effective:>2} workers: {wall:.3} s wall ({:.1} jobs/s)",
            scenario.total_jobs() as f64 / wall
        );
        artifacts.push(json.clone());
        last_report_json = json;
    }

    let deterministic = artifacts.iter().all(|a| *a == artifacts[0]);
    let auto_speedup = scaling[0].wall_s / scaling[2].wall_s;
    let gate = env_f64("GPM_FLEET_MIN_SCALING", 1.05);

    let report: gpm_fleet::FleetReport =
        serde_json::from_str(&last_report_json).expect("fleet artifact parses");
    let bench = FleetBenchReport {
        scenario: scenario.name.clone(),
        seed,
        shards: report.rollup.shards,
        jobs: report.rollup.jobs,
        simulated_makespan_s: report.rollup.makespan_s,
        simulated_throughput_gips: report.rollup.throughput_gips,
        fleet_energy_j: report.rollup.energy_j,
        fail_safe_entries: report.rollup.fail_safe_entries,
        fault_injections: report.rollup.fault_injections,
        deterministic,
        scaling,
        auto_speedup_over_1: auto_speedup,
        min_scaling_gate: gate,
        soak_seconds: soak_elapsed,
        soak_iterations: soak_iters,
    };
    emit_artifact("results/BENCH_fleet.json", &bench);

    if let Some(path) = &telemetry_out {
        // Fleet counters plus the per-shard rollup (dispatch counters,
        // decision-latency histogram, span profile), one exposition.
        let mut snap = telemetry.snapshot();
        if let Some(rollup) = &last_rollup_snap {
            snap.merge(rollup);
        }
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create telemetry output directory");
        }
        std::fs::write(path, snap.to_prometheus()).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    if !deterministic {
        eprintln!("FAIL: fleet artifacts differ across worker counts");
        std::process::exit(1);
    }
    if auto_workers >= 2 && auto_speedup < gate {
        eprintln!("FAIL: auto-worker speedup {auto_speedup:.2}x below the {gate:.2}x scaling gate");
        std::process::exit(1);
    }
    println!(
        "PASS: byte-identical at 1/2/auto workers; auto speedup {auto_speedup:.2}x \
         (gate {gate:.2}x, {auto_workers} workers)"
    );
}
