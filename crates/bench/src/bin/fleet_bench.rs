//! Fleet scaling + determinism gate.
//!
//! Runs the canonical mixed fleet scenario through [`gpm_fleet`] at 1, 2,
//! and auto worker threads, measuring host wall-clock throughput at each
//! setting, and:
//!
//! * asserts the serialized fleet artifacts are **byte-identical** across
//!   all three worker counts (the gpm-fleet determinism contract);
//! * gates auto-worker speedup over 1 worker at
//!   `GPM_FLEET_MIN_SCALING` (default 1.05×), skipped on single-core
//!   hosts where no scaling is possible.
//!
//! `--soak <seconds>` instead replays seeded scenarios (rotating seeds)
//! for at least that long, diffing every artifact against the first for
//! its seed — the CI fleet-soak job runs 60 s of this.
//!
//! Emits `results/BENCH_fleet.json` either way. `GPM_BENCH_FAST=1`
//! selects the fast training context (CI default). Build with
//! `--release`; debug numbers are meaningless.

use gpm_bench::{bench_context, emit_artifact, fast_from_env};
use gpm_fleet::{FleetScenario, FleetService};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct WorkerPoint {
    workers: usize,
    wall_s: f64,
    jobs_per_s: f64,
}

#[derive(Serialize)]
struct FleetBenchReport {
    scenario: String,
    seed: u64,
    shards: usize,
    jobs: usize,
    simulated_makespan_s: f64,
    simulated_throughput_gips: f64,
    fleet_energy_j: f64,
    fail_safe_entries: u64,
    fault_injections: u64,
    deterministic: bool,
    scaling: Vec<WorkerPoint>,
    auto_speedup_over_1: f64,
    min_scaling_gate: f64,
    soak_seconds: f64,
    soak_iterations: usize,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One timed scenario run; returns (artifact bytes, report stats, wall).
fn timed_run(svc: &FleetService, scenario: &FleetScenario) -> (String, f64) {
    let start = Instant::now();
    let report = svc.run(scenario);
    let wall = start.elapsed().as_secs_f64();
    (report.to_artifact_json(), wall)
}

fn main() {
    let soak_secs: Option<f64> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--soak")
            .map(|i| args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(60.0))
    };

    let ctx = bench_context(fast_from_env());
    let seed = 0xF1EE7u64;
    let (shards, jobs_per_shard) = if fast_from_env() { (8, 2) } else { (12, 4) };
    let scenario = FleetScenario::mixed(seed, shards, jobs_per_shard);

    let mut soak_elapsed = 0.0;
    let mut soak_iters = 0usize;
    if let Some(budget) = soak_secs {
        // Soak mode: rotate seeds, two replays per seed, diff against the
        // first artifact for that seed.
        let svc = FleetService::new(ctx.clone());
        let start = Instant::now();
        let mut round = 0u64;
        while start.elapsed().as_secs_f64() < budget {
            let s = FleetScenario::mixed(seed ^ round.wrapping_mul(0x9e37_79b9), shards, 2);
            let (first, _) = timed_run(&svc, &s);
            let (again, _) = timed_run(&svc, &s);
            assert_eq!(first, again, "soak artifact drifted on round {round}");
            round += 1;
            soak_iters += 2;
        }
        soak_elapsed = start.elapsed().as_secs_f64();
        println!("soak: {soak_iters} runs over {soak_elapsed:.1} s, no drift");
    }

    // Scaling sweep: 1, 2, auto workers over the same scenario.
    let auto_workers = FleetService::new(ctx.clone()).effective_workers(scenario.shards.len());
    let mut scaling = Vec::new();
    let mut artifacts: Vec<String> = Vec::new();
    let mut last_report_json = String::new();
    for &workers in &[1usize, 2, 0] {
        let svc = FleetService::new(ctx.clone()).with_workers(workers);
        let (json, wall) = timed_run(&svc, &scenario);
        let effective = svc.effective_workers(scenario.shards.len());
        scaling.push(WorkerPoint {
            workers: effective,
            wall_s: wall,
            jobs_per_s: scenario.total_jobs() as f64 / wall,
        });
        println!(
            "  {effective:>2} workers: {wall:.3} s wall ({:.1} jobs/s)",
            scenario.total_jobs() as f64 / wall
        );
        artifacts.push(json.clone());
        last_report_json = json;
    }

    let deterministic = artifacts.iter().all(|a| *a == artifacts[0]);
    let auto_speedup = scaling[0].wall_s / scaling[2].wall_s;
    let gate = env_f64("GPM_FLEET_MIN_SCALING", 1.05);

    let report: gpm_fleet::FleetReport =
        serde_json::from_str(&last_report_json).expect("fleet artifact parses");
    let bench = FleetBenchReport {
        scenario: scenario.name.clone(),
        seed,
        shards: report.rollup.shards,
        jobs: report.rollup.jobs,
        simulated_makespan_s: report.rollup.makespan_s,
        simulated_throughput_gips: report.rollup.throughput_gips,
        fleet_energy_j: report.rollup.energy_j,
        fail_safe_entries: report.rollup.fail_safe_entries,
        fault_injections: report.rollup.fault_injections,
        deterministic,
        scaling,
        auto_speedup_over_1: auto_speedup,
        min_scaling_gate: gate,
        soak_seconds: soak_elapsed,
        soak_iterations: soak_iters,
    };
    emit_artifact("results/BENCH_fleet.json", &bench);

    if !deterministic {
        eprintln!("FAIL: fleet artifacts differ across worker counts");
        std::process::exit(1);
    }
    if auto_workers >= 2 && auto_speedup < gate {
        eprintln!("FAIL: auto-worker speedup {auto_speedup:.2}x below the {gate:.2}x scaling gate");
        std::process::exit(1);
    }
    println!(
        "PASS: byte-identical at 1/2/auto workers; auto speedup {auto_speedup:.2}x \
         (gate {gate:.2}x, {auto_workers} workers)"
    );
}
