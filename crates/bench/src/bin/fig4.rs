//! Figure 4: the limit study — Predict Previous Kernel vs Theoretically
//! Optimal, both with perfect knowledge and zero overheads, relative to
//! AMD Turbo Core.
//!
//! Paper shape: PPK matches TO on the regular benchmarks (single iterating
//! kernel); on irregular benchmarks PPK consumes up to 48% more energy and
//! loses up to 46% performance relative to TO.

use gpm_bench::{evaluate_suite, figure_context, suite_average};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;

fn main() {
    let ctx = figure_context();
    let ppk = evaluate_suite(&ctx, Scheme::PpkOracle);
    let to = evaluate_suite(&ctx, Scheme::TheoreticallyOptimal);

    let mut table = Table::new(vec![
        "benchmark",
        "PPK energy savings (%)",
        "TO energy savings (%)",
        "PPK speedup",
        "TO speedup",
    ]);
    for (p, t) in ppk.iter().zip(to.iter()) {
        table.row(vec![
            p.workload.name().to_string(),
            fmt(p.vs_baseline.energy_savings_pct, 1),
            fmt(t.vs_baseline.energy_savings_pct, 1),
            fmt(p.vs_baseline.speedup, 3),
            fmt(t.vs_baseline.speedup, 3),
        ]);
    }
    let pa = suite_average(&ppk);
    let ta = suite_average(&to);
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(pa.energy_savings_pct, 1),
        fmt(ta.energy_savings_pct, 1),
        fmt(pa.speedup, 3),
        fmt(ta.speedup, 3),
    ]);

    println!("Figure 4: Predict Previous Kernel vs Theoretically Optimal (perfect knowledge)");
    println!("{}", table.render());
}
