//! Thin wrapper: runs the registered `fig4` experiment
//! (Figure 4) through the experiment registry.
//!
//! `GPM_BENCH_FAST=1` selects the reduced protocol; gates are checked
//! and the schema-versioned artifact is written either way. Run the
//! whole registry with the `reproduce` binary instead.

use std::process::ExitCode;

fn main() -> ExitCode {
    gpm_xp::cli::run_single("fig4")
}
