//! Section IV-A1a ablation: search cost of the greedy hill climb vs
//! exhaustive per-kernel search, and of heuristic MPC vs an exhaustive
//! backtracking MPC.
//!
//! Paper claims: hill climbing cuts per-kernel evaluations by ~19×
//! (336 → |cpu|+|nb|+|gpu|+|cu|), and the combination of greedy search
//! with the search-order heuristic cuts total search cost ~65× relative
//! to exhaustive backtracking MPC.

use gpm_bench::{bench_context, evaluate_suite, fast_from_env};
use gpm_governors::search::{exhaustive_best, hill_climb, EnergyEvaluator};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_mpc::HorizonMode;
use gpm_sim::predictor::KernelSnapshot;
use gpm_sim::{ApuSimulator, OraclePredictor, SimParams};
use gpm_workloads::suite;

fn main() {
    // Per-kernel: hill climb vs exhaustive evaluations.
    let sim = ApuSimulator::noiseless();
    let eval = EnergyEvaluator::new(OraclePredictor::new(&sim), SimParams::noiseless());
    let space = ConfigSpace::paper_campaign();

    let mut table = Table::new(vec![
        "kernel",
        "exhaustive evals",
        "hill-climb evals",
        "reduction",
        "energy gap (%)",
    ]);
    let mut kernels = Vec::new();
    for w in suite() {
        if let Some(k) = w.kernels().first() {
            kernels.push(k.clone());
        }
    }
    let (mut red_sum, mut n) = (0.0, 0);
    for k in &kernels {
        let out = sim.evaluate_exact(k, HwConfig::FAIL_SAFE);
        let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k.clone());
        let cap = out.time_s * 1.1;
        let (ex, ex_evals) = exhaustive_best(&eval, &snap, &space, cap);
        let (hc, hc_evals) = hill_climb(&eval, &snap, HwConfig::FAIL_SAFE, cap);
        let (Some(ex), Some(hc)) = (ex, hc) else {
            continue;
        };
        let reduction = ex_evals as f64 / hc_evals as f64;
        red_sum += reduction;
        n += 1;
        table.row(vec![
            k.name().to_string(),
            ex_evals.to_string(),
            hc_evals.to_string(),
            format!("{reduction:.1}x"),
            fmt((hc.energy_j / ex.energy_j - 1.0) * 100.0, 2),
        ]);
    }
    println!("Search-cost ablation (per-kernel): hill climb vs exhaustive");
    println!("{}", table.render());
    println!(
        "average reduction: {:.1}x (paper: ~19x)\n",
        red_sum / n as f64
    );

    // System level: measured MPC evaluations vs the backtracking bound.
    let ctx = bench_context(fast_from_env());
    let mpc = evaluate_suite(
        &ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let mut table2 = Table::new(vec![
        "benchmark",
        "MPC evals (measured)",
        "exhaustive-MPC evals (N*M*avgH)",
        "reduction",
    ]);
    let mut total_ratio = 0.0;
    for row in &mpc {
        let stats = row.outcome.mpc_stats.as_ref().unwrap();
        let measured = stats.total_evaluations().max(1);
        let n_k = row.workload.len() as f64;
        let avg_h = stats.average_horizon().max(1.0);
        // Exhaustive (non-backtracking) MPC would price every config for
        // every window kernel; backtracking is exponentially worse still.
        let exhaustive = n_k * 336.0 * avg_h;
        let ratio = exhaustive / measured as f64;
        total_ratio += ratio;
        table2.row(vec![
            row.workload.name().to_string(),
            measured.to_string(),
            fmt(exhaustive, 0),
            format!("{ratio:.0}x"),
        ]);
    }
    println!("Search-cost ablation (system): measured MPC vs exhaustive window search");
    println!("{}", table2.render());
    println!(
        "average reduction: {:.0}x (paper: ~65x vs backtracking MPC)",
        total_ratio / mpc.len() as f64
    );
}
