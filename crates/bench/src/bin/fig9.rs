//! Figure 9: MPC energy savings and speedup relative to PPK (both with
//! Random-Forest prediction and overheads charged).
//!
//! Paper headline: MPC outperforms PPK by 9.6% while reducing energy by
//! 6.6%.

use gpm_bench::{evaluate_suite, figure_context, relative_rows};
use gpm_harness::metrics::{geo_mean, summarize};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;

fn main() {
    let ctx = figure_context();
    let ppk = evaluate_suite(&ctx, Scheme::PpkRf);
    let mpc = evaluate_suite(
        &ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let rel = relative_rows(&mpc, &ppk);

    let mut table = Table::new(vec![
        "benchmark",
        "MPC energy savings over PPK (%)",
        "MPC speedup over PPK",
    ]);
    for (name, c) in &rel {
        table.row(vec![
            name.clone(),
            fmt(c.energy_savings_pct, 1),
            fmt(c.speedup, 3),
        ]);
    }
    let avg = summarize(&rel.iter().map(|(_, c)| *c).collect::<Vec<_>>());
    let speedups: Vec<f64> = rel.iter().map(|(_, c)| c.speedup).collect();
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(avg.energy_savings_pct, 1),
        fmt(geo_mean(&speedups), 3),
    ]);

    println!("Figure 9: MPC vs PPK (RF prediction, overheads included)");
    println!("{}", table.render());
    println!(
        "headline: {:.1}% energy savings, {:+.1}% performance (paper: 6.6% / +9.6%)",
        avg.energy_savings_pct,
        (geo_mean(&speedups) - 1.0) * 100.0
    );
}
