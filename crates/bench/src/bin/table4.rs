//! Table IV: the benchmark inventory — name, source suite, category, and
//! execution pattern.

use gpm_harness::report::Table;
use gpm_workloads::suite;

fn main() {
    let mut table = Table::new(vec![
        "Category",
        "Benchmark",
        "Benchmark Suite",
        "Pattern",
        "N",
        "Distinct",
    ]);
    for w in suite() {
        table.row(vec![
            w.category().to_string(),
            w.name().to_string(),
            w.source_suite().to_string(),
            w.pattern().to_string(),
            w.len().to_string(),
            w.distinct_kernels().to_string(),
        ]);
    }
    println!("Table IV: benchmarks with their execution pattern\n");
    println!("{}", table.render());
}
