//! Figure 11: amortization of the initial profiling run — MPC vs PPK when
//! benchmarks are re-executed 1, 10, and 100 times after the initial
//! execution, plus the steady-state limit.

use gpm_bench::figure_context;
use gpm_harness::amortize::amortization;
use gpm_harness::report::{fmt, Table};
use gpm_workloads::suite;

fn main() {
    let ctx = figure_context();
    let repeats = [1usize, 10, 100];

    let mut table = Table::new(vec![
        "benchmark",
        "savings @1 (%)",
        "savings @10 (%)",
        "savings @100 (%)",
        "savings steady (%)",
        "speedup @1",
        "speedup @10",
        "speedup @100",
        "speedup steady",
    ]);

    let mut sums = [0.0f64; 8];
    let workloads = suite();
    for w in &workloads {
        eprintln!("  amortization on {} ...", w.name());
        let pts = amortization(&ctx, w, &repeats);
        let vals = [
            pts[0].energy_savings_pct,
            pts[1].energy_savings_pct,
            pts[2].energy_savings_pct,
            pts[3].energy_savings_pct,
            pts[0].speedup,
            pts[1].speedup,
            pts[2].speedup,
            pts[3].speedup,
        ];
        for (s, v) in sums.iter_mut().zip(vals.iter()) {
            *s += v;
        }
        table.row(vec![
            w.name().to_string(),
            fmt(vals[0], 1),
            fmt(vals[1], 1),
            fmt(vals[2], 1),
            fmt(vals[3], 1),
            fmt(vals[4], 3),
            fmt(vals[5], 3),
            fmt(vals[6], 3),
            fmt(vals[7], 3),
        ]);
    }
    let n = workloads.len() as f64;
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(sums[0] / n, 1),
        fmt(sums[1] / n, 1),
        fmt(sums[2] / n, 1),
        fmt(sums[3] / n, 1),
        fmt(sums[4] / n, 3),
        fmt(sums[5] / n, 3),
        fmt(sums[6] / n, 3),
        fmt(sums[7] / n, 3),
    ]);

    println!("Figure 11: MPC vs PPK with re-execution (cumulative, incl. initial run)");
    println!("{}", table.render());
}
