//! Figure 12: comparison with the theoretical limit — MPC with perfect
//! prediction, full horizon, and no overhead vs the Theoretically Optimal
//! exhaustive solution, both relative to Turbo Core.
//!
//! Paper headline: MPC achieves 92% of the maximum theoretical energy
//! savings and 93% of the potential performance gain.

use gpm_bench::{evaluate_suite, figure_context, suite_average};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;

fn main() {
    let ctx = figure_context();
    let mpc = evaluate_suite(&ctx, Scheme::MpcOracle);
    let to = evaluate_suite(&ctx, Scheme::TheoreticallyOptimal);

    let mut table = Table::new(vec![
        "benchmark",
        "MPC energy savings (%)",
        "TO energy savings (%)",
        "MPC speedup",
        "TO speedup",
    ]);
    for (m, t) in mpc.iter().zip(to.iter()) {
        table.row(vec![
            m.workload.name().to_string(),
            fmt(m.vs_baseline.energy_savings_pct, 1),
            fmt(t.vs_baseline.energy_savings_pct, 1),
            fmt(m.vs_baseline.speedup, 3),
            fmt(t.vs_baseline.speedup, 3),
        ]);
    }
    let ma = suite_average(&mpc);
    let ta = suite_average(&to);
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(ma.energy_savings_pct, 1),
        fmt(ta.energy_savings_pct, 1),
        fmt(ma.speedup, 3),
        fmt(ta.speedup, 3),
    ]);

    println!("Figure 12: MPC (perfect prediction, full horizon, no overhead) vs TO");
    println!("{}", table.render());
    println!(
        "MPC captures {:.0}% of TO's energy savings (paper: 92%) and {:.0}% of its speedup-vs-baseline (paper: 93%)",
        ma.energy_savings_pct / ta.energy_savings_pct * 100.0,
        (ma.speedup - 0.0) / ta.speedup * 100.0
    );
}
