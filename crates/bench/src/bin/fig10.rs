//! Figure 10: GPU-domain energy savings over AMD Turbo Core (the GPU rail
//! including the NB, plus GPU static energy burned during optimization).
//!
//! Paper shape: lbm peaks at ~51% (its kernels exhibit peak behaviour);
//! the rest land in the 3–20% band; PPK can exceed its chip-wide savings
//! on benchmarks where it stretches execution time.

use gpm_bench::{evaluate_suite, figure_context};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;

fn main() {
    let ctx = figure_context();
    let ppk = evaluate_suite(&ctx, Scheme::PpkRf);
    let mpc = evaluate_suite(
        &ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );

    let mut table = Table::new(vec![
        "benchmark",
        "PPK GPU energy savings (%)",
        "MPC GPU energy savings (%)",
        "MPC chip-wide savings (%)",
    ]);
    let mut gpu_sum = 0.0;
    for (p, m) in ppk.iter().zip(mpc.iter()) {
        gpu_sum += m.vs_baseline.gpu_energy_savings_pct;
        table.row(vec![
            p.workload.name().to_string(),
            fmt(p.vs_baseline.gpu_energy_savings_pct, 1),
            fmt(m.vs_baseline.gpu_energy_savings_pct, 1),
            fmt(m.vs_baseline.energy_savings_pct, 1),
        ]);
    }
    println!("Figure 10: GPU energy savings over AMD Turbo Core");
    println!("{}", table.render());

    // Section VI-A's attribution: how much of MPC's chip-wide savings come
    // from the CPU vs the GPU (paper: 75% / 25%).
    let (mut cpu_saved, mut gpu_saved) = (0.0, 0.0);
    for m in &mpc {
        cpu_saved += m.outcome.baseline.cpu_energy_j() - m.outcome.measured.cpu_energy_j();
        gpu_saved += m.outcome.baseline.gpu_energy_j() - m.outcome.measured.gpu_energy_j();
    }
    let total = cpu_saved + gpu_saved;
    println!(
        "average MPC GPU savings: {:.1}% | savings attribution: CPU {:.0}%, GPU {:.0}% (paper: 75%/25%)",
        gpu_sum / mpc.len() as f64,
        cpu_saved / total * 100.0,
        gpu_saved / total * 100.0
    );
}
