//! Section IV-A1a ablation: the paper's greedy window heuristic vs the
//! *exact* Eq. 3 window optimization ("exhaustive MPC search"), both with
//! perfect prediction, full horizon, and no overhead charged.
//!
//! Two questions: how much solution quality does the heuristic give up,
//! and how much search cost does it save (the paper argues ~65× against
//! backtracking)?

use gpm_governors::OverheadModel;
use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::Comparison;
use gpm_harness::report::{fmt, Table};
use gpm_harness::turbo_core_baseline;
use gpm_mpc::{HorizonMode, MpcConfig, MpcGovernor, WindowSolver};
use gpm_sim::{ApuSimulator, OraclePredictor};
use gpm_workloads::suite;

fn main() {
    let sim = ApuSimulator::default();
    let env = ExecEnv::new();
    let mut table = Table::new(vec![
        "benchmark",
        "greedy savings (%)",
        "exact savings (%)",
        "greedy speedup",
        "exact speedup",
        "greedy evals",
        "exact evals",
        "cost ratio",
    ]);

    let mut ratios = Vec::new();
    for w in suite() {
        eprintln!("  window-solver ablation on {} ...", w.name());
        let (baseline, target) = turbo_core_baseline(&sim, &w);
        let mut row: Vec<String> = vec![w.name().to_string()];
        let mut evals = [0u64; 2];
        for (i, solver) in [WindowSolver::Greedy, WindowSolver::ExactDp]
            .iter()
            .enumerate()
        {
            let cfg = MpcConfig {
                horizon_mode: HorizonMode::Full,
                overhead: OverheadModel::free(),
                store_truth: true,
                solver: *solver,
                ..MpcConfig::default()
            };
            let mut gov = MpcGovernor::new(OraclePredictor::new(&sim), sim.params().clone(), cfg);
            env.run(&sim, &w, &mut gov, target, 0, true);
            let measured = env.run(&sim, &w, &mut gov, target, 1, true);
            let c = Comparison::between(&baseline, &measured);
            row.push(fmt(c.energy_savings_pct, 1));
            row.push(fmt(c.speedup, 3));
            evals[i] = gov.stats().total_evaluations();
        }
        // Reorder: savings pair, speedup pair, eval columns.
        let (g_sav, g_spd, e_sav, e_spd) = (
            row[1].clone(),
            row[2].clone(),
            row[3].clone(),
            row[4].clone(),
        );
        let ratio = evals[1] as f64 / evals[0].max(1) as f64;
        ratios.push(ratio);
        table.row(vec![
            row[0].clone(),
            g_sav,
            e_sav,
            g_spd,
            e_spd,
            evals[0].to_string(),
            evals[1].to_string(),
            format!("{ratio:.0}x"),
        ]);
    }

    println!("Window-solver ablation: greedy heuristic vs exact Eq. 3 DP (oracle, full horizon)");
    println!("{}", table.render());
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("average search-cost ratio: {avg:.0}x (paper: ~65x vs exhaustive backtracking MPC)");
}
