//! Section VI-E ablation: adaptive horizon vs full horizon.
//!
//! Paper: ignoring overheads, full-horizon MPC saves only 2.6% more energy
//! than the adaptive scheme; *with* overheads the full-horizon scheme
//! collapses to 15.4% savings with a 12.8% performance loss, against the
//! adaptive scheme's 24.8% / 1.8%.

use gpm_bench::{evaluate_suite, figure_context, suite_average};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;

fn main() {
    let ctx = figure_context();
    let adaptive = evaluate_suite(
        &ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let full = evaluate_suite(
        &ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::Full,
        },
    );
    let ideal = evaluate_suite(&ctx, Scheme::MpcRfIdealized); // full horizon, no overhead

    let mut table = Table::new(vec![
        "benchmark",
        "adaptive savings (%)",
        "full-horizon savings (%)",
        "no-overhead savings (%)",
        "adaptive speedup",
        "full-horizon speedup",
    ]);
    for ((a, f), i) in adaptive.iter().zip(full.iter()).zip(ideal.iter()) {
        table.row(vec![
            a.workload.name().to_string(),
            fmt(a.vs_baseline.energy_savings_pct, 1),
            fmt(f.vs_baseline.energy_savings_pct, 1),
            fmt(i.vs_baseline.energy_savings_pct, 1),
            fmt(a.vs_baseline.speedup, 3),
            fmt(f.vs_baseline.speedup, 3),
        ]);
    }
    let aa = suite_average(&adaptive);
    let fa = suite_average(&full);
    let ia = suite_average(&ideal);
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(aa.energy_savings_pct, 1),
        fmt(fa.energy_savings_pct, 1),
        fmt(ia.energy_savings_pct, 1),
        fmt(aa.speedup, 3),
        fmt(fa.speedup, 3),
    ]);

    println!("Section VI-E ablation: adaptive vs full horizon");
    println!("{}", table.render());
    println!(
        "adaptive: {:.1}% savings / {:.1}% perf loss; full horizon w/ overheads: {:.1}% / {:.1}% (paper: 24.8/1.8 vs 15.4/12.8)",
        aa.energy_savings_pct,
        (1.0 - aa.speedup) * 100.0,
        fa.energy_savings_pct,
        (1.0 - fa.speedup) * 100.0
    );
    println!(
        "no-overhead full horizon saves {:.1}% more energy than adaptive (paper: 2.6%)",
        ia.energy_savings_pct - aa.energy_savings_pct
    );

    // Short-kernel regime: the paper's benchmarks have millisecond-scale
    // kernels, so optimizer time is ~10× larger *relative to kernel time*
    // than in our simulator. Scale the overhead model up accordingly to
    // reproduce the full-horizon collapse of Section VI-E.
    let short = gpm_governors::OverheadModel {
        per_eval_s: 200e-6,
        base_s: 300e-6,
    };
    let adaptive_short = evaluate_suite(
        &ctx,
        Scheme::MpcRfOverhead {
            horizon: HorizonMode::default(),
            overhead: short,
        },
    );
    let full_short = evaluate_suite(
        &ctx,
        Scheme::MpcRfOverhead {
            horizon: HorizonMode::Full,
            overhead: short,
        },
    );
    let asr = suite_average(&adaptive_short);
    let fsr = suite_average(&full_short);
    println!("\nshort-kernel regime (optimizer cost x10 relative to kernels):");
    println!(
        "  adaptive: {:.1}% savings / {:.1}% perf loss; full horizon: {:.1}% / {:.1}%",
        asr.energy_savings_pct,
        (1.0 - asr.speedup) * 100.0,
        fsr.energy_savings_pct,
        (1.0 - fsr.speedup) * 100.0
    );
    println!("  (paper: adaptive 24.8%/1.8% vs full-horizon 15.4%/12.8%)");
}
