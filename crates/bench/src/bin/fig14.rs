//! Figure 14: MPC's own energy and performance overheads relative to
//! Turbo Core, with the adaptive horizon at α = 5% and the worst-case
//! back-to-back kernel assumption.
//!
//! Paper headline: average energy overhead 0.15% (max 0.53%, Spmv) and
//! performance overhead 0.3% (max 1.2%, Spmv).

use gpm_bench::{evaluate_suite, figure_context};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;

fn main() {
    let ctx = figure_context();
    let mpc = evaluate_suite(
        &ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );

    let mut table = Table::new(vec![
        "benchmark",
        "MPC energy overhead (%)",
        "MPC performance overhead (%)",
        "optimizer time (ms)",
        "evaluations",
    ]);
    let (mut e_sum, mut p_sum) = (0.0, 0.0);
    for row in &mpc {
        let m = &row.outcome.measured;
        let b = &row.outcome.baseline;
        let e_overhead = m.overhead_energy.total_j() / b.total_energy_j() * 100.0;
        let p_overhead = m.overhead_time_s / b.wall_time_s() * 100.0;
        e_sum += e_overhead;
        p_sum += p_overhead;
        let evals = row
            .outcome
            .mpc_stats
            .as_ref()
            .map(|s| s.total_evaluations())
            .unwrap_or(0);
        table.row(vec![
            row.workload.name().to_string(),
            fmt(e_overhead, 3),
            fmt(p_overhead, 3),
            fmt(m.overhead_time_s * 1e3, 3),
            evals.to_string(),
        ]);
    }
    println!("Figure 14: MPC energy and performance overheads vs Turbo Core (α = 5%)");
    println!("{}", table.render());
    println!(
        "averages: energy overhead {:.3}% (paper 0.15%), performance overhead {:.3}% (paper 0.3%)",
        e_sum / mpc.len() as f64,
        p_sum / mpc.len() as f64
    );
}
