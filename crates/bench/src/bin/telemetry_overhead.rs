//! Telemetry hot-path overhead gate.
//!
//! A/B-measures the wall-clock cost of running the full MPC evaluation
//! loop under a live [`gpm_telemetry::Telemetry`] registry (spans,
//! counters, latency histograms, event ring) against a clean
//! [`ExecEnv`], interleaved and min-of-rounds so scheduler noise and
//! thermal drift cancel. On top of the timing it verifies the
//! instrumented run is **decision-byte-identical** to the clean run and
//! that the registry renders format-valid Prometheus text.
//!
//! Usage:
//!
//! ```text
//! telemetry_overhead [--fast] [--telemetry-out PATH]
//!                    [--trace-out PATH] [--folded-out PATH]
//! ```
//!
//! Emits `results/BENCH_telemetry.json` (the CI artifact), a
//! chrome://tracing JSON (`results/telemetry_trace.json`, loadable in
//! Perfetto) and a folded-stack file (`results/telemetry_flame.folded`,
//! pipe through `flamegraph.pl`) from the instrumented side's event
//! ring; `--telemetry-out` additionally writes the Prometheus text
//! exposition. Exits non-zero when overhead exceeds
//! `GPM_TELEMETRY_MAX_OVERHEAD_PCT` (default 5% at full evaluation
//! depth, 12% under `--fast` where decisions shrink to microseconds and
//! the fixed ~100 ns/span cost is relatively inflated), when any
//! decision byte diverges, or when the Prometheus export fails
//! validation. Build with `--release`; debug numbers are meaningless.

use gpm_bench::{bench_context, emit_artifact, fast_from_env};
use gpm_harness::env::ExecEnv;
use gpm_harness::{EvalContext, Scheme};
use gpm_mpc::HorizonMode;
use gpm_telemetry::{validate_prometheus, Telemetry};
use gpm_workloads::{workload_by_name, Workload};
use gpm_xp::PhaseRow;
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

#[derive(Serialize)]
struct TelemetryBenchReport {
    fast: bool,
    workloads: Vec<String>,
    rounds: usize,
    best_clean_s: f64,
    best_instrumented_s: f64,
    overhead_pct: f64,
    max_overhead_pct: f64,
    overhead_ok: bool,
    byte_identical: bool,
    prometheus_valid: bool,
    prometheus_families: usize,
    prometheus_samples: usize,
    dispatches: u64,
    dispatch_spans: u64,
    spans_match_dispatches: bool,
    phases: Vec<PhaseRow>,
}

struct Args {
    fast: bool,
    telemetry_out: Option<String>,
    trace_out: String,
    folded_out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        fast: fast_from_env(),
        telemetry_out: None,
        trace_out: "results/telemetry_trace.json".to_string(),
        folded_out: "results/telemetry_flame.folded".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--fast" => args.fast = true,
            "--telemetry-out" => {
                args.telemetry_out = Some(it.next().expect("--telemetry-out needs a path"));
            }
            "--trace-out" => args.trace_out = it.next().expect("--trace-out needs a path"),
            "--folded-out" => args.folded_out = it.next().expect("--folded-out needs a path"),
            other => panic!("unknown flag {other}; see module docs for usage"),
        }
    }
    args
}

/// The overhead ceiling, percent. The production budget is 5%; fast
/// mode gets headroom because it shrinks each decision to microseconds
/// while the per-span cost stays fixed.
fn ceiling_pct(fast: bool) -> f64 {
    std::env::var("GPM_TELEMETRY_MAX_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if fast { 12.0 } else { 5.0 })
}

/// Evaluates one workload, returning the serialized decided trajectory
/// — the byte-identity fingerprint for that side of the A/B.
fn decisions(env: &ExecEnv, ctx: &EvalContext, w: &Workload, scheme: Scheme) -> String {
    let out = env.evaluate(ctx, w, scheme);
    serde_json::to_string(&out.measured.per_kernel).expect("trajectory serializes")
}

fn write_text(path: &str, contents: &str) {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent).expect("create artifact directory");
    }
    std::fs::write(path, contents).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

fn main() -> ExitCode {
    let args = parse_args();
    let ctx = bench_context(args.fast);
    let names: &[&str] = if args.fast {
        &["kmeans", "lud"]
    } else {
        &["kmeans", "lud", "Spmv", "hybridsort"]
    };
    let workloads: Vec<Workload> = names
        .iter()
        .map(|n| workload_by_name(n).unwrap_or_else(|| panic!("workload {n} not in suite")))
        .collect();
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    let rounds = if args.fast { 5 } else { 7 };

    // The event ring feeds the chrome-trace artifact; sized to hold the
    // full campaign's span stream comfortably.
    let telemetry = Telemetry::with_events(1 << 16);
    let clean_env = ExecEnv::new();
    let instrumented_env = ExecEnv::new().with_telemetry(telemetry.clone());

    // Interleaved A/B, min-of-rounds: each round times one full pass
    // over the workload list on each side; the minimum across rounds on
    // each side discards scheduler noise, and interleaving cancels
    // slow drift that would bias a block design.
    let mut clean_fp = Vec::new();
    let mut instrumented_fp = Vec::new();
    let mut best_clean_s = f64::INFINITY;
    let mut best_instr_s = f64::INFINITY;
    for round in 0..rounds {
        let t0 = Instant::now();
        let a: Vec<String> = workloads
            .iter()
            .map(|w| decisions(&clean_env, &ctx, w, scheme))
            .collect();
        best_clean_s = best_clean_s.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let b: Vec<String> = workloads
            .iter()
            .map(|w| decisions(&instrumented_env, &ctx, w, scheme))
            .collect();
        best_instr_s = best_instr_s.min(t1.elapsed().as_secs_f64());
        if round == 0 {
            clean_fp = a;
            instrumented_fp = b;
        }
    }

    let overhead_pct = ((best_instr_s - best_clean_s) / best_clean_s * 100.0).max(0.0);
    let ceiling = ceiling_pct(args.fast);
    let byte_identical = clean_fp == instrumented_fp;

    let snapshot = telemetry.snapshot();
    let prom = snapshot.to_prometheus();
    let prom_check = validate_prometheus(&prom);
    let dispatches = snapshot.counter("gpm_dispatches_total").unwrap_or(0);
    let dispatch_spans = snapshot.span("env.dispatch").map_or(0, |s| s.count);
    let spans_match = dispatches > 0 && dispatches == dispatch_spans;
    let phases = gpm_xp::phase_table(&snapshot);

    println!(
        "telemetry overhead ({} workloads x {rounds} rounds, {}):",
        workloads.len(),
        if args.fast { "fast" } else { "full" }
    );
    println!("  clean        : {best_clean_s:.4} s best pass");
    println!("  instrumented : {best_instr_s:.4} s best pass");
    println!("  overhead     : {overhead_pct:.2}% (ceiling {ceiling:.1}%)");
    println!("  phase profile:");
    for p in &phases {
        println!(
            "    {:<22} {:>8} spans  {:>10.2} ms total  {:>10.2} ms self",
            p.phase, p.count, p.total_ms, p.self_ms
        );
    }

    write_text(&args.trace_out, &telemetry.chrome_trace());
    write_text(&args.folded_out, &snapshot.to_folded());
    if let Some(path) = &args.telemetry_out {
        write_text(path, &prom);
    }

    let (families, samples) = match &prom_check {
        Ok(stats) => (stats.families, stats.samples),
        Err(e) => {
            eprintln!("FAIL: prometheus export invalid — {e}");
            (0, 0)
        }
    };
    let report = TelemetryBenchReport {
        fast: args.fast,
        workloads: names.iter().map(|s| s.to_string()).collect(),
        rounds,
        best_clean_s,
        best_instrumented_s: best_instr_s,
        overhead_pct,
        max_overhead_pct: ceiling,
        overhead_ok: overhead_pct <= ceiling,
        byte_identical,
        prometheus_valid: prom_check.is_ok(),
        prometheus_families: families,
        prometheus_samples: samples,
        dispatches,
        dispatch_spans,
        spans_match_dispatches: spans_match,
        phases,
    };
    emit_artifact("results/BENCH_telemetry.json", &report);

    let mut ok = true;
    if overhead_pct > ceiling {
        eprintln!("FAIL: telemetry overhead {overhead_pct:.2}% exceeds the {ceiling:.1}% ceiling");
        ok = false;
    }
    if !byte_identical {
        eprintln!("FAIL: instrumented decisions diverged from the clean run");
        ok = false;
    }
    if prom_check.is_err() {
        ok = false;
    }
    if !spans_match {
        eprintln!(
            "FAIL: env.dispatch span count {dispatch_spans} != gpm_dispatches_total {dispatches}"
        );
        ok = false;
    }
    if ok {
        println!(
            "PASS: telemetry overhead {overhead_pct:.2}% within {ceiling:.1}%, \
             decisions byte-identical, prometheus valid"
        );
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
