//! Table I: software-visible CPU, NB, and GPU DVFS states of the
//! AMD A10-7850K.

use gpm_harness::report::{fmt, Table};
use gpm_hw::{CpuPState, GpuDpm, NbState};

fn main() {
    let mut cpu = Table::new(vec!["CPU P-state", "Voltage (V)", "Freq (GHz)"]);
    for s in CpuPState::ALL {
        cpu.row(vec![
            s.to_string(),
            fmt(s.voltage(), 4),
            fmt(s.freq_ghz(), 1),
        ]);
    }

    let mut nb = Table::new(vec!["NB P-state", "Freq (GHz)", "Memory Freq (MHz)"]);
    for s in NbState::ALL {
        nb.row(vec![
            s.to_string(),
            fmt(s.freq_ghz(), 1),
            fmt(s.mem_freq_mhz(), 0),
        ]);
    }

    let mut gpu = Table::new(vec!["GPU P-state", "Voltage (V)", "Freq (MHz)"]);
    for s in GpuDpm::ALL {
        gpu.row(vec![
            s.to_string(),
            fmt(s.voltage(), 4),
            fmt(s.freq_mhz(), 0),
        ]);
    }

    println!("Table I: DVFS states on the AMD A10-7850K\n");
    println!("{}", cpu.render());
    println!("{}", nb.render());
    println!("{}", gpu.render());
}
