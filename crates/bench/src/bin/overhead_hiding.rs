//! Section VI-E extension: hiding MPC overheads inside host CPU phases.
//!
//! The paper's Figure 14 assumes the worst case — kernels launched
//! back-to-back with no CPU available between them. "In practice, GPGPU
//! application kernels may be separated by CPU phases with an available
//! CPU, which can hide the MPC overheads." This experiment re-runs the
//! adaptive-horizon MPC with modelled CPU phases equal to 10% of each
//! kernel's baseline time and reports how much of the overhead disappears.

use gpm_bench::bench_context;
use gpm_harness::env::ExecEnv;
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;
use gpm_workloads::suite;

fn main() {
    let ctx = bench_context(false);
    let env = ExecEnv::new();
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };

    let mut table = Table::new(vec![
        "benchmark",
        "worst-case overhead (ms)",
        "with CPU phases (ms)",
        "hidden (%)",
    ]);
    let (mut worst_sum, mut hidden_sum) = (0.0f64, 0.0f64);
    for w in suite() {
        eprintln!("  {} ...", w.name());
        // Worst case: back-to-back kernels.
        let worst = env.evaluate(&ctx, &w, scheme);

        // CPU phases of 10% of each kernel's baseline time.
        let phases: Vec<f64> = worst
            .baseline
            .per_kernel
            .iter()
            .map(|k| k.time_s * 0.10)
            .collect();
        let with_phases_workload = w.clone().with_cpu_phases(phases);
        let hidden = env.evaluate(&ctx, &with_phases_workload, scheme);

        let w_ms = worst.measured.overhead_time_s * 1e3;
        let h_ms = hidden.measured.overhead_time_s * 1e3;
        worst_sum += w_ms;
        hidden_sum += h_ms;
        let pct = if w_ms > 0.0 {
            (1.0 - h_ms / w_ms) * 100.0
        } else {
            0.0
        };
        table.row(vec![
            w.name().to_string(),
            fmt(w_ms, 3),
            fmt(h_ms, 3),
            fmt(pct, 1),
        ]);
    }
    println!("Overhead hiding in CPU phases (phases = 10% of baseline kernel time)");
    println!("{}", table.render());
    println!(
        "suite total: {:.2} ms worst-case -> {:.2} ms with phases ({:.0}% hidden)",
        worst_sum,
        hidden_sum,
        (1.0 - hidden_sum / worst_sum.max(1e-12)) * 100.0
    );
}
