//! Figure 3: per-invocation kernel throughput (normalized to the overall
//! application throughput) for Spmv, kmeans, and hybridsort.

use gpm_bench::emit_svg;
use gpm_harness::svg::{line_chart, BarSeries};
use gpm_harness::traces::fig3_trace;
use gpm_sim::ApuSimulator;
use gpm_workloads::workload_by_name;

fn main() {
    let sim = ApuSimulator::default();
    println!("Figure 3: normalized kernel throughput by execution order\n");
    let mut svg_series = Vec::new();
    for name in ["Spmv", "kmeans", "hybridsort"] {
        let w = workload_by_name(name).unwrap();
        let trace = fig3_trace(&sim, &w);
        println!("{name} ({} invocations):", trace.len());
        for (i, v) in trace.iter().enumerate() {
            let bar = "#".repeat((v * 12.0).round().clamp(0.0, 60.0) as usize);
            println!("  {:>3}  {:>6.2}  {}", i + 1, v, bar);
        }
        println!();
        svg_series.push(BarSeries {
            name: name.to_string(),
            values: trace,
        });
    }
    let svg = line_chart(
        "Figure 3: kernel throughput (normalized to overall)",
        &svg_series,
        "normalized throughput",
    );
    emit_svg("results/fig3.svg", &svg);
}
