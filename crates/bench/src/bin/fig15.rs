//! Figure 15: average MPC horizon length as a percentage of each
//! application's kernel count N, under the adaptive generator (α = 5%).
//!
//! Paper shape: benchmarks with long kernels (NBody, lbm, EigenValue,
//! XSBench) afford the full horizon; short-kernel benchmarks shrink it.

use gpm_bench::{evaluate_suite, figure_context};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;

fn main() {
    let ctx = figure_context();
    let mpc = evaluate_suite(
        &ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );

    let mut table = Table::new(vec![
        "benchmark",
        "N kernels",
        "avg horizon",
        "avg horizon (% of N)",
        "zero-horizon decisions",
        "pattern mispredict (%)",
    ]);
    for row in &mpc {
        let n = row.workload.len();
        let stats = row.outcome.mpc_stats.as_ref().expect("MPC stats");
        let zero = stats.horizons.iter().filter(|&&h| h == 0).count();
        table.row(vec![
            row.workload.name().to_string(),
            n.to_string(),
            fmt(stats.average_horizon(), 2),
            fmt(stats.average_horizon_fraction(n) * 100.0, 1),
            zero.to_string(),
            fmt(stats.misprediction_rate() * 100.0, 1),
        ]);
    }
    println!("Figure 15: average MPC horizon as a percentage of kernel count");
    println!("{}", table.render());
}
