//! Figure 8: PPK and MPC energy savings (a) and speedup (b) over AMD
//! Turbo Core, per benchmark, with Random-Forest prediction, adaptive
//! horizon (α = 5%), and all optimizer overheads charged.
//!
//! Paper headline: MPC saves 24.8% energy with a 1.8% performance loss.

use gpm_bench::{emit_svg, evaluate_suite, figure_context, suite_average};
use gpm_harness::report::{fmt, Table};
use gpm_harness::svg::{bar_chart, BarSeries};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;

fn main() {
    let ctx = figure_context();
    let ppk = evaluate_suite(&ctx, Scheme::PpkRf);
    let mpc = evaluate_suite(
        &ctx,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );

    let mut table = Table::new(vec![
        "benchmark",
        "PPK energy savings (%)",
        "MPC energy savings (%)",
        "PPK speedup",
        "MPC speedup",
    ]);
    for (p, m) in ppk.iter().zip(mpc.iter()) {
        table.row(vec![
            p.workload.name().to_string(),
            fmt(p.vs_baseline.energy_savings_pct, 1),
            fmt(m.vs_baseline.energy_savings_pct, 1),
            fmt(p.vs_baseline.speedup, 3),
            fmt(m.vs_baseline.speedup, 3),
        ]);
    }
    let pa = suite_average(&ppk);
    let ma = suite_average(&mpc);
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(pa.energy_savings_pct, 1),
        fmt(ma.energy_savings_pct, 1),
        fmt(pa.speedup, 3),
        fmt(ma.speedup, 3),
    ]);

    println!("Figure 8: PPK and MPC vs AMD Turbo Core (RF prediction, overheads included)");
    println!("{}", table.render());
    println!(
        "MPC headline: {:.1}% energy savings, {:.1}% performance loss (paper: 24.8% / 1.8%)",
        ma.energy_savings_pct,
        (1.0 - ma.speedup) * 100.0
    );

    // SVG renditions of both panels, written next to the text output.
    let cats: Vec<String> = ppk.iter().map(|r| r.workload.name().to_string()).collect();
    let savings = bar_chart(
        "Figure 8(a): energy savings over AMD Turbo Core",
        &cats,
        &[
            BarSeries {
                name: "PPK".into(),
                values: ppk
                    .iter()
                    .map(|r| r.vs_baseline.energy_savings_pct)
                    .collect(),
            },
            BarSeries {
                name: "MPC".into(),
                values: mpc
                    .iter()
                    .map(|r| r.vs_baseline.energy_savings_pct)
                    .collect(),
            },
        ],
        "energy savings (%)",
        Some(0.0),
    );
    let speedup = bar_chart(
        "Figure 8(b): speedup over AMD Turbo Core",
        &cats,
        &[
            BarSeries {
                name: "PPK".into(),
                values: ppk.iter().map(|r| r.vs_baseline.speedup).collect(),
            },
            BarSeries {
                name: "MPC".into(),
                values: mpc.iter().map(|r| r.vs_baseline.speedup).collect(),
            },
        ],
        "speedup",
        Some(1.0),
    );
    emit_svg("results/fig8a.svg", &savings);
    emit_svg("results/fig8b.svg", &speedup);
}
