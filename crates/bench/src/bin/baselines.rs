//! Extended baseline comparison: every implemented policy on the full
//! suite — Turbo Core, Equalizer (both modes), PPK, MPC, and the
//! Theoretically Optimal limit.
//!
//! This exhibit goes beyond the paper's figures: it places the paper's
//! schemes next to a reactive counter-driven tuner (Equalizer, which the
//! related-work section contrasts with) under identical conditions.

use gpm_bench::{evaluate_suite, figure_context, suite_average};
use gpm_governors::EqualizerMode;
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;

fn main() {
    let ctx = figure_context();
    let schemes: Vec<(&str, Scheme)> = vec![
        (
            "Equalizer(perf)",
            Scheme::Equalizer {
                mode: EqualizerMode::Performance,
            },
        ),
        (
            "Equalizer(eff)",
            Scheme::Equalizer {
                mode: EqualizerMode::Efficiency,
            },
        ),
        ("PPK(RF)", Scheme::PpkRf),
        (
            "MPC(RF)",
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        ),
        ("TO", Scheme::TheoreticallyOptimal),
    ];

    let mut headers = vec!["benchmark".to_string()];
    for (name, _) in &schemes {
        headers.push(format!("{name} sav%"));
        headers.push(format!("{name} spd"));
    }
    let mut table = Table::new(headers);

    let results: Vec<_> = schemes
        .iter()
        .map(|(n, s)| (*n, evaluate_suite(&ctx, *s)))
        .collect();
    let n = results[0].1.len();
    for i in 0..n {
        let mut row = vec![results[0].1[i].workload.name().to_string()];
        for (_, rows) in &results {
            row.push(fmt(rows[i].vs_baseline.energy_savings_pct, 1));
            row.push(fmt(rows[i].vs_baseline.speedup, 3));
        }
        table.row(row);
    }
    let mut avg = vec!["AVERAGE".to_string()];
    for (_, rows) in &results {
        let a = suite_average(rows);
        avg.push(fmt(a.energy_savings_pct, 1));
        avg.push(fmt(a.speedup, 3));
    }
    table.row(avg);

    println!("Extended baselines vs AMD Turbo Core (energy savings %, speedup)");
    println!("{}", table.render());
    println!("note: Equalizer reacts without a performance target, so it trades");
    println!("performance freely; PPK/MPC are constrained to Turbo Core throughput.");
}
