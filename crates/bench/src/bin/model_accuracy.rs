//! Section VI-D: Random-Forest prediction accuracy.
//!
//! Reports held-out MAPE/R² for the trained model (paper: 25% performance,
//! 12% power over the 15 benchmarks) plus a leave-one-kernel-out study,
//! the honest setting for kernels the model never saw.

use gpm_harness::report::{fmt, Table};
use gpm_harness::{context, EvalOptions};
use gpm_hw::HwConfig;
use gpm_model::{permutation_importance, Dataset, RandomForestPredictor, FEATURE_NAMES};

fn main() {
    let options = EvalOptions::default();
    let sim = gpm_sim::ApuSimulator::new(options.sim_params.clone());
    let kernels = context::training_kernels();
    let space = context::training_space(options.train_config_stride);
    eprintln!(
        "campaign: {} kernels x {} configurations = {} samples",
        kernels.len(),
        space.len(),
        kernels.len() * space.len()
    );
    let dataset = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);

    // Random-split evaluation (the in-distribution number).
    let (_, report) = RandomForestPredictor::train_and_evaluate(
        &dataset,
        &options.forest,
        options.test_fraction,
        options.seed,
    );
    println!(
        "Random split: time MAPE {:.1}%  power MAPE {:.1}%  time R2 {:.3}  power R2 {:.3}",
        report.time_mape * 100.0,
        report.power_mape * 100.0,
        report.time_r2,
        report.power_r2
    );
    println!("(paper reports 25% performance MAPE and 12% power MAPE)\n");

    // Leave-one-kernel-out over a representative subset.
    let mut table = Table::new(vec!["held-out kernel", "time MAPE (%)", "power MAPE (%)"]);
    let probes = [
        "mandelbulb",
        "lbm_collide_stream",
        "spmv_ellpackr",
        "kmeans_swap",
        "mergeSortPass_F5",
    ];
    let mut sums = (0.0, 0.0);
    for probe in probes {
        let (train, test) = dataset.split_leave_kernel_out(probe);
        let rf = RandomForestPredictor::train(&train, &options.forest, options.seed);
        let r = rf.evaluate(&test, train.len());
        sums.0 += r.time_mape;
        sums.1 += r.power_mape;
        table.row(vec![
            probe.to_string(),
            fmt(r.time_mape * 100.0, 1),
            fmt(r.power_mape * 100.0, 1),
        ]);
    }
    table.row(vec![
        "AVERAGE".to_string(),
        fmt(sums.0 / probes.len() as f64 * 100.0, 1),
        fmt(sums.1 / probes.len() as f64 * 100.0, 1),
    ]);
    println!("Leave-one-kernel-out accuracy:");
    println!("{}", table.render());

    // Permutation feature importance: does the forest lean on the
    // physically meaningful features?
    let (train, test) = dataset.split(0.2, options.seed);
    let rf = RandomForestPredictor::train(&train, &options.forest, options.seed);
    let time_imp = permutation_importance(rf.time_forest(), &test, |s| s.time_s.max(1e-12).ln(), 7);
    let power_imp = permutation_importance(rf.power_forest(), &test, |s| s.gpu_power_w, 7);
    let mut imp_table = Table::new(vec!["feature", "time importance", "power importance"]);
    for (i, name) in FEATURE_NAMES.iter().enumerate() {
        imp_table.row(vec![
            name.to_string(),
            fmt(time_imp[i].score(), 3),
            fmt(power_imp[i].score(), 3),
        ]);
    }
    println!("Permutation feature importance (relative RMSE increase):");
    println!("{}", imp_table.render());
}
