//! Robustness sweep CLI: degrades the full MPC scheme under increasing
//! deterministic fault intensity and records the degradation curve.
//! The sweep itself is shared with the registry's `robustness`
//! experiment ([`gpm_xp::experiments::robustness`]); this binary adds
//! the CI-facing knobs.
//!
//! Usage:
//!
//! ```text
//! robustness [--workload NAME] [--rates CSV] [--seed N]
//!            [--max-slowdown X] [--json PATH] [--fast]
//! ```
//!
//! `--rates` is a comma-separated list of per-channel fault rates (all
//! five channels fire at the same rate, nominal intensity). `--fast`
//! (or env `GPM_BENCH_FAST=1`) uses the reduced measurement campaign.
//!
//! Graceful-degradation gate (exit status): every swept point must
//! complete without panics and with finite accounting, and every point
//! with rate ≤ 0.10 must keep its wall-time slowdown under
//! `--max-slowdown` (default 1.5×). The whole sweep shares one
//! evaluation context, so the Turbo Core baseline must be simulated
//! exactly once — every later rate resolves it from the baseline cache
//! (also gated). The degradation curve is written to `--json` for CI
//! artifact upload.

use gpm_bench::{bench_context, emit_artifact, fast_from_env};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;
use gpm_workloads::workload_by_name;
use gpm_xp::experiments::robustness::{
    degradation_curve, degradation_gate_failures, render_curve, RobustnessReport,
};
use std::process::ExitCode;

struct Args {
    workload: String,
    rates: Vec<f64>,
    seed: u64,
    max_slowdown: f64,
    json: Option<String>,
    fast: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "kmeans".to_string(),
        rates: vec![0.0, 0.02, 0.05, 0.10, 0.20],
        seed: 0xFA_15AFE,
        max_slowdown: 1.5,
        json: None,
        fast: fast_from_env(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" => args.workload = it.next().expect("--workload needs a name"),
            "--rates" => {
                let csv = it.next().expect("--rates needs a CSV list");
                args.rates = csv
                    .split(',')
                    .map(|r| r.trim().parse().expect("--rates entries must be numbers"))
                    .collect();
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--max-slowdown" => {
                args.max_slowdown = it
                    .next()
                    .expect("--max-slowdown needs a value")
                    .parse()
                    .expect("--max-slowdown must be a number");
            }
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--fast" => args.fast = true,
            other => panic!("unknown flag {other}; see module docs for usage"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let workload = workload_by_name(&args.workload)
        .unwrap_or_else(|| panic!("unknown workload {:?}", args.workload));

    let ctx = bench_context(args.fast);
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };

    let curve = degradation_curve(&ctx, &workload, scheme, args.seed, &args.rates);
    print!("{}", render_curve(workload.name(), &curve));
    let mut failures = degradation_gate_failures(&curve, args.max_slowdown);

    // The whole sweep shares one context, so the baseline must have been
    // simulated exactly once, with every later rate a cache hit.
    let cache = ctx.baseline_stats();
    println!(
        "baseline cache: {} simulated, {} served from cache",
        cache.computed, cache.hits
    );
    if cache.computed != 1 || cache.hits != args.rates.len() as u64 - 1 {
        failures.push(format!(
            "baseline cache expected 1 compute / {} hits, got {} / {}",
            args.rates.len() - 1,
            cache.computed,
            cache.hits
        ));
    }

    if let Some(path) = &args.json {
        let report = RobustnessReport {
            workload: workload.name().to_string(),
            scheme: scheme.label().to_string(),
            seed: args.seed,
            max_slowdown: args.max_slowdown,
            baseline_simulations: cache.computed,
            baseline_cache_hits: cache.hits,
            curve,
        };
        emit_artifact(path, &report);
    }

    if failures.is_empty() {
        eprintln!("robustness gate passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("GATE: {f}");
        }
        ExitCode::FAILURE
    }
}
