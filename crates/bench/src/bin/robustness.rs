//! Robustness sweep: degrades the full MPC scheme under increasing
//! deterministic fault intensity and records the degradation curve
//! (energy savings, speedup, throughput violation, fault/recovery
//! counts per fault rate).
//!
//! Usage:
//!
//! ```text
//! robustness [--workload NAME] [--rates CSV] [--seed N]
//!            [--max-slowdown X] [--json PATH] [--fast]
//! ```
//!
//! `--rates` is a comma-separated list of per-channel fault rates (all
//! five channels fire at the same rate, nominal intensity). `--fast`
//! (or env `GPM_BENCH_FAST=1`) uses the reduced measurement campaign.
//!
//! Graceful-degradation gate (exit status): every swept point must
//! complete without panics and with finite accounting, and every point
//! with rate ≤ 0.10 must keep its wall-time slowdown under
//! `--max-slowdown` (default 1.5×). The whole sweep shares one
//! evaluation context, so the Turbo Core baseline must be simulated
//! exactly once — every later rate resolves it from the baseline cache
//! (also gated). The degradation curve is written to `--json` for CI
//! artifact upload.

use gpm_bench::{bench_context, emit_artifact, fast_from_env};
use gpm_faults::FaultPlan;
use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::Comparison;
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;
use gpm_trace::{AggregateSink, TraceSink};
use gpm_workloads::workload_by_name;
use serde::Serialize;
use std::process::ExitCode;
use std::sync::Arc;

/// One point of the degradation curve.
#[derive(Debug, Serialize)]
struct DegradationPoint {
    /// Per-channel fault rate swept at this point.
    rate: f64,
    /// Energy savings vs the clean Turbo Core baseline, percent.
    energy_savings_pct: f64,
    /// Baseline wall time over degraded wall time (< 1 = slowdown).
    speedup: f64,
    /// Throughput-constraint violation, percent of baseline wall time
    /// (0 when the degraded run is at least as fast as the baseline).
    violation_pct: f64,
    /// Faults that fired across both scheme invocations.
    fault_injections: u64,
    /// Detected-and-recovered events (sanitization, retries, discards).
    recoveries: u64,
    /// Fail-safe decisions taken by the governor.
    fail_safe_events: u64,
    /// Turbo Core baselines simulated while sweeping this point.
    baseline_simulations: u64,
    /// Baseline resolutions served from the shared cache at this point.
    baseline_cache_hits: u64,
}

#[derive(Debug, Serialize)]
struct RobustnessReport {
    workload: String,
    scheme: String,
    seed: u64,
    max_slowdown: f64,
    baseline_simulations: u64,
    baseline_cache_hits: u64,
    curve: Vec<DegradationPoint>,
}

struct Args {
    workload: String,
    rates: Vec<f64>,
    seed: u64,
    max_slowdown: f64,
    json: Option<String>,
    fast: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "kmeans".to_string(),
        rates: vec![0.0, 0.02, 0.05, 0.10, 0.20],
        seed: 0xFA_15AFE,
        max_slowdown: 1.5,
        json: None,
        fast: fast_from_env(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" => args.workload = it.next().expect("--workload needs a name"),
            "--rates" => {
                let csv = it.next().expect("--rates needs a CSV list");
                args.rates = csv
                    .split(',')
                    .map(|r| r.trim().parse().expect("--rates entries must be numbers"))
                    .collect();
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--max-slowdown" => {
                args.max_slowdown = it
                    .next()
                    .expect("--max-slowdown needs a value")
                    .parse()
                    .expect("--max-slowdown must be a number");
            }
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--fast" => args.fast = true,
            other => panic!("unknown flag {other}; see module docs for usage"),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let workload = workload_by_name(&args.workload)
        .unwrap_or_else(|| panic!("unknown workload {:?}", args.workload));

    let ctx = bench_context(args.fast);
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };

    let mut curve = Vec::with_capacity(args.rates.len());
    let mut ok = true;
    println!("Robustness sweep: MPC(RF) on {}", workload.name());
    println!(
        "{:>6}  {:>9}  {:>7}  {:>9}  {:>7}  {:>9}",
        "rate", "savings%", "speedup", "violat.%", "faults", "recovered"
    );
    for &rate in &args.rates {
        let plan = FaultPlan::uniform(args.seed, rate);
        let agg = Arc::new(AggregateSink::new());
        let sink: Arc<dyn TraceSink> = agg.clone();
        let env = ExecEnv::new().with_trace(sink).with_fault_plan(plan);
        let out = env.evaluate(&ctx, &workload, scheme);
        let summary = agg.summary();
        let c = Comparison::between(&out.baseline, &out.measured);
        let violation_pct = (1.0 / c.speedup - 1.0).max(0.0) * 100.0;
        println!(
            "{rate:>6.3}  {:>9.2}  {:>7.3}  {violation_pct:>9.2}  {:>7}  {:>9}",
            c.energy_savings_pct, c.speedup, summary.fault_injections, summary.recoveries
        );

        // The graceful-degradation gate.
        if !c.speedup.is_finite() || !c.energy_savings_pct.is_finite() || c.speedup <= 0.0 {
            eprintln!("GATE: non-finite accounting at rate {rate}");
            ok = false;
        }
        if rate <= 0.10 && 1.0 / c.speedup > args.max_slowdown {
            eprintln!(
                "GATE: slowdown {:.3} exceeds {} at rate {rate}",
                1.0 / c.speedup,
                args.max_slowdown
            );
            ok = false;
        }
        if rate > 0.0 && summary.fault_injections == 0 {
            eprintln!("GATE: no faults fired at rate {rate}");
            ok = false;
        }
        curve.push(DegradationPoint {
            rate,
            energy_savings_pct: c.energy_savings_pct,
            speedup: c.speedup,
            violation_pct,
            fault_injections: summary.fault_injections,
            recoveries: summary.recoveries,
            fail_safe_events: summary.fail_safe_events,
            baseline_simulations: summary.baseline_simulations,
            baseline_cache_hits: summary.baseline_cache_hits,
        });
    }

    // The whole sweep shares one context, so the baseline must have been
    // simulated exactly once, with every later rate a cache hit.
    let cache = ctx.baseline_stats();
    println!(
        "baseline cache: {} simulated, {} served from cache",
        cache.computed, cache.hits
    );
    if cache.computed != 1 || cache.hits != args.rates.len() as u64 - 1 {
        eprintln!(
            "GATE: baseline cache expected 1 compute / {} hits, got {} / {}",
            args.rates.len() - 1,
            cache.computed,
            cache.hits
        );
        ok = false;
    }

    if let Some(path) = &args.json {
        let report = RobustnessReport {
            workload: workload.name().to_string(),
            scheme: scheme.label().to_string(),
            seed: args.seed,
            max_slowdown: args.max_slowdown,
            baseline_simulations: cache.computed,
            baseline_cache_hits: cache.hits,
            curve,
        };
        emit_artifact(path, &report);
    }

    if ok {
        eprintln!("robustness gate passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
