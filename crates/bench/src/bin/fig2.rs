//! Figure 2: performance trends and energy-optimal points of the four
//! kernel classes across NB states × CU counts.
//!
//! Each panel prints speedup (relative to the NB3 / 2-CU corner) for every
//! NB state and CU count, marking the energy-optimal point with `*`.

use gpm_harness::traces::fig2_sweep;
use gpm_hw::NbState;
use gpm_sim::{ApuSimulator, KernelCharacteristics};
use gpm_workloads::{astar, max_flops, read_global_memory_coalesced, write_candidates};

fn panel(sim: &ApuSimulator, title: &str, kernel: &KernelCharacteristics) {
    let points = fig2_sweep(sim, kernel);
    println!("({title}) — speedup vs [NB3, 2 CUs]; '*' marks the energy-optimal point");
    print!("{:>6}", "CUs");
    for cu in [2u32, 4, 6, 8] {
        print!("{cu:>10}");
    }
    println!();
    for nb in NbState::ALL {
        print!("{:>6}", nb.to_string());
        for cu in [2u32, 4, 6, 8] {
            let p = points.iter().find(|p| p.nb == nb && p.cu == cu).unwrap();
            let mark = if p.energy_optimal { "*" } else { " " };
            print!("{:>9.2}{mark}", p.speedup);
        }
        println!();
    }
    println!();
}

fn main() {
    let sim = ApuSimulator::default();
    println!("Figure 2: GPGPU kernel scaling classes\n");
    panel(&sim, "a: compute-bound — MaxFlops", &max_flops());
    panel(
        &sim,
        "b: memory-bound — readGlobalMemoryCoalesced",
        &read_global_memory_coalesced(),
    );
    panel(&sim, "c: peak — writeCandidates", &write_candidates());
    panel(&sim, "d: unscalable — astar", &astar());
}
