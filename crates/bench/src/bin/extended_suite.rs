//! The extended tier: the paper's schemes evaluated on ten additional
//! modelled benchmarks from the studied suites (the paper examined 73 and
//! sampled 15 for its figures). The Random Forest still trains only on
//! the figure suite, so these applications mix seen kernel *classes* with
//! unseen kernel *instances*.

use gpm_bench::figure_context;
use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;
use gpm_workloads::extended_suite;

fn main() {
    let ctx = figure_context();
    let env = ExecEnv::new();
    let mut table = Table::new(vec![
        "benchmark",
        "category",
        "PPK savings (%)",
        "MPC savings (%)",
        "PPK speedup",
        "MPC speedup",
    ]);
    let mut ppk_cs = Vec::new();
    let mut mpc_cs = Vec::new();
    for w in extended_suite() {
        eprintln!("  extended suite: {} ...", w.name());
        let ppk = env.evaluate(&ctx, &w, Scheme::PpkRf);
        let mpc = env.evaluate(
            &ctx,
            &w,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let pc = Comparison::between(&ppk.baseline, &ppk.measured);
        let mc = Comparison::between(&mpc.baseline, &mpc.measured);
        table.row(vec![
            w.name().to_string(),
            w.category().to_string(),
            fmt(pc.energy_savings_pct, 1),
            fmt(mc.energy_savings_pct, 1),
            fmt(pc.speedup, 3),
            fmt(mc.speedup, 3),
        ]);
        ppk_cs.push(pc);
        mpc_cs.push(mc);
    }
    let pa = summarize(&ppk_cs);
    let ma = summarize(&mpc_cs);
    table.row(vec![
        "AVERAGE".into(),
        String::new(),
        fmt(pa.energy_savings_pct, 1),
        fmt(ma.energy_savings_pct, 1),
        fmt(pa.speedup, 3),
        fmt(ma.speedup, 3),
    ]);
    println!("Extended tier: 10 additional benchmarks (model trained on the figure suite only)");
    println!("{}", table.render());
}
