//! Extension: sweeping the adaptive horizon's overhead budget α.
//!
//! The paper fixes α = 0.05 ("the horizon length generator attempts to
//! limit the maximum performance loss to an α of 0.05") without a
//! sensitivity study. This sweep characterizes the trade-off: small α
//! strangles the horizon (MPC degenerates toward PPK/fail-safe), large α
//! admits more optimizer time than it can repay on short-kernel apps.

use gpm_bench::figure_context;
use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;
use gpm_workloads::suite;

fn main() {
    let ctx = figure_context();
    let env = ExecEnv::new();
    let alphas = [0.01, 0.02, 0.05, 0.10, 0.25];

    let mut table = Table::new(vec![
        "alpha",
        "avg energy savings (%)",
        "avg speedup",
        "avg horizon (% of N)",
        "avg perf overhead (%)",
    ]);
    for &alpha in &alphas {
        eprintln!("  alpha = {alpha} ...");
        let mut cs = Vec::new();
        let mut horizon_frac_sum = 0.0;
        let mut overhead_sum = 0.0;
        let workloads = suite();
        for w in &workloads {
            let out = env.evaluate(
                &ctx,
                w,
                Scheme::MpcRf {
                    horizon: HorizonMode::Adaptive { alpha },
                },
            );
            cs.push(Comparison::between(&out.baseline, &out.measured));
            let stats = out.mpc_stats.expect("MPC stats");
            horizon_frac_sum += stats.average_horizon_fraction(w.len());
            overhead_sum += out.measured.overhead_time_s / out.baseline.wall_time_s();
        }
        let a = summarize(&cs);
        let n = workloads.len() as f64;
        table.row(vec![
            fmt(alpha, 2),
            fmt(a.energy_savings_pct, 1),
            fmt(a.speedup, 3),
            fmt(horizon_frac_sum / n * 100.0, 1),
            fmt(overhead_sum / n * 100.0, 3),
        ]);
    }
    println!("Adaptive-horizon budget sweep (the paper fixes alpha = 0.05)");
    println!("{}", table.render());
}
