//! Performance smoke gate for the batched flat-forest inference engine.
//!
//! Measures, at equal `ForestParams`:
//!
//! * the seed's scalar path (per-call feature allocation + nested tree
//!   traversal) vs the batched flat path, in candidates priced per
//!   second — once in the governor's steady state (repeated sweeps over
//!   one snapshot, where the specialization and value memos carry the
//!   load) and once with a fresh snapshot per sweep (re-specialize and
//!   walk everything, the raw engine number);
//! * the RF-backed hill climb, in ns per evaluated candidate;
//! * `RandomForest` fit wall-time, single-threaded vs auto-parallel.
//!
//! The forest fits run under a live [`gpm_telemetry`] registry, and the
//! `rf.fit` span totals are cross-checked against the bench's own
//! wall-clock timers — the profiler must count every fit and attribute
//! (nearly) all of its wall time, or the phase tables the `reproduce`
//! pipeline emits are lying.
//!
//! Emits `results/BENCH_perf.json` and exits non-zero when the
//! steady-state batched path fails to clear `GPM_PERF_MIN_SPEEDUP`
//! (default 5×) over the scalar path, the fresh-snapshot path falls
//! under `GPM_PERF_MIN_FRESH_SPEEDUP` (default 1.5×), or the span
//! profile disagrees with the wall clock, so CI catches throughput
//! regressions on the MPC hot path. Build with `--release`; debug
//! numbers are meaningless.

use gpm_bench::emit_artifact;
use gpm_governors::search::{hill_climb, EnergyEvaluator};
use gpm_harness::context;
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_model::{encode_features, Dataset, RandomForest, RandomForestPredictor};
use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
use gpm_sim::{ApuSimulator, PowerPerfEstimate, SimParams};
use serde::Serialize;
use std::hint::black_box;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct PerfReport {
    forest_num_trees: usize,
    candidates: usize,
    scalar_candidates_per_s: f64,
    batched_candidates_per_s: f64,
    batched_speedup: f64,
    fresh_snapshot_candidates_per_s: f64,
    fresh_snapshot_speedup: f64,
    min_speedup_gate: f64,
    min_fresh_speedup_gate: f64,
    hill_climb_ns_per_candidate: f64,
    hill_climb_evals_per_search: f64,
    fit_wall_ms_single_thread: f64,
    fit_wall_ms_auto: f64,
    fit_threads_auto: usize,
    fit_span_count: u64,
    fit_span_total_ms: f64,
    fit_span_coverage: f64,
}

/// Runs `f` until `min_elapsed` has passed (at least once), returning
/// (iterations, elapsed).
fn measure(min_elapsed: Duration, mut f: impl FnMut()) -> (u64, Duration) {
    // Warm-up: populate thread-local scratch and caches.
    f();
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed();
        if elapsed >= min_elapsed {
            return (iters, elapsed);
        }
    }
}

fn main() {
    let budget = Duration::from_millis(400);
    // Train exactly like the deployed evaluation context: the suite-wide
    // kernel corpus over the strided campaign space, with the default
    // forest hyper-parameters — both inference paths then price the same
    // forests the governors actually run.
    let sim = ApuSimulator::default();
    let kernels = context::training_kernels();
    let campaign = context::training_space(2);
    let ds = Dataset::from_campaign(&sim, &kernels, &campaign, HwConfig::FAIL_SAFE);
    let params = gpm_harness::EvalOptions::default().forest;
    let rf = RandomForestPredictor::train(&ds, &params, 7);

    let out = sim.evaluate(&kernels[0], HwConfig::FAIL_SAFE);
    let snap = KernelSnapshot::counters_only(out.counters, HwConfig::FAIL_SAFE, 1.0);
    let cfgs: Vec<HwConfig> = ConfigSpace::paper_campaign().iter().collect();

    // Seed scalar path: fresh feature vector + nested traversal per call.
    let (time_forest, power_forest) = (rf.time_forest(), rf.power_forest());
    let (scalar_iters, scalar_elapsed) = measure(budget, || {
        for &cfg in &cfgs {
            let features = encode_features(&snap.counters, cfg);
            black_box(PowerPerfEstimate {
                time_s: time_forest.predict(&features).exp().max(1e-9),
                gpu_power_w: power_forest.predict(&features).max(0.1),
            });
        }
    });

    // Batched flat path, governor steady state: repeated sweeps over one
    // snapshot, served by the specialization and per-snapshot value
    // memos after the first call.
    let mut batch_out = Vec::new();
    let (batched_iters, batched_elapsed) = measure(budget, || {
        rf.predict_batch(&snap, &cfgs, &mut batch_out);
        black_box(&batch_out);
    });

    // Batched flat path, fresh snapshot per sweep: rotating distinct
    // counter prefixes defeats both memos, so every call pays
    // specialization plus the full interleaved walks — the raw engine
    // throughput. The scalar path has no snapshot caching, so the one
    // scalar baseline serves both comparisons.
    let fresh_snaps: Vec<KernelSnapshot> = (0..8)
        .map(|i| {
            let k = &kernels[i % kernels.len()];
            let mut counters = *sim.evaluate(k, HwConfig::FAIL_SAFE).counters.values();
            counters[0] *= 1.0 + i as f64 * 0.01;
            KernelSnapshot::counters_only(
                gpm_sim::CounterSet::from_values(counters),
                HwConfig::FAIL_SAFE,
                1.0,
            )
        })
        .collect();
    let mut fresh_idx = 0usize;
    let (fresh_iters, fresh_elapsed) = measure(budget, || {
        rf.predict_batch(
            &fresh_snaps[fresh_idx % fresh_snaps.len()],
            &cfgs,
            &mut batch_out,
        );
        fresh_idx += 1;
        black_box(&batch_out);
    });

    let rows = cfgs.len() as f64;
    let scalar_rate = scalar_iters as f64 * rows / scalar_elapsed.as_secs_f64();
    let batched_rate = batched_iters as f64 * rows / batched_elapsed.as_secs_f64();
    let fresh_rate = fresh_iters as f64 * rows / fresh_elapsed.as_secs_f64();
    let speedup = batched_rate / scalar_rate;
    let fresh_speedup = fresh_rate / scalar_rate;

    // RF-backed hill climb: the governor's actual per-decision search.
    let eval = EnergyEvaluator::new(rf.clone(), SimParams::default());
    let cap = out.time_s * 1.1;
    // The search is deterministic, so one probe gives the exact
    // per-invocation candidate count; the timed loop then only measures.
    let (_, evals_per_search) = hill_climb(&eval, &snap, HwConfig::FAIL_SAFE, cap);
    let (climbs, climb_elapsed) = measure(budget, || {
        black_box(hill_climb(&eval, &snap, HwConfig::FAIL_SAFE, cap));
    });
    let ns_per_candidate =
        climb_elapsed.as_nanos() as f64 / (evals_per_search.max(1) * climbs) as f64;

    // Fit wall-time: sequential vs auto-parallel (bit-identical
    // results), profiled: both fits run under a telemetry registry so
    // the `rf.fit` span totals can be reconciled against these timers.
    let telemetry = gpm_telemetry::Telemetry::new();
    let xs = ds.xs();
    let ys = ds.ys_log_time();
    let (fit_seq, fit_auto) = {
        let _enter = telemetry.enter();
        let t0 = Instant::now();
        let seq = RandomForest::fit_with_threads(&xs, &ys, &params, 7, 1);
        let fit_seq = t0.elapsed();
        let t1 = Instant::now();
        let par = RandomForest::fit_with_threads(&xs, &ys, &params, 7, 0);
        let fit_auto = t1.elapsed();
        assert_eq!(seq, par, "parallel fit must be bit-identical");
        (fit_seq, fit_auto)
    };
    let threads_auto = std::thread::available_parallelism().map_or(1, usize::from);
    let fit_span = telemetry
        .snapshot()
        .span("rf.fit")
        .expect("rf.fit span recorded");
    let fit_wall_ms = (fit_seq + fit_auto).as_secs_f64() * 1e3;
    let fit_span_ms = fit_span.total_ns as f64 / 1e6;
    // The span opens first thing inside the fit and the timer wraps the
    // call, so span time is a subset of wall time; anything under 90%
    // coverage means the profiler is dropping attributable work.
    let fit_coverage = fit_span_ms / fit_wall_ms.max(1e-9);

    let gate = std::env::var("GPM_PERF_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(5.0);
    let fresh_gate = std::env::var("GPM_PERF_MIN_FRESH_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.5);

    let report = PerfReport {
        forest_num_trees: params.num_trees,
        candidates: cfgs.len(),
        scalar_candidates_per_s: scalar_rate,
        batched_candidates_per_s: batched_rate,
        batched_speedup: speedup,
        fresh_snapshot_candidates_per_s: fresh_rate,
        fresh_snapshot_speedup: fresh_speedup,
        min_speedup_gate: gate,
        min_fresh_speedup_gate: fresh_gate,
        hill_climb_ns_per_candidate: ns_per_candidate,
        hill_climb_evals_per_search: evals_per_search as f64,
        fit_wall_ms_single_thread: fit_seq.as_secs_f64() * 1e3,
        fit_wall_ms_auto: fit_auto.as_secs_f64() * 1e3,
        fit_threads_auto: threads_auto,
        fit_span_count: fit_span.count,
        fit_span_total_ms: fit_span_ms,
        fit_span_coverage: fit_coverage,
    };

    println!(
        "perf smoke ({} trees, {} candidates):",
        params.num_trees,
        cfgs.len()
    );
    println!("  scalar        : {:>12.0} candidates/s", scalar_rate);
    println!(
        "  batched steady: {:>12.0} candidates/s ({speedup:.1}x)",
        batched_rate
    );
    println!(
        "  batched fresh : {:>12.0} candidates/s ({fresh_speedup:.1}x)",
        fresh_rate
    );
    println!("  hill climb: {ns_per_candidate:.0} ns/candidate");
    println!(
        "  fit: {:.0} ms single-thread, {:.0} ms on {} threads",
        report.fit_wall_ms_single_thread, report.fit_wall_ms_auto, threads_auto
    );
    println!(
        "  rf.fit spans: {} covering {:.0} ms ({:.0}% of fit wall time)",
        fit_span.count,
        fit_span_ms,
        fit_coverage * 100.0
    );
    emit_artifact("results/BENCH_perf.json", &report);

    if speedup < gate {
        eprintln!("FAIL: batched speedup {speedup:.2}x below the {gate:.1}x gate");
        std::process::exit(1);
    }
    if fresh_speedup < fresh_gate {
        eprintln!(
            "FAIL: fresh-snapshot speedup {fresh_speedup:.2}x below the {fresh_gate:.1}x gate"
        );
        std::process::exit(1);
    }
    if fit_span.count != 2 {
        eprintln!(
            "FAIL: expected 2 rf.fit spans (sequential + parallel fit), saw {}",
            fit_span.count
        );
        std::process::exit(1);
    }
    if !(0.9..=1.01).contains(&fit_coverage) {
        eprintln!(
            "FAIL: rf.fit span total {fit_span_ms:.1} ms covers {:.0}% of the \
             {fit_wall_ms:.1} ms fit wall time (expected 90-101%)",
            fit_coverage * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "PASS: batched speedup {speedup:.2}x (fresh {fresh_speedup:.2}x) clears the {gate:.1}x gate"
    );
}
