//! Exports the full measurement campaign — the dataset behind every
//! experiment — as a replayable JSON table and a flat CSV.
//!
//! This is the artifact the paper's authors captured from hardware
//! ("performance and power data ... for 336 APU hardware configurations",
//! Section V). Third parties can load the JSON with
//! `ReplayPlatform::from_json` and re-run any governor against it without
//! the analytical model, or analyze the CSV directly.

use gpm_harness::context::training_kernels;
use gpm_hw::ConfigSpace;
use gpm_sim::{ApuSimulator, ReplayPlatform};

fn main() {
    let sim = ApuSimulator::default();
    let kernels = training_kernels();
    let space = ConfigSpace::paper_campaign();
    eprintln!(
        "recording campaign: {} kernels x {} configurations ...",
        kernels.len(),
        space.len()
    );
    let replay = ReplayPlatform::record(&sim, &kernels, &space);

    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/campaign.json", replay.to_json()).expect("write campaign.json");

    // Flat CSV: one row per (kernel, configuration) measurement.
    let mut csv = String::from(
        "kernel,cpu,nb,gpu,cu,time_s,gpu_power_w,chip_power_w,energy_j,ginstructions\n",
    );
    for kernel in &kernels {
        for cfg in &space {
            let out = sim.evaluate(kernel, cfg);
            csv.push_str(&format!(
                "{},{},{},{},{},{:.9},{:.4},{:.4},{:.6},{:.6}\n",
                kernel.name(),
                cfg.cpu,
                cfg.nb,
                cfg.gpu,
                cfg.cu.get(),
                out.time_s,
                out.power.gpu_domain_w(),
                out.power.total_w(),
                out.energy.total_j(),
                out.ginstructions
            ));
        }
    }
    std::fs::write("results/campaign.csv", &csv).expect("write campaign.csv");

    println!(
        "exported {} measurements: results/campaign.json ({} KiB), results/campaign.csv ({} KiB)",
        replay.len(),
        std::fs::metadata("results/campaign.json")
            .map(|m| m.len() / 1024)
            .unwrap_or(0),
        std::fs::metadata("results/campaign.csv")
            .map(|m| m.len() / 1024)
            .unwrap_or(0),
    );
}
