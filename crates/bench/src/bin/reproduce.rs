//! One command for the whole paper reproduction: runs every registered
//! experiment work-stealing-parallel over a shared evaluation context,
//! writes one schema-versioned JSON artifact per experiment plus an
//! aggregate report, and exits nonzero when any metric leaves its
//! tolerance band.
//!
//! ```text
//! reproduce [--fast | --full] [--filter SUBSTR]... [--jobs N]
//!           [--resume] [--out DIR] [--aggregate PATH]
//!           [--list] [--emit-golden PATH]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    gpm_xp::cli::reproduce_main()
}
