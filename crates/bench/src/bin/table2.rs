//! Table II: execution patterns of the three highlighted irregular
//! benchmarks, recovered from the workload definitions.

use gpm_harness::report::Table;
use gpm_workloads::workload_by_name;

fn main() {
    let mut table = Table::new(vec!["Benchmark", "Kernel Execution Pattern", "Invocations"]);
    for name in ["Spmv", "kmeans", "hybridsort"] {
        let w = workload_by_name(name).expect("suite benchmark");
        table.row(vec![
            w.name().to_string(),
            w.pattern().to_string(),
            w.len().to_string(),
        ]);
    }
    println!("Table II: execution pattern of three irregular benchmarks\n");
    println!("{}", table.render());

    // Show the concrete unrolled kernel sequences as well.
    for name in ["Spmv", "kmeans", "hybridsort"] {
        let w = workload_by_name(name).unwrap();
        let seq: Vec<&str> = w.kernels().iter().map(|k| k.name()).collect();
        println!("{}: {}", name, seq.join(" "));
    }
}
