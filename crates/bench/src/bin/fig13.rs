//! Figure 13: ramification of prediction inaccuracy — MPC driven by the
//! Random Forest vs hypothetical predictors with half-normal error
//! (Err_15%_10%, Err_5%, Err_0%), all at full horizon with no overhead.
//!
//! Paper shape: the alternatives differ only mildly (27–28% savings vs
//! RF's 25%), because MPC leans on prediction far less than exhaustive
//! search and corrects through runtime feedback.

use gpm_bench::{evaluate_suite, figure_context, suite_average, BenchRow};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_model::ErrorSpec;

fn main() {
    let ctx = figure_context();
    let schemes: Vec<(&str, Scheme)> = vec![
        ("RF", Scheme::MpcRfIdealized),
        (
            "Err_15%_10%",
            Scheme::MpcError {
                spec: ErrorSpec::ERR_15_10,
            },
        ),
        (
            "Err_5%",
            Scheme::MpcError {
                spec: ErrorSpec::ERR_5,
            },
        ),
        (
            "Err_0%",
            Scheme::MpcError {
                spec: ErrorSpec::ERR_0,
            },
        ),
    ];

    let results: Vec<(&str, Vec<BenchRow>)> = schemes
        .iter()
        .map(|(name, s)| (*name, evaluate_suite(&ctx, *s)))
        .collect();

    let mut headers = vec!["benchmark".to_string()];
    for (name, _) in &results {
        headers.push(format!("{name} savings (%)"));
        headers.push(format!("{name} speedup"));
    }
    let mut table = Table::new(headers);
    let n = results[0].1.len();
    for i in 0..n {
        let mut row = vec![results[0].1[i].workload.name().to_string()];
        for (_, rows) in &results {
            row.push(fmt(rows[i].vs_baseline.energy_savings_pct, 1));
            row.push(fmt(rows[i].vs_baseline.speedup, 3));
        }
        table.row(row);
    }
    let mut avg_row = vec!["AVERAGE".to_string()];
    for (_, rows) in &results {
        let a = suite_average(rows);
        avg_row.push(fmt(a.energy_savings_pct, 1));
        avg_row.push(fmt(a.speedup, 3));
    }
    table.row(avg_row);

    println!("Figure 13: MPC sensitivity to prediction accuracy (full horizon, no overhead)");
    println!("{}", table.render());
}
