//! Generalization study: the paper trains its predictor on benchmark
//! suites and deploys it on applications at large. Here the Random Forest
//! trains **only on the fixed 15-benchmark suite** and MPC then governs a
//! population of *generated* applications whose kernels the model never
//! saw — the honest out-of-distribution test of the whole pipeline.

use gpm_bench::figure_context;
use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::report::{fmt, Table};
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;
use gpm_workloads::{generate_population, GeneratorParams};

fn main() {
    let ctx = figure_context(); // trained on the 15-benchmark suite only
    let env = ExecEnv::new();
    let population = generate_population(&GeneratorParams::default(), 0xBEEF, 25);

    let mut table = Table::new(vec![
        "generated app",
        "category",
        "N",
        "MPC energy savings (%)",
        "MPC speedup",
        "PPK speedup",
    ]);
    let mut mpc_cs: Vec<Comparison> = Vec::new();
    let mut ppk_cs: Vec<Comparison> = Vec::new();
    for w in &population {
        eprintln!("  generalization on {} ...", w.name());
        let mpc = env.evaluate(
            &ctx,
            w,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let ppk = env.evaluate(&ctx, w, Scheme::PpkRf);
        let mc = Comparison::between(&mpc.baseline, &mpc.measured);
        let pc = Comparison::between(&ppk.baseline, &ppk.measured);
        table.row(vec![
            w.name().to_string(),
            w.category().to_string(),
            w.len().to_string(),
            fmt(mc.energy_savings_pct, 1),
            fmt(mc.speedup, 3),
            fmt(pc.speedup, 3),
        ]);
        mpc_cs.push(mc);
        ppk_cs.push(pc);
    }
    let ma = summarize(&mpc_cs);
    let pa = summarize(&ppk_cs);
    table.row(vec![
        "AVERAGE".into(),
        String::new(),
        String::new(),
        fmt(ma.energy_savings_pct, 1),
        fmt(ma.speedup, 3),
        fmt(pa.speedup, 3),
    ]);

    println!("Generalization: MPC on 25 generated applications with unseen kernels");
    println!("{}", table.render());
    println!(
        "out-of-distribution MPC: {:.1}% savings, speedup {:.3} (suite numbers: ~29% / ~1.0);",
        ma.energy_savings_pct, ma.speedup
    );
    println!(
        "PPK speedup {:.3} — the future-aware gap persists on unseen applications.",
        pa.speedup
    );
}
