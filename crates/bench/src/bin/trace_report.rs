//! Decision-trace report: replays one workload under the full MPC scheme
//! with the observability layer attached, prints the aggregated trace
//! summary, and cross-checks it against the governor's own `MpcStats`
//! (mean horizon, overhead per decision, predictor evaluations — the
//! Figure 14/15 source numbers must be derivable from the event stream
//! alone).
//!
//! The traced evaluation also runs under a live [`gpm_telemetry`]
//! registry, and the report reconciles the *third* accounting layer
//! against the first two: the `env.dispatch` span count and
//! `gpm_dispatches_total` counter must agree exactly with the trace
//! summary's dispatch count — metrics, traces, and governor stats are
//! three views of the same decisions and may never drift.
//!
//! Usage:
//!
//! ```text
//! trace_report [--workload NAME] [--json PATH] [--jsonl PATH]
//!              [--telemetry-out PATH] [--fast]
//! ```
//!
//! `--json` exports the summary (plus energy/performance comparison) as a
//! JSON report; `--jsonl` streams every raw event to a JSON Lines file;
//! `--telemetry-out` writes the registry's Prometheus text exposition.
//! `--fast` (or env `GPM_BENCH_FAST=1`) uses the reduced measurement
//! campaign, for CI smoke runs.
//!
//! Exits non-zero when the trace-derived statistics disagree with
//! `MpcStats`, when the telemetry layer disagrees with the trace layer,
//! or when the context's baseline cache fails to collapse the repeated
//! Turbo Core baseline resolutions into a single simulation.

use gpm_bench::{bench_context, emit_artifact, fast_from_env};
use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::Comparison;
use gpm_harness::report::trace_summary_table;
use gpm_harness::Scheme;
use gpm_mpc::HorizonMode;
use gpm_telemetry::Telemetry;
use gpm_trace::{AggregateSink, FanoutSink, JsonlSink, TraceSink, TraceSummary};
use gpm_workloads::workload_by_name;
use serde::Serialize;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug, Serialize)]
struct TraceReport {
    workload: String,
    scheme: String,
    energy_savings_pct: f64,
    speedup: f64,
    baseline_simulations: u64,
    baseline_cache_hits: u64,
    telemetry_dispatch_spans: u64,
    telemetry_dispatches_total: u64,
    summary: TraceSummary,
}

struct Args {
    workload: String,
    json: Option<String>,
    jsonl: Option<String>,
    telemetry_out: Option<String>,
    fast: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "kmeans".to_string(),
        json: None,
        jsonl: None,
        telemetry_out: None,
        fast: fast_from_env(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" => args.workload = it.next().expect("--workload needs a name"),
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--jsonl" => args.jsonl = Some(it.next().expect("--jsonl needs a path")),
            "--telemetry-out" => {
                args.telemetry_out = Some(it.next().expect("--telemetry-out needs a path"));
            }
            "--fast" => args.fast = true,
            other => panic!("unknown flag {other}; see module docs for usage"),
        }
    }
    args
}

/// Cross-checks one trace-derived value against its `MpcStats` twin.
fn check(label: &str, from_trace: f64, from_stats: f64) -> bool {
    let ok = (from_trace - from_stats).abs() <= 1e-9 * from_stats.abs().max(1.0);
    if !ok {
        eprintln!("MISMATCH {label}: trace {from_trace} vs stats {from_stats}");
    }
    ok
}

fn main() -> ExitCode {
    let args = parse_args();
    let workload = workload_by_name(&args.workload)
        .unwrap_or_else(|| panic!("unknown workload {:?}", args.workload));

    let ctx = bench_context(args.fast);

    let agg = Arc::new(AggregateSink::new());
    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![agg.clone()];
    if let Some(path) = &args.jsonl {
        let jsonl = JsonlSink::create(path).expect("create --jsonl file");
        sinks.push(Arc::new(jsonl));
    }
    let sink: Arc<dyn TraceSink> = Arc::new(FanoutSink::new(sinks));
    let telemetry = Telemetry::new();
    let env = ExecEnv::new()
        .with_trace(sink)
        .with_telemetry(telemetry.clone());

    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    // Evaluate twice through the same context: the second pass must hit the
    // shared baseline cache instead of re-simulating Turbo Core. The warm
    // pass gets its own sink so the reported trace covers exactly one
    // evaluation and stays comparable with that evaluation's MpcStats.
    let warm_agg = Arc::new(AggregateSink::new());
    let _warm = ExecEnv::new()
        .with_trace(warm_agg.clone())
        .evaluate(&ctx, &workload, scheme);
    let warm_summary = warm_agg.summary();
    let out = env.evaluate(&ctx, &workload, scheme);
    let summary = agg.summary();
    let snapshot = telemetry.snapshot();
    let dispatch_spans = snapshot.span("env.dispatch").map_or(0, |s| s.count);
    let dispatches_total = snapshot.counter("gpm_dispatches_total").unwrap_or(0);
    let stats = out.mpc_stats.as_ref().expect("MPC scheme returns stats");
    let cache = ctx.baseline_stats();
    let vs_baseline = Comparison::between(&out.baseline, &out.measured);

    println!("Decision trace: {} on {}", out.label, workload.name());
    println!("{}", trace_summary_table(&summary).render());
    println!(
        "vs Turbo Core: energy savings {:+.2}%, speedup {:.3}",
        vs_baseline.energy_savings_pct, vs_baseline.speedup
    );
    println!(
        "baseline cache: {} simulated, {} served from cache",
        cache.computed, cache.hits
    );
    println!(
        "telemetry: {} dispatch spans, {} dispatch counter increments",
        dispatch_spans, dispatches_total
    );

    if let Some(path) = &args.telemetry_out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create telemetry output directory");
        }
        std::fs::write(path, snapshot.to_prometheus())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    if let Some(path) = &args.json {
        let report = TraceReport {
            workload: workload.name().to_string(),
            scheme: out.label.to_string(),
            energy_savings_pct: vs_baseline.energy_savings_pct,
            speedup: vs_baseline.speedup,
            baseline_simulations: cache.computed,
            baseline_cache_hits: cache.hits,
            telemetry_dispatch_spans: dispatch_spans,
            telemetry_dispatches_total: dispatches_total,
            summary: summary.clone(),
        };
        emit_artifact(path, &report);
    }

    // The acceptance cross-checks: the event stream must reproduce the
    // governor's internal accounting exactly, and the baseline must have
    // been simulated once — every later resolution a cache hit.
    let mut ok = true;
    ok &= check(
        "mean horizon",
        summary.mean_horizon,
        stats.average_horizon(),
    );
    ok &= check(
        "overhead per decision (s)",
        summary.overhead_per_decision_s,
        stats.total_overhead_s() / stats.horizons.len().max(1) as f64,
    );
    ok &= check(
        "horizon-decision evaluations",
        summary.horizon_evaluations as f64,
        stats.total_evaluations() as f64,
    );
    ok &= check(
        "warm-pass baseline simulations",
        warm_summary.baseline_simulations as f64,
        1.0,
    );
    ok &= check(
        "traced-pass baseline simulations",
        summary.baseline_simulations as f64,
        0.0,
    );
    ok &= check(
        "traced-pass baseline cache hits",
        summary.baseline_cache_hits as f64,
        1.0,
    );
    ok &= check("context baseline computes", cache.computed as f64, 1.0);
    ok &= check("context baseline cache hits", cache.hits as f64, 1.0);
    // Telemetry-vs-trace reconciliation: the span profiler and the
    // metrics registry each count dispatches independently of the event
    // stream; all three must agree decision-for-decision.
    ok &= check(
        "telemetry dispatch spans vs trace dispatches",
        dispatch_spans as f64,
        summary.dispatches as f64,
    );
    ok &= check(
        "telemetry dispatch counter vs trace dispatches",
        dispatches_total as f64,
        summary.dispatches as f64,
    );
    ok &= check(
        "telemetry run counter",
        snapshot.counter("gpm_runs_total").unwrap_or(0) as f64,
        summary.runs as f64,
    );
    if ok {
        eprintln!("trace/stats/telemetry cross-check passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
