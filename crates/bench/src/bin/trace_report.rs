//! Decision-trace report: replays one workload under the full MPC scheme
//! with the observability layer attached, prints the aggregated trace
//! summary, and cross-checks it against the governor's own `MpcStats`
//! (mean horizon, overhead per decision, predictor evaluations — the
//! Figure 14/15 source numbers must be derivable from the event stream
//! alone).
//!
//! Usage:
//!
//! ```text
//! trace_report [--workload NAME] [--json PATH] [--jsonl PATH] [--fast]
//! ```
//!
//! `--json` exports the summary (plus energy/performance comparison) as a
//! JSON report; `--jsonl` streams every raw event to a JSON Lines file.
//! `--fast` (or env `GPM_BENCH_FAST=1`) uses the reduced measurement
//! campaign, for CI smoke runs.
//!
//! Exits non-zero when the trace-derived statistics disagree with
//! `MpcStats`.

use gpm_harness::metrics::Comparison;
use gpm_harness::report::trace_summary_table;
use gpm_harness::{evaluate_scheme_traced, EvalContext, EvalOptions, Scheme};
use gpm_mpc::HorizonMode;
use gpm_trace::{AggregateSink, FanoutSink, JsonlSink, TraceSink, TraceSummary};
use gpm_workloads::workload_by_name;
use serde::Serialize;
use std::process::ExitCode;
use std::sync::Arc;

#[derive(Debug, Serialize)]
struct TraceReport {
    workload: String,
    scheme: String,
    energy_savings_pct: f64,
    speedup: f64,
    summary: TraceSummary,
}

struct Args {
    workload: String,
    json: Option<String>,
    jsonl: Option<String>,
    fast: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "kmeans".to_string(),
        json: None,
        jsonl: None,
        fast: std::env::var("GPM_BENCH_FAST").is_ok_and(|v| v != "0"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--workload" => args.workload = it.next().expect("--workload needs a name"),
            "--json" => args.json = Some(it.next().expect("--json needs a path")),
            "--jsonl" => args.jsonl = Some(it.next().expect("--jsonl needs a path")),
            "--fast" => args.fast = true,
            other => panic!("unknown flag {other}; see module docs for usage"),
        }
    }
    args
}

/// Cross-checks one trace-derived value against its `MpcStats` twin.
fn check(label: &str, from_trace: f64, from_stats: f64) -> bool {
    let ok = (from_trace - from_stats).abs() <= 1e-9 * from_stats.abs().max(1.0);
    if !ok {
        eprintln!("MISMATCH {label}: trace {from_trace} vs stats {from_stats}");
    }
    ok
}

fn main() -> ExitCode {
    let args = parse_args();
    let workload = workload_by_name(&args.workload)
        .unwrap_or_else(|| panic!("unknown workload {:?}", args.workload));

    eprintln!(
        "building evaluation context ({})...",
        if args.fast { "fast" } else { "full" }
    );
    let options = if args.fast {
        EvalOptions::fast()
    } else {
        EvalOptions::default()
    };
    let ctx = EvalContext::build(options);

    let agg = Arc::new(AggregateSink::new());
    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![agg.clone()];
    if let Some(path) = &args.jsonl {
        let jsonl = JsonlSink::create(path).expect("create --jsonl file");
        sinks.push(Arc::new(jsonl));
    }
    let sink: Arc<dyn TraceSink> = Arc::new(FanoutSink::new(sinks));

    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    let out = evaluate_scheme_traced(&ctx, &workload, scheme, &sink);
    let summary = agg.summary();
    let stats = out.mpc_stats.as_ref().expect("MPC scheme returns stats");
    let vs_baseline = Comparison::between(&out.baseline, &out.measured);

    println!("Decision trace: {} on {}", out.label, workload.name());
    println!("{}", trace_summary_table(&summary).render());
    println!(
        "vs Turbo Core: energy savings {:+.2}%, speedup {:.3}",
        vs_baseline.energy_savings_pct, vs_baseline.speedup
    );

    if let Some(path) = &args.json {
        let report = TraceReport {
            workload: workload.name().to_string(),
            scheme: out.label.clone(),
            energy_savings_pct: vs_baseline.energy_savings_pct,
            speedup: vs_baseline.speedup,
            summary: summary.clone(),
        };
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, text).expect("write --json report");
        eprintln!("wrote {path}");
    }

    // The acceptance cross-check: the event stream must reproduce the
    // governor's internal accounting exactly.
    let mut ok = true;
    ok &= check(
        "mean horizon",
        summary.mean_horizon,
        stats.average_horizon(),
    );
    ok &= check(
        "overhead per decision (s)",
        summary.overhead_per_decision_s,
        stats.total_overhead_s() / stats.horizons.len().max(1) as f64,
    );
    ok &= check(
        "horizon-decision evaluations",
        summary.horizon_evaluations as f64,
        stats.total_evaluations() as f64,
    );
    if ok {
        eprintln!("trace/stats cross-check passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
