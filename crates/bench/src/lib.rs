//! Entry-point crate for the table/figure regeneration binaries.
//!
//! The experiment implementations, suite evaluation helpers, and
//! artifact emission live in [`gpm_xp`]; every `fig*`/`table*` binary in
//! `src/bin/` is a thin wrapper over [`gpm_xp::cli::run_single`], and
//! the `reproduce` binary drives the whole registry through
//! [`gpm_xp::cli::reproduce_main`]. The historical `gpm_bench::*` helper
//! paths remain valid as re-exports so external scripts and the
//! remaining standalone binaries (`trace_report`, `perf_smoke`,
//! `robustness`) keep compiling.

pub use gpm_xp::artifact::{emit_artifact, emit_svg, ARTIFACT_SCHEMA_VERSION};
pub use gpm_xp::suite::{
    bench_context, evaluate_suite, evaluate_suite_with, fast_from_env, figure_context,
    relative_rows, suite_average, BenchRow,
};

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_harness::env::ExecEnv;
    use gpm_harness::metrics::Comparison;
    use gpm_harness::{EvalContext, EvalOptions, Scheme};
    use gpm_workloads::workload_by_name;

    #[test]
    fn reexported_suite_helpers_evaluate_end_to_end() {
        let ctx = EvalContext::build(EvalOptions::fast());
        let w = workload_by_name("NBody").unwrap();
        let outcome = ExecEnv::new().evaluate(&ctx, &w, Scheme::TheoreticallyOptimal);
        let c = Comparison::between(&outcome.baseline, &outcome.measured);
        assert!(c.energy_savings_pct > 0.0);
    }

    #[test]
    fn schema_version_is_reexported_and_stable() {
        assert_eq!(ARTIFACT_SCHEMA_VERSION, gpm_xp::ARTIFACT_SCHEMA_VERSION);
    }
}
