//! Shared scaffolding for the table/figure regeneration binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` follows the same shape:
//! build the shared [`EvalContext`] (measurement campaign + Random-Forest
//! training), evaluate one or more [`Scheme`]s across the 15-benchmark
//! suite through an [`ExecEnv`], and print the paper-matching rows. The
//! helpers here keep those binaries small and uniform:
//!
//! * [`fast_from_env`] / [`bench_context`] — the `--fast` /
//!   `GPM_BENCH_FAST` context-construction block.
//! * [`emit_artifact`] — versioned JSON artifact emission (every report
//!   carries a `schema_version` field).
//! * [`emit_svg`] — SVG chart emission under `results/`.
//! * [`evaluate_suite`] / [`evaluate_suite_with`] — suite-wide scheme
//!   evaluation, clean or under a custom environment.

use gpm_harness::env::ExecEnv;
use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::{EvalContext, EvalOptions, Scheme, SchemeOutcome};
use gpm_workloads::{suite, Workload};
use serde::Serialize;
use serde_json::Value;
use std::path::Path;

/// Schema version stamped into every JSON artifact written by
/// [`emit_artifact`]. Bump when a report's shape changes incompatibly.
pub const ARTIFACT_SCHEMA_VERSION: u64 = 1;

/// Whether the reduced (`fast`) measurement campaign was requested via
/// the `GPM_BENCH_FAST` environment variable (any value but `0`).
pub fn fast_from_env() -> bool {
    std::env::var("GPM_BENCH_FAST").is_ok_and(|v| v != "0")
}

/// Builds the shared evaluation context in full or fast mode, printing
/// the mode and the trained model's held-out accuracy (compare Section
/// VI-D). This is the context-construction block previously copy-pasted
/// across the report binaries.
pub fn bench_context(fast: bool) -> EvalContext {
    eprintln!(
        "building evaluation context ({}; measurement campaign + RF training)...",
        if fast { "fast" } else { "full" }
    );
    let options = if fast {
        EvalOptions::fast()
    } else {
        EvalOptions::default()
    };
    let ctx = EvalContext::build(options);
    eprintln!(
        "  RF held-out accuracy: time MAPE {:.1}%, power MAPE {:.1}% ({} train / {} test samples)",
        ctx.rf_report.time_mape * 100.0,
        ctx.rf_report.power_mape * 100.0,
        ctx.rf_report.train_samples,
        ctx.rf_report.test_samples,
    );
    ctx
}

/// Builds the full-mode evaluation context, printing the trained model's
/// held-out accuracy.
pub fn figure_context() -> EvalContext {
    bench_context(false)
}

/// Serializes `value`, stamps a `schema_version` field into the root
/// object, and writes it pretty-printed to `path` (creating parent
/// directories as needed).
///
/// # Panics
///
/// Panics when `value` does not serialize to a JSON object or the file
/// cannot be written — report emission is not recoverable for the
/// benchmark binaries.
pub fn emit_artifact<T: Serialize + ?Sized>(path: impl AsRef<Path>, value: &T) {
    let path = path.as_ref();
    let mut root = serde_json::to_value(value).expect("artifact serializes");
    match &mut root {
        Value::Map(entries) => entries.insert(
            0,
            (
                Value::Str("schema_version".to_string()),
                Value::U64(ARTIFACT_SCHEMA_VERSION),
            ),
        ),
        _ => panic!("artifact root must be a JSON object: {}", path.display()),
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create artifact directory");
        }
    }
    let text = serde_json::to_string_pretty(&root).expect("artifact serializes");
    std::fs::write(path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Writes an SVG chart to `path` (creating parent directories as
/// needed).
///
/// # Panics
///
/// Panics when the file cannot be written.
pub fn emit_svg(path: impl AsRef<Path>, svg: &str) {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create chart directory");
        }
    }
    std::fs::write(path, svg).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// One evaluated benchmark: outcome plus baseline comparison.
pub struct BenchRow {
    /// The workload evaluated.
    pub workload: Workload,
    /// Full outcome (baseline, profiling, measured, stats).
    pub outcome: SchemeOutcome,
    /// Scheme vs. Turbo Core baseline.
    pub vs_baseline: Comparison,
}

/// Evaluates `scheme` across the full suite in a clean environment.
pub fn evaluate_suite(ctx: &EvalContext, scheme: Scheme) -> Vec<BenchRow> {
    evaluate_suite_with(&ExecEnv::new(), ctx, scheme)
}

/// Evaluates `scheme` across the full suite under `env` — the traced /
/// faulted report binaries layer their middleware here.
pub fn evaluate_suite_with(env: &ExecEnv, ctx: &EvalContext, scheme: Scheme) -> Vec<BenchRow> {
    suite()
        .into_iter()
        .map(|workload| {
            eprintln!("  {} on {} ...", scheme.label(), workload.name());
            let outcome = env.evaluate(ctx, &workload, scheme);
            let vs_baseline = Comparison::between(&outcome.baseline, &outcome.measured);
            BenchRow {
                workload,
                outcome,
                vs_baseline,
            }
        })
        .collect()
}

/// Suite-wide averages: arithmetic-mean savings, geometric-mean speedup.
pub fn suite_average(rows: &[BenchRow]) -> Comparison {
    let cs: Vec<Comparison> = rows.iter().map(|r| r.vs_baseline).collect();
    summarize(&cs)
}

/// Comparison of two scheme evaluations of the *same* suite, per
/// benchmark: `a` relative to `b` (energy savings of a over b, speedup of
/// a over b). Used by Figure 9 (MPC vs PPK).
pub fn relative_rows(a: &[BenchRow], b: &[BenchRow]) -> Vec<(String, Comparison)> {
    a.iter()
        .zip(b.iter())
        .map(|(ra, rb)| {
            assert_eq!(
                ra.workload.name(),
                rb.workload.name(),
                "suite order mismatch"
            );
            let c = Comparison::between(&rb.outcome.measured, &ra.outcome.measured);
            (ra.workload.name().to_string(), c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_harness::EvalOptions;
    use gpm_workloads::workload_by_name;

    #[test]
    fn evaluate_one_workload_end_to_end() {
        let ctx = EvalContext::build(EvalOptions::fast());
        let w = workload_by_name("NBody").unwrap();
        let outcome = ExecEnv::new().evaluate(&ctx, &w, Scheme::TheoreticallyOptimal);
        let c = Comparison::between(&outcome.baseline, &outcome.measured);
        assert!(c.energy_savings_pct > 0.0);
    }

    #[test]
    fn relative_rows_requires_same_order() {
        let ctx = EvalContext::build(EvalOptions::fast());
        let w = workload_by_name("NBody").unwrap();
        let a = vec![BenchRow {
            workload: w.clone(),
            outcome: ExecEnv::new().evaluate(&ctx, &w, Scheme::TurboCore),
            vs_baseline: Comparison {
                energy_savings_pct: 0.0,
                gpu_energy_savings_pct: 0.0,
                cpu_energy_savings_pct: 0.0,
                speedup: 1.0,
            },
        }];
        let rel = relative_rows(&a, &a);
        assert_eq!(rel.len(), 1);
        assert!((rel[0].1.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn artifact_gets_schema_version_stamp() {
        #[derive(Serialize)]
        struct Tiny {
            x: u64,
        }
        let dir = std::env::temp_dir().join("gpm_bench_artifact_test");
        let path = dir.join("tiny.json");
        emit_artifact(&path, &Tiny { x: 7 });
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema_version\""));
        assert!(text.contains("\"x\""));
        // The stamp leads the object, so consumers can sniff it cheaply.
        assert!(text.find("schema_version").unwrap() < text.find('x').unwrap());
        std::fs::remove_file(&path).ok();
    }
}
