//! Shared scaffolding for the table/figure regeneration binaries.
//!
//! Every `fig*`/`table*` binary in `src/bin/` follows the same shape:
//! build the shared [`EvalContext`] (measurement campaign + Random-Forest
//! training), evaluate one or more [`Scheme`]s across the 15-benchmark
//! suite, and print the paper-matching rows. The helpers here keep those
//! binaries small and uniform.

use gpm_harness::metrics::{summarize, Comparison};
use gpm_harness::{evaluate_scheme, EvalContext, EvalOptions, Scheme, SchemeOutcome};
use gpm_workloads::{suite, Workload};

/// Builds the shared evaluation context, printing the trained model's
/// held-out accuracy (compare Section VI-D).
pub fn figure_context() -> EvalContext {
    eprintln!("building evaluation context (measurement campaign + RF training)...");
    let ctx = EvalContext::build(EvalOptions::default());
    eprintln!(
        "  RF held-out accuracy: time MAPE {:.1}%, power MAPE {:.1}% ({} train / {} test samples)",
        ctx.rf_report.time_mape * 100.0,
        ctx.rf_report.power_mape * 100.0,
        ctx.rf_report.train_samples,
        ctx.rf_report.test_samples,
    );
    ctx
}

/// One evaluated benchmark: outcome plus baseline comparison.
pub struct BenchRow {
    /// The workload evaluated.
    pub workload: Workload,
    /// Full outcome (baseline, profiling, measured, stats).
    pub outcome: SchemeOutcome,
    /// Scheme vs. Turbo Core baseline.
    pub vs_baseline: Comparison,
}

/// Evaluates `scheme` across the full suite.
pub fn evaluate_suite(ctx: &EvalContext, scheme: Scheme) -> Vec<BenchRow> {
    suite()
        .into_iter()
        .map(|workload| {
            eprintln!("  {} on {} ...", scheme.label(), workload.name());
            let outcome = evaluate_scheme(ctx, &workload, scheme);
            let vs_baseline = Comparison::between(&outcome.baseline, &outcome.measured);
            BenchRow {
                workload,
                outcome,
                vs_baseline,
            }
        })
        .collect()
}

/// Suite-wide averages: arithmetic-mean savings, geometric-mean speedup.
pub fn suite_average(rows: &[BenchRow]) -> Comparison {
    let cs: Vec<Comparison> = rows.iter().map(|r| r.vs_baseline).collect();
    summarize(&cs)
}

/// Comparison of two scheme evaluations of the *same* suite, per
/// benchmark: `a` relative to `b` (energy savings of a over b, speedup of
/// a over b). Used by Figure 9 (MPC vs PPK).
pub fn relative_rows(a: &[BenchRow], b: &[BenchRow]) -> Vec<(String, Comparison)> {
    a.iter()
        .zip(b.iter())
        .map(|(ra, rb)| {
            assert_eq!(
                ra.workload.name(),
                rb.workload.name(),
                "suite order mismatch"
            );
            let c = Comparison::between(&rb.outcome.measured, &ra.outcome.measured);
            (ra.workload.name().to_string(), c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_harness::EvalOptions;
    use gpm_workloads::workload_by_name;

    #[test]
    fn evaluate_one_workload_end_to_end() {
        let ctx = EvalContext::build(EvalOptions::fast());
        let w = workload_by_name("NBody").unwrap();
        let outcome = evaluate_scheme(&ctx, &w, Scheme::TheoreticallyOptimal);
        let c = Comparison::between(&outcome.baseline, &outcome.measured);
        assert!(c.energy_savings_pct > 0.0);
    }

    #[test]
    fn relative_rows_requires_same_order() {
        let ctx = EvalContext::build(EvalOptions::fast());
        let w = workload_by_name("NBody").unwrap();
        let a = vec![BenchRow {
            workload: w.clone(),
            outcome: evaluate_scheme(&ctx, &w, Scheme::TurboCore),
            vs_baseline: Comparison {
                energy_savings_pct: 0.0,
                gpu_energy_savings_pct: 0.0,
                cpu_energy_savings_pct: 0.0,
                speedup: 1.0,
            },
        }];
        let rel = relative_rows(&a, &a);
        assert_eq!(rel.len(), 1);
        assert!((rel[0].1.speedup - 1.0).abs() < 1e-9);
    }
}
