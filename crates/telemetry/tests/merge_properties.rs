//! Property tests for [`TelemetrySnapshot::merge`], mirroring the
//! `TraceSummary::merge` suite in `gpm-trace`: merging per-chunk
//! registries over a partitioned metric-event stream — in any chunking
//! and any association order — agrees with one registry having observed
//! every event. Sample values are small integers (exactly representable
//! in `f64`), so every assertion is exact equality, including histogram
//! sums.

use gpm_telemetry::{Telemetry, TelemetrySnapshot};
use proptest::prelude::*;

const COUNTERS: [&str; 3] = ["gpm_a_total", "gpm_b_total", "gpm_c_total"];
const HISTOS: [(&str, &[f64]); 2] = [("gpm_h_small", &[2.0, 8.0, 32.0]), ("gpm_h_wide", &[100.0])];
const SHARD_LABELS: [&str; 2] = ["0", "1"];

/// One metric event. Gauges are absent on purpose: their last-write
/// semantics are inherently order-dependent, and their merge is defined
/// as an additive roll-up, not single-sink agreement.
#[derive(Debug, Clone)]
enum Ev {
    Counter {
        which: usize,
        n: u64,
    },
    LabeledCounter {
        which: usize,
        shard: usize,
        n: u64,
    },
    Histogram {
        which: usize,
        value: u16,
        negate: bool,
    },
    NonFinite {
        which: usize,
    },
    Log2 {
        value: u64,
    },
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    prop_oneof![
        (0usize..COUNTERS.len(), 1u64..100).prop_map(|(which, n)| Ev::Counter { which, n }),
        (
            0usize..COUNTERS.len(),
            0usize..SHARD_LABELS.len(),
            1u64..100
        )
            .prop_map(|(which, shard, n)| Ev::LabeledCounter { which, shard, n }),
        (
            0usize..HISTOS.len(),
            0u16..2000,
            proptest::strategy::AnyBool
        )
            .prop_map(|(which, value, negate)| Ev::Histogram {
                which,
                value,
                negate,
            }),
        (0usize..HISTOS.len()).prop_map(|which| Ev::NonFinite { which }),
        (0u64..(1u64 << 40)).prop_map(|value| Ev::Log2 { value }),
    ]
}

fn apply(t: &Telemetry, events: &[Ev]) {
    for ev in events {
        match ev {
            Ev::Counter { which, n } => t.counter(COUNTERS[*which]).add(*n),
            Ev::LabeledCounter { which, shard, n } => t
                .counter_with(COUNTERS[*which], &[("shard", SHARD_LABELS[*shard])])
                .add(*n),
            Ev::Histogram {
                which,
                value,
                negate,
            } => {
                let (name, bounds) = HISTOS[*which];
                let v = *value as f64 * if *negate { -1.0 } else { 1.0 };
                t.histogram(name, bounds).record(v);
            }
            Ev::NonFinite { which } => {
                let (name, bounds) = HISTOS[*which];
                t.histogram(name, bounds).record(f64::NAN);
            }
            Ev::Log2 { value } => t.log2_histogram("gpm_ns").record(*value),
        }
    }
}

fn summarize(events: &[Ev]) -> TelemetrySnapshot {
    let t = Telemetry::new();
    apply(&t, events);
    t.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunked registries merged in order == one registry over the
    /// whole stream, for any chunk boundaries over any event mix.
    #[test]
    fn chunked_merge_agrees_with_single_registry(
        events in prop::collection::vec(ev_strategy(), 1..120),
        cuts in prop::collection::vec(0usize..120, 0..4),
    ) {
        let whole = summarize(&events);
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (events.len() + 1)).collect();
        bounds.push(0);
        bounds.push(events.len());
        bounds.sort_unstable();
        let mut merged = TelemetrySnapshot::default();
        for pair in bounds.windows(2) {
            merged.merge(&summarize(&events[pair[0]..pair[1]]));
        }
        prop_assert_eq!(merged, whole);
    }

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c) exactly.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(ev_strategy(), 0..40),
        b in prop::collection::vec(ev_strategy(), 0..40),
        c in prop::collection::vec(ev_strategy(), 0..40),
    ) {
        let (sa, sb, sc) = (summarize(&a), summarize(&b), summarize(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut right = sa;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// A reshuffled stream snapshots identically — which worker thread
    /// recorded which event can never leak into a rollup.
    #[test]
    fn aggregation_is_order_insensitive(
        events in prop::collection::vec(ev_strategy(), 1..80),
        rot in 0usize..80,
    ) {
        let mut rotated = events.clone();
        rotated.rotate_left(rot % events.len());
        prop_assert_eq!(summarize(&rotated), summarize(&events));
    }

    /// Merging with an empty snapshot is the identity, both ways.
    #[test]
    fn empty_is_identity(events in prop::collection::vec(ev_strategy(), 0..60)) {
        let s = summarize(&events);
        let mut left = s.clone();
        left.merge(&TelemetrySnapshot::default());
        prop_assert_eq!(&left, &s);
        let mut right = TelemetrySnapshot::default();
        right.merge(&s);
        prop_assert_eq!(&right, &s);
    }
}
