//! Hierarchical span profiler: RAII guards over per-thread span trees.
//!
//! A span records *where the time goes*: entering one pushes onto the
//! thread's active-span stack, dropping it attributes the elapsed wall
//! time to the span's path (its ancestry) and to the parent's child
//! time, so snapshots can report both **total** and **self** time per
//! path. The hot path is allocation-free once a path has been seen: the
//! guard takes one uncontended per-thread lock and indexes into a node
//! arena keyed by `&'static str` names.
//!
//! Spans route through the thread's *current* registry, established
//! with [`Telemetry::enter`]. Library code (forest fit, governor
//! search) calls the free [`span()`] without holding a handle; when no
//! registry is current on the thread, the guard is inert and costs one
//! thread-local read.

use crate::registry::{EventRing, Inner, SpanRow, Telemetry};
use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// A completed span occurrence kept in the bounded event ring for
/// chrome-trace export.
pub(crate) struct SpanEvent {
    pub(crate) name: &'static str,
    pub(crate) tid: u64,
    pub(crate) start_ns: u64,
    pub(crate) dur_ns: u64,
}

/// One span-tree node: a `&'static str` name under a parent path.
struct Node {
    name: &'static str,
    parent: Option<usize>,
    children: Vec<(&'static str, usize)>,
    count: u64,
    total_ns: u64,
    child_ns: u64,
}

/// An active (not yet finished) span on the thread's stack.
struct Frame {
    node: usize,
    start_ns: u64,
    child_ns: u64,
}

#[derive(Default)]
struct ThreadSpans {
    nodes: Vec<Node>,
    roots: Vec<(&'static str, usize)>,
    stack: Vec<Frame>,
}

/// Per-(thread, registry) span state. Only this thread writes; the
/// snapshotting thread reads under the same mutex, which is therefore
/// uncontended in steady state. The registry's epoch and event ring are
/// cached here so a span guard needs only this one (thread-private,
/// cache-warm) allocation — no pointer chase into the shared `Inner`.
pub(crate) struct ThreadSlot {
    tid: u64,
    epoch: Instant,
    events: Option<Arc<EventRing>>,
    spans: Mutex<ThreadSpans>,
}

thread_local! {
    /// Stack of registries made current via [`Telemetry::enter`], with
    /// this thread's slot in each resolved once at enter time.
    static CURRENT: RefCell<Vec<(Telemetry, Arc<ThreadSlot>)>> = const { RefCell::new(Vec::new()) };
    /// Registry → slot cache so repeated [`Telemetry::span`] /
    /// [`Telemetry::enter`] calls skip the registry's thread list lock.
    static SLOTS: RefCell<Vec<(Weak<Inner>, Arc<ThreadSlot>)>> = const { RefCell::new(Vec::new()) };
}

fn slot_for_thread(t: &Telemetry) -> Arc<ThreadSlot> {
    SLOTS.with(|cache| {
        let mut cache = cache.borrow_mut();
        cache.retain(|(weak, _)| weak.strong_count() > 0);
        for (weak, slot) in cache.iter() {
            if let Some(inner) = weak.upgrade() {
                if Arc::ptr_eq(&inner, &t.inner) {
                    return Arc::clone(slot);
                }
            }
        }
        let mut threads = t.inner.threads.lock().unwrap_or_else(|p| p.into_inner());
        let slot = Arc::new(ThreadSlot {
            tid: threads.len() as u64,
            epoch: t.inner.epoch,
            events: t.inner.events.clone(),
            spans: Mutex::new(ThreadSpans::default()),
        });
        threads.push(Arc::clone(&slot));
        cache.push((Arc::downgrade(&t.inner), Arc::clone(&slot)));
        slot
    })
}

impl Telemetry {
    /// Makes this registry the thread's current one until the returned
    /// guard drops; the free [`span()`] then records into it. Nested
    /// enters stack (innermost wins), and the guard is not `Send`.
    pub fn enter(&self) -> EnterGuard {
        let slot = slot_for_thread(self);
        CURRENT.with(|c| c.borrow_mut().push((self.clone(), slot)));
        EnterGuard {
            _not_send: PhantomData,
        }
    }

    /// Opens a span directly on this registry (no thread-current
    /// indirection). Prefer the free [`span()`] in library code.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard::begin(slot_for_thread(self), name)
    }

    /// The thread's current registry, if one is entered.
    pub fn current() -> Option<Telemetry> {
        CURRENT.with(|c| c.borrow().last().map(|(t, _)| t.clone()))
    }
}

/// Scope guard from [`Telemetry::enter`]; dropping restores the
/// previously current registry.
#[must_use = "dropping the guard immediately un-enters the registry"]
pub struct EnterGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Opens a span on the thread's current registry ([`Telemetry::enter`]).
/// With no registry current the guard is inert: one thread-local read,
/// no allocation, no lock.
pub fn span(name: &'static str) -> SpanGuard {
    CURRENT.with(|c| match c.borrow().last() {
        Some((_, slot)) => SpanGuard::begin(Arc::clone(slot), name),
        None => SpanGuard {
            active: None,
            _not_send: PhantomData,
        },
    })
}

/// RAII span: dropping it attributes the elapsed time to the span path.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    /// `(this thread's slot, stack depth of our frame)`.
    active: Option<(Arc<ThreadSlot>, usize)>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    fn begin(slot: Arc<ThreadSlot>, name: &'static str) -> SpanGuard {
        let now = slot.epoch.elapsed().as_nanos() as u64;
        let depth = {
            let mut spans = slot.spans.lock().unwrap_or_else(|p| p.into_inner());
            let parent = spans.stack.last().map(|f| f.node);
            let node = spans.child_node(parent, name);
            spans.stack.push(Frame {
                node,
                start_ns: now,
                child_ns: 0,
            });
            spans.stack.len()
        };
        SpanGuard {
            active: Some((slot, depth)),
            _not_send: PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((slot, depth)) = self.active.take() else {
            return;
        };
        let now = slot.epoch.elapsed().as_nanos() as u64;
        let mut spans = slot.spans.lock().unwrap_or_else(|p| p.into_inner());
        // Out-of-order drops (guard held past a later sibling) close
        // every span opened after ours as well, so the stack and the
        // tree stay consistent.
        while spans.stack.len() >= depth {
            let frame = match spans.stack.pop() {
                Some(f) => f,
                None => break,
            };
            let dur = now.saturating_sub(frame.start_ns);
            let node = &mut spans.nodes[frame.node];
            node.count += 1;
            node.total_ns += dur;
            node.child_ns += frame.child_ns;
            let name = node.name;
            if let Some(parent) = spans.stack.last_mut() {
                parent.child_ns += dur;
            }
            if let Some(ring) = &slot.events {
                let mut events = ring.events.lock().unwrap_or_else(|p| p.into_inner());
                let ev = SpanEvent {
                    name,
                    tid: slot.tid,
                    start_ns: frame.start_ns,
                    dur_ns: dur,
                };
                if events.len() < ring.capacity {
                    events.push(ev);
                } else {
                    let i = ring.cursor.fetch_add(1, Ordering::Relaxed) % ring.capacity;
                    events[i] = ev;
                }
            }
        }
    }
}

impl ThreadSpans {
    /// The node for `name` under `parent`, creating it on first sight
    /// (the only allocation on the span path).
    fn child_node(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&(_, idx)) = siblings.iter().find(|(n, _)| *n == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            parent,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
            child_ns: 0,
        });
        match parent {
            Some(p) => self.nodes[p].children.push((name, idx)),
            None => self.roots.push((name, idx)),
        }
        idx
    }

    fn path_of(&self, mut idx: usize) -> String {
        let mut names = vec![self.nodes[idx].name];
        while let Some(p) = self.nodes[idx].parent {
            names.push(self.nodes[p].name);
            idx = p;
        }
        names.reverse();
        names.join(";")
    }
}

/// Flattens every thread's span tree into path-keyed rows, merging
/// identical paths across threads. Active (unfinished) spans are not
/// counted.
pub(crate) fn collect_spans(inner: &Inner) -> Vec<SpanRow> {
    let mut by_path: HashMap<String, SpanRow> = HashMap::new();
    let threads = inner.threads.lock().unwrap_or_else(|p| p.into_inner());
    for slot in threads.iter() {
        let spans = slot.spans.lock().unwrap_or_else(|p| p.into_inner());
        for (idx, node) in spans.nodes.iter().enumerate() {
            if node.count == 0 {
                continue;
            }
            let path = spans.path_of(idx);
            let row = by_path.entry(path.clone()).or_insert_with(|| SpanRow {
                path,
                count: 0,
                total_ns: 0,
                self_ns: 0,
            });
            row.count += node.count;
            row.total_ns += node.total_ns;
            row.self_ns += node.total_ns.saturating_sub(node.child_ns);
        }
    }
    by_path.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_split_self_and_child_time() {
        let t = Telemetry::new();
        {
            let _outer = t.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(4));
            {
                let _inner = t.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(4));
            }
        }
        let snap = t.snapshot();
        let outer = snap.span("outer").unwrap();
        let inner = snap.span("inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert_eq!(
            snap.spans
                .iter()
                .map(|s| s.path.as_str())
                .collect::<Vec<_>>(),
            vec!["outer", "outer;inner"]
        );
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        assert_eq!(inner.self_ns, inner.total_ns);
    }

    #[test]
    fn free_span_is_inert_without_a_current_registry() {
        let _g = span("nobody.listening");
        let t = Telemetry::new();
        assert!(t.snapshot().spans.is_empty());
    }

    #[test]
    fn enter_routes_free_spans_and_unroutes_on_drop() {
        let t = Telemetry::new();
        {
            let _e = t.enter();
            assert!(Telemetry::current().unwrap().same_registry(&t));
            let _s = span("phase.a");
        }
        assert!(Telemetry::current().is_none());
        let _after = span("phase.b");
        let snap = t.snapshot();
        assert_eq!(snap.span("phase.a").unwrap().count, 1);
        assert!(snap.span("phase.b").is_none());
    }

    #[test]
    fn nested_enters_stack_innermost_wins() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        let _ea = a.enter();
        {
            let _eb = b.enter();
            let _s = span("x");
        }
        let _s2 = span("y");
        drop(_s2);
        assert_eq!(b.snapshot().span("x").unwrap().count, 1);
        let a_snap = a.snapshot();
        assert!(a_snap.span("x").is_none());
        assert_eq!(a_snap.span("y").unwrap().count, 1);
    }

    #[test]
    fn out_of_order_drop_closes_descendants() {
        let t = Telemetry::new();
        let outer = t.span("outer");
        let inner = t.span("inner");
        drop(outer); // closes inner too
        drop(inner); // inert: already closed
        let snap = t.snapshot();
        assert_eq!(snap.span("outer").unwrap().count, 1);
        assert_eq!(snap.span("inner").unwrap().count, 1);
    }

    #[test]
    fn sibling_spans_on_threads_merge_by_path() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    let _e = t.enter();
                    for _ in 0..10 {
                        let _outer = span("fleet.worker");
                        let _inner = span("fleet.shard");
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.span("fleet.worker").unwrap().count, 40);
        let shard = snap
            .spans
            .iter()
            .find(|s| s.path == "fleet.worker;fleet.shard")
            .unwrap();
        assert_eq!(shard.count, 40);
    }

    #[test]
    fn repeated_spans_do_not_grow_the_arena() {
        let t = Telemetry::new();
        for _ in 0..100 {
            let _s = t.span("steady");
        }
        let threads = t.inner.threads.lock().unwrap();
        let spans = threads[0].spans.lock().unwrap();
        assert_eq!(spans.nodes.len(), 1);
        assert_eq!(spans.nodes[0].count, 100);
    }

    #[test]
    fn event_ring_is_bounded() {
        let t = Telemetry::with_events(8);
        {
            let _e = t.enter();
            for _ in 0..50 {
                let _s = span("tick");
            }
        }
        let ring = t.inner.events.as_ref().unwrap();
        assert_eq!(ring.events.lock().unwrap().len(), 8);
    }
}
