//! Exporters over a [`TelemetrySnapshot`]: Prometheus text exposition,
//! chrome://tracing JSON (loadable in Perfetto / `chrome://tracing`),
//! and folded stacks for flamegraph tooling.
//!
//! The Prometheus renderer is paired with [`validate_prometheus`], a
//! strict parser of the text exposition format used by the test suite
//! and CI to prove every rendered page round-trips: names and labels
//! well-formed, every sample under a declared `# TYPE` family, and
//! histogram bucket series cumulative with a terminal `+Inf` bucket
//! equal to `_count`.

use crate::registry::{MetricData, Telemetry, TelemetrySnapshot};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Escapes a Prometheus label value (backslash, quote, newline).
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a sample value: decimal notation, `+Inf`/`-Inf`/`NaN`.
fn render_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Labels plus one extra pair appended (used for `le`).
fn with_label(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((key.to_string(), value.to_string()));
    render_labels(&all)
}

impl TelemetrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Metric kinds map directly (`counter`, `gauge`, `histogram` with
    /// cumulative `_bucket`/`_sum`/`_count` series and a `+Inf`
    /// bucket); log2-HDR histograms render as Prometheus histograms
    /// with power-of-two bounds, skipping empty interior buckets (the
    /// series stays cumulative). Fixed-bucket rejection counts surface
    /// as `<name>_rejected` counters, and span rows as the
    /// `gpm_span_count` / `gpm_span_seconds` / `gpm_span_self_seconds`
    /// counter families labeled by `;`-joined path. Output is
    /// deterministic for a given snapshot and always passes
    /// [`validate_prometheus`].
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut declared: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if declared.insert(name.to_string()) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
            }
        };
        for m in &self.metrics {
            let labels = render_labels(&m.labels);
            match &m.data {
                MetricData::Counter { value } => {
                    type_line(&mut out, &m.name, "counter");
                    let _ = writeln!(out, "{}{labels} {value}", m.name);
                }
                MetricData::Gauge { value, .. } => {
                    type_line(&mut out, &m.name, "gauge");
                    let _ = writeln!(out, "{}{labels} {}", m.name, render_value(*value));
                }
                MetricData::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                    rejected,
                } => {
                    type_line(&mut out, &m.name, "histogram");
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = bounds
                            .get(i)
                            .map(|b| render_value(*b))
                            .unwrap_or_else(|| "+Inf".to_string());
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            m.name,
                            with_label(&m.labels, "le", &le)
                        );
                    }
                    let _ = writeln!(out, "{}_sum{labels} {}", m.name, render_value(*sum));
                    let _ = writeln!(out, "{}_count{labels} {count}", m.name);
                    if *rejected > 0 {
                        let rname = format!("{}_rejected", m.name);
                        type_line(&mut out, &rname, "counter");
                        let _ = writeln!(out, "{rname}{labels} {rejected}");
                    }
                }
                MetricData::Log2 { counts, sum, count } => {
                    type_line(&mut out, &m.name, "histogram");
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        if *c == 0 {
                            continue;
                        }
                        let le = render_value((1u128 << i) as f64);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            m.name,
                            with_label(&m.labels, "le", &le)
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cum}",
                        m.name,
                        with_label(&m.labels, "le", "+Inf")
                    );
                    let _ = writeln!(out, "{}_sum{labels} {sum}", m.name);
                    let _ = writeln!(out, "{}_count{labels} {count}", m.name);
                }
            }
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE gpm_span_count counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "gpm_span_count{} {}",
                    with_label(&[], "path", &s.path),
                    s.count
                );
            }
            out.push_str("# TYPE gpm_span_seconds counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "gpm_span_seconds{} {}",
                    with_label(&[], "path", &s.path),
                    render_value(s.total_ns as f64 / 1e9)
                );
            }
            out.push_str("# TYPE gpm_span_self_seconds counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "gpm_span_self_seconds{} {}",
                    with_label(&[], "path", &s.path),
                    render_value(s.self_ns as f64 / 1e9)
                );
            }
        }
        out
    }

    /// Renders the span rows as folded stacks — one
    /// `root;child;leaf value` line per path, value = **self** time in
    /// nanoseconds — the input format of flamegraph renderers
    /// (`flamegraph.pl`, inferno, speedscope).
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            if s.self_ns == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {}", s.path, s.self_ns);
        }
        out
    }
}

#[derive(Serialize)]
struct ChromeEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    ts: f64,
    dur: f64,
    pid: u64,
    tid: u64,
}

impl Telemetry {
    /// Renders the registry's bounded span-event ring as a
    /// chrome://tracing JSON array of complete (`"ph":"X"`) events,
    /// loadable in Perfetto. Requires the registry to have been built
    /// with [`Telemetry::with_events`]; otherwise the array is empty.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<ChromeEvent> = Vec::new();
        if let Some(ring) = &self.inner.events {
            let ring = ring.events.lock().unwrap_or_else(|p| p.into_inner());
            for ev in ring.iter() {
                events.push(ChromeEvent {
                    name: ev.name.to_string(),
                    cat: "gpm",
                    ph: "X",
                    ts: ev.start_ns as f64 / 1e3,
                    dur: ev.dur_ns as f64 / 1e3,
                    pid: 1,
                    tid: ev.tid,
                });
            }
        }
        events.sort_by(|a, b| a.ts.total_cmp(&b.ts).then(a.tid.cmp(&b.tid)));
        serde_json::to_string(&events).expect("chrome trace serialization cannot fail")
    }
}

/// Summary returned by [`validate_prometheus`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromStats {
    /// Declared `# TYPE` families.
    pub families: usize,
    /// Sample lines parsed.
    pub samples: usize,
    /// Families declared as histograms.
    pub histograms: usize,
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_prom_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value {other:?}")),
    }
}

/// Parses one `{k="v",...}` label block, returning sorted pairs.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            break;
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {s:?}"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value in {s:?}"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {s:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {s:?}"))?;
        labels.push((key.to_string(), value));
        rest = &rest[end + 1..];
        if !rest.is_empty() && !rest.starts_with(',') {
            return Err(format!("junk after label value in {s:?}"));
        }
    }
    labels.sort();
    Ok(labels)
}

/// Strictly validates a Prometheus text exposition page.
///
/// Enforced: identifier charset for metric and label names, quoting and
/// escapes in label values, numeric sample values, every sample
/// belonging to a `# TYPE`-declared family (with `_bucket`/`_sum`/
/// `_count` suffixes resolving to a histogram family), no duplicate
/// family declarations or samples, and — per histogram label set —
/// cumulative non-decreasing buckets ending in `+Inf` whose value
/// equals the family's `_count`. Returns counts of what was parsed.
pub fn validate_prometheus(text: &str) -> Result<PromStats, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: HashMap<(String, String), f64> = HashMap::new();
    // (family, labels-minus-le) -> le -> cumulative count
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    let mut n_samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let ctx = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| ctx("TYPE without name".into()))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| ctx("TYPE without kind".into()))?;
                if !valid_name(name) {
                    return Err(ctx(format!("invalid family name {name:?}")));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(ctx(format!("unknown family kind {kind:?}")));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(ctx(format!("duplicate TYPE for {name:?}")));
                }
            }
            continue;
        }
        // Sample: name[{labels}] value [timestamp]
        let (name_labels, value_ts) = match line.find('}') {
            Some(close) => (&line[..close + 1], line[close + 1..].trim_start()),
            None => {
                let sp = line
                    .find(char::is_whitespace)
                    .ok_or_else(|| ctx(format!("sample without value: {line:?}")))?;
                (&line[..sp], line[sp..].trim_start())
            }
        };
        let (name, labels) = match name_labels.find('{') {
            Some(open) => {
                if !name_labels.ends_with('}') {
                    return Err(ctx(format!("unterminated label block in {line:?}")));
                }
                (
                    &name_labels[..open],
                    parse_labels(&name_labels[open + 1..name_labels.len() - 1]).map_err(&ctx)?,
                )
            }
            None => (name_labels, Vec::new()),
        };
        if !valid_name(name) {
            return Err(ctx(format!("invalid metric name {name:?}")));
        }
        let mut fields = value_ts.split_whitespace();
        let value = parse_prom_value(fields.next().ok_or_else(|| ctx("missing value".into()))?)
            .map_err(&ctx)?;
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| ctx(format!("invalid timestamp {ts:?}")))?;
        }
        if fields.next().is_some() {
            return Err(ctx(format!("trailing fields in {line:?}")));
        }

        // Resolve the family this sample belongs to.
        let family = if types.contains_key(name) {
            name.to_string()
        } else {
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| name.strip_suffix(suf))
                .ok_or_else(|| ctx(format!("sample {name:?} has no TYPE family")))?;
            if types.get(base).map(String::as_str) != Some("histogram") {
                return Err(ctx(format!("sample {name:?} has no TYPE family")));
            }
            base.to_string()
        };
        let non_le: Vec<(String, String)> =
            labels.iter().filter(|(k, _)| k != "le").cloned().collect();
        let group = format!("{:?}", non_le);
        if name.ends_with("_bucket") && types.get(&family).map(String::as_str) == Some("histogram")
        {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| ctx(format!("{name:?} bucket without le label")))?;
            let le = parse_prom_value(&le.1).map_err(&ctx)?;
            buckets
                .entry((family.clone(), group.clone()))
                .or_default()
                .push((le, value));
        }
        if name.ends_with("_count") && types.get(&family).map(String::as_str) == Some("histogram") {
            counts.insert((family.clone(), group.clone()), value);
        }
        let key = (name.to_string(), format!("{:?}", labels));
        if samples.insert(key, value).is_some() {
            return Err(ctx(format!("duplicate sample {name:?} {labels:?}")));
        }
        n_samples += 1;
    }

    for ((family, group), mut series) in buckets {
        series.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = 0.0f64;
        for (le, cum) in &series {
            if *cum < prev {
                return Err(format!(
                    "histogram {family:?} {group}: bucket le={le} count {cum} < previous {prev}"
                ));
            }
            prev = *cum;
        }
        let last = series
            .last()
            .filter(|(le, _)| le.is_infinite())
            .ok_or_else(|| format!("histogram {family:?} {group}: missing +Inf bucket"))?;
        if let Some(count) = counts.get(&(family.clone(), group.clone())) {
            if last.1 != *count {
                return Err(format!(
                    "histogram {family:?} {group}: +Inf bucket {} != _count {count}",
                    last.1
                ));
            }
        }
    }

    let histograms = types.values().filter(|k| *k == "histogram").count();
    Ok(PromStats {
        families: types.len(),
        samples: n_samples,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    fn populated() -> Telemetry {
        let t = Telemetry::with_events(64);
        t.counter("gpm_jobs_total").add(7);
        t.counter_with("gpm_jobs_total", &[("shard", "a b\"c\\")])
            .add(2);
        t.gauge("gpm_workers").set(4.0);
        let h = t.histogram("gpm_decision_seconds", &[0.001, 0.01, 0.1]);
        for v in [0.0005, 0.005, 0.05, 5.0] {
            h.record(v);
        }
        h.record(f64::NAN);
        let l = t.log2_histogram("gpm_span_ns_hdr");
        l.record(100);
        l.record(5000);
        {
            let _e = t.enter();
            let _outer = span("env.dispatch");
            let _inner = span("search.hill_climb");
        }
        t
    }

    #[test]
    fn prometheus_page_round_trips_through_the_validator() {
        let t = populated();
        let page = t.snapshot().to_prometheus();
        let stats = validate_prometheus(&page).expect("rendered page must validate");
        assert!(stats.families >= 7, "families: {stats:?}\n{page}");
        assert_eq!(stats.histograms, 2);
        assert!(page.contains("gpm_jobs_total{shard=\"a b\\\"c\\\\\"} 2"));
        assert!(page.contains("gpm_decision_seconds_bucket{le=\"+Inf\"} 4"));
        assert!(page.contains("gpm_decision_seconds_rejected 1"));
        assert!(page.contains("gpm_span_count{path=\"env.dispatch;search.hill_climb\"} 1"));
    }

    #[test]
    fn empty_snapshot_renders_an_empty_valid_page() {
        let stats = validate_prometheus(&TelemetrySnapshot::default().to_prometheus()).unwrap();
        assert_eq!(stats.samples, 0);
    }

    #[test]
    fn validator_rejects_malformed_pages() {
        for (page, why) in [
            ("gpm_x 1\n", "sample without TYPE"),
            ("# TYPE gpm_x counter\n0bad 1\n", "bad metric name"),
            ("# TYPE gpm_x counter\ngpm_x one\n", "bad value"),
            (
                "# TYPE gpm_x counter\ngpm_x 1\ngpm_x 2\n",
                "duplicate sample",
            ),
            (
                "# TYPE gpm_x counter\n# TYPE gpm_x gauge\n",
                "duplicate TYPE",
            ),
            (
                "# TYPE gpm_x counter\ngpm_x{l=unquoted} 1\n",
                "unquoted label value",
            ),
            (
                "# TYPE gpm_h histogram\ngpm_h_bucket{le=\"1\"} 5\ngpm_h_bucket{le=\"+Inf\"} 3\n",
                "non-cumulative buckets",
            ),
            (
                "# TYPE gpm_h histogram\ngpm_h_bucket{le=\"1\"} 5\n",
                "missing +Inf",
            ),
            (
                "# TYPE gpm_h histogram\ngpm_h_bucket{le=\"+Inf\"} 5\ngpm_h_count 4\n",
                "+Inf != count",
            ),
        ] {
            assert!(
                validate_prometheus(page).is_err(),
                "accepted bad page: {why}"
            );
        }
    }

    #[test]
    fn validator_accepts_labeled_histogram_groups() {
        let page = "\
# TYPE gpm_h histogram
gpm_h_bucket{shard=\"0\",le=\"1\"} 2
gpm_h_bucket{shard=\"0\",le=\"+Inf\"} 3
gpm_h_sum{shard=\"0\"} 1.5
gpm_h_count{shard=\"0\"} 3
gpm_h_bucket{shard=\"1\",le=\"1\"} 0
gpm_h_bucket{shard=\"1\",le=\"+Inf\"} 1
gpm_h_sum{shard=\"1\"} 9
gpm_h_count{shard=\"1\"} 1
";
        let stats = validate_prometheus(page).unwrap();
        assert_eq!(stats.samples, 8);
        assert_eq!(stats.histograms, 1);
    }

    #[test]
    fn chrome_trace_is_a_json_array_of_complete_events() {
        let t = populated();
        let json = t.chrome_trace();
        let parsed: Vec<serde_json::Value> = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        let names: Vec<&str> = parsed.iter().map(|e| e["name"].as_str().unwrap()).collect();
        assert!(names.contains(&"env.dispatch"));
        assert!(names.contains(&"search.hill_climb"));
        for e in &parsed {
            assert_eq!(e["ph"].as_str(), Some("X"));
            assert!(e["dur"].as_f64().unwrap() >= 0.0);
        }
    }

    #[test]
    fn chrome_trace_without_a_ring_is_empty() {
        let t = Telemetry::new();
        {
            let _s = t.span("ignored");
        }
        assert_eq!(t.chrome_trace(), "[]");
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let t = populated();
        let folded = t.snapshot().to_folded();
        let dispatch_line = folded
            .lines()
            .find(|l| l.starts_with("env.dispatch "))
            .expect("root self time line");
        let parts: Vec<&str> = dispatch_line.rsplitn(2, ' ').collect();
        let self_ns: u64 = parts[0].parse().unwrap();
        let total = t.snapshot().span("env.dispatch").unwrap().total_ns;
        assert!(self_ns <= total);
        assert!(folded
            .lines()
            .any(|l| l.starts_with("env.dispatch;search.hill_climb ")));
    }
}
