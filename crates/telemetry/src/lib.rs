//! Fleet-wide production telemetry: a low-overhead metrics registry plus
//! a hierarchical span profiler, with Prometheus / chrome-trace /
//! flamegraph exporters.
//!
//! Where `gpm-trace` answers *what did the governor decide* (a typed
//! per-decision event stream), this crate answers *where
//! does the time go and how is the service behaving* — the
//! machine-scrapable counters, latency distributions, and phase
//! attribution a long-running fleet needs. The two layers are
//! complementary and share merge semantics: per-shard snapshots fold into
//! fleet rollups exactly like `TraceSummary::merge`.
//!
//! # Layers
//!
//! * [`registry`] — the [`Telemetry`] handle: interned
//!   ([`MetricId`]-keyed) counters, gauges, fixed-bucket histograms, and
//!   log2-HDR histograms, all striped across [`STRIPES`] atomic cells so
//!   concurrent writers on the hot path never contend on one cache line;
//!   [`TelemetrySnapshot`] freezes the registry into a serializable,
//!   mergeable value.
//! * [`mod@span`] — RAII span guards ([`Telemetry::span`] or the free
//!   [`span()`] routed through the thread's *current* handle) recording
//!   count, total, and **self** time (total minus child spans) into
//!   per-thread span trees — the hot path takes one uncontended lock and
//!   allocates nothing once a span name has been seen.
//! * [`export`] — three renderers over a snapshot: Prometheus text
//!   exposition (plus [`export::validate_prometheus`]), chrome://tracing
//!   JSON (loadable in Perfetto), and folded stacks for flamegraphs.
//!
//! # Wiring
//!
//! The harness's `ExecEnv::with_telemetry` installs a handle as replay
//! middleware; deeper layers (forest fit, flat-forest specialization, the
//! governors' searches) emit spans through the thread-current handle, so
//! instrumented library code needs no plumbing:
//!
//! ```
//! use gpm_telemetry::{span, Telemetry};
//!
//! let t = Telemetry::new();
//! {
//!     let _enter = t.enter();              // make `t` current on this thread
//!     let _outer = span("search.hill_climb");
//!     let _inner = span("flat.specialize"); // child of hill_climb
//! }
//! t.counter("gpm_decisions_total").add(3);
//! let snap = t.snapshot();
//! assert_eq!(snap.counter("gpm_decisions_total"), Some(3));
//! assert_eq!(snap.span("search.hill_climb").unwrap().count, 1);
//! assert!(snap.to_prometheus().contains("gpm_decisions_total 3"));
//! ```
//!
//! Telemetry is strictly read-only observability: installing or removing
//! a handle never changes a governor decision (pinned by the
//! `execenv_equivalence` and `fleet_determinism` suites), and measured
//! overhead on the steady-state MPC hot path is gated below 5% by the
//! `telemetry_overhead` bench.

#![warn(missing_docs)]

pub mod export;
pub mod registry;
pub mod span;

pub use export::{validate_prometheus, PromStats};
pub use registry::{
    Counter, Gauge, Histo, Log2Histo, MetricData, MetricId, MetricValue, SpanRow, Telemetry,
    TelemetrySnapshot, STRIPES,
};
pub use span::{span, EnterGuard, SpanGuard};
