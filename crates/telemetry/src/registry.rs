//! The metrics registry: interned metric descriptors over striped atomic
//! storage, plus the snapshot/merge layer shared with the span profiler.
//!
//! Hot-path writes never take a lock: a metric handle resolved once via
//! [`Telemetry::counter`] (or the histogram/gauge siblings) holds an
//! `Arc` to its storage, and each write lands in one of [`STRIPES`]
//! per-thread-striped atomic cells, so concurrent shard workers do not
//! bounce a shared cache line. Registration (name interning) is the only
//! locking operation and happens once per distinct name.

use crate::span::{SpanEvent, ThreadSlot};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Stripe count for counters and histograms: writers hash to a stripe by
/// thread, readers fold all stripes at snapshot time.
pub const STRIPES: usize = 16;

/// Interned identity of one (name, label set) metric within a registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MetricId(pub u32);

/// Per-thread stripe selection: threads round-robin over stripes at
/// first use, so writer threads spread across cells deterministically
/// per process (the *values* merged at snapshot are order-independent).
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// Lock-free `f64` accumulate into an `AtomicU64` holding IEEE-754 bits.
fn f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn zeroed(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

/// Storage behind one registered metric.
enum Store {
    /// Monotonic counter, one cell per stripe.
    Counter(Box<[AtomicU64]>),
    /// Last-written level plus how many writes happened.
    Gauge { bits: AtomicU64, samples: AtomicU64 },
    /// Fixed-bucket histogram: per stripe, `bounds.len() + 1` bucket
    /// cells plus sum (f64 bits), count, and rejected cells.
    Histogram {
        bounds: Vec<f64>,
        buckets: Box<[AtomicU64]>,
        sums: Box<[AtomicU64]>,
        counts: Box<[AtomicU64]>,
        rejected: Box<[AtomicU64]>,
    },
    /// Log2-HDR histogram over `u64` samples: bucket *i* holds values of
    /// bit width *i* (so bucket bounds grow as powers of two), 64
    /// buckets per stripe plus sum and count cells.
    Log2 {
        buckets: Box<[AtomicU64]>,
        sums: Box<[AtomicU64]>,
        counts: Box<[AtomicU64]>,
    },
}

const LOG2_BUCKETS: usize = 64;

impl Store {
    fn kind(&self) -> &'static str {
        match self {
            Store::Counter(_) => "counter",
            Store::Gauge { .. } => "gauge",
            Store::Histogram { .. } => "histogram",
            Store::Log2 { .. } => "log2_histogram",
        }
    }
}

struct MetricEntry {
    name: String,
    labels: Vec<(String, String)>,
    store: Store,
}

/// Bounded ring of completed span events for chrome-trace export.
pub(crate) struct EventRing {
    pub(crate) capacity: usize,
    pub(crate) events: Mutex<Vec<SpanEvent>>,
    pub(crate) cursor: AtomicUsize,
}

/// Interning key: metric name plus its sorted label pairs.
type MetricKey = (String, Vec<(String, String)>);

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    index: Mutex<HashMap<MetricKey, MetricId>>,
    entries: RwLock<Vec<Arc<MetricEntry>>>,
    pub(crate) threads: Mutex<Vec<Arc<ThreadSlot>>>,
    pub(crate) events: Option<Arc<EventRing>>,
}

/// A cheaply clonable telemetry handle: the metrics registry plus the
/// span profiler state. Clones share storage; [`Telemetry::snapshot`]
/// freezes everything into a serializable [`TelemetrySnapshot`].
#[derive(Clone)]
pub struct Telemetry {
    pub(crate) inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("metrics", &self.inner.entries.read().map(|e| e.len()))
            .field("events", &self.inner.events.is_some())
            .finish()
    }
}

/// Panics unless `name` is a valid Prometheus metric/label identifier.
fn check_name(name: &str, what: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    let tail_ok = chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(
        head_ok && tail_ok,
        "{what} {name:?} is not a valid Prometheus identifier"
    );
}

impl Telemetry {
    /// A fresh, empty registry with span-event recording disabled.
    pub fn new() -> Telemetry {
        Telemetry::build(None)
    }

    /// A registry that additionally keeps the most recent `capacity`
    /// completed spans as chrome-trace events
    /// ([`Telemetry::chrome_trace`]).
    pub fn with_events(capacity: usize) -> Telemetry {
        Telemetry::build(Some(Arc::new(EventRing {
            capacity: capacity.max(1),
            events: Mutex::new(Vec::new()),
            cursor: AtomicUsize::new(0),
        })))
    }

    fn build(events: Option<Arc<EventRing>>) -> Telemetry {
        Telemetry {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                index: Mutex::new(HashMap::new()),
                entries: RwLock::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
                events,
            }),
        }
    }

    /// Whether two handles share one registry.
    pub fn same_registry(&self, other: &Telemetry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Store,
    ) -> Arc<MetricEntry> {
        check_name(name, "metric name");
        for (k, _) in labels {
            check_name(k, "label name");
        }
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let mut index = self.inner.index.lock().unwrap_or_else(|p| p.into_inner());
        let key = (name.to_string(), labels.clone());
        if let Some(id) = index.get(&key) {
            let entries = self.inner.entries.read().unwrap_or_else(|p| p.into_inner());
            return Arc::clone(&entries[id.0 as usize]);
        }
        let entry = Arc::new(MetricEntry {
            name: name.to_string(),
            labels,
            store: make(),
        });
        let mut entries = self
            .inner
            .entries
            .write()
            .unwrap_or_else(|p| p.into_inner());
        index.insert(key, MetricId(entries.len() as u32));
        entries.push(Arc::clone(&entry));
        entry
    }

    /// The interned id for `(name, labels)`, if registered.
    pub fn metric_id(&self, name: &str, labels: &[(&str, &str)]) -> Option<MetricId> {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        self.inner
            .index
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&(name.to_string(), labels))
            .copied()
    }

    /// A monotonic counter handle (registering the name on first use).
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a valid Prometheus identifier or was
    /// already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// A labeled monotonic counter handle.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let entry = self.register(name, labels, || Store::Counter(zeroed(STRIPES)));
        assert!(
            matches!(entry.store, Store::Counter(_)),
            "metric {name:?} already registered as a {}",
            entry.store.kind()
        );
        Counter { entry }
    }

    /// A gauge handle (last-written level; merges additively across
    /// shards, so per-shard levels roll up to fleet totals).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// A labeled gauge handle.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let entry = self.register(name, labels, || Store::Gauge {
            bits: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        });
        assert!(
            matches!(entry.store, Store::Gauge { .. }),
            "metric {name:?} already registered as a {}",
            entry.store.kind()
        );
        Gauge { entry }
    }

    /// A fixed-bucket histogram handle over strictly increasing
    /// `bounds` (same bucket convention as `gpm_trace::Histogram`).
    /// Non-finite samples are dropped and counted as rejected.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is not strictly increasing, or the name was
    /// registered with different bounds or as a different kind.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histo {
        self.histogram_with(name, &[], bounds)
    }

    /// A labeled fixed-bucket histogram handle.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histo {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let entry = self.register(name, labels, || Store::Histogram {
            bounds: bounds.to_vec(),
            buckets: zeroed(STRIPES * (bounds.len() + 1)),
            sums: zeroed(STRIPES),
            counts: zeroed(STRIPES),
            rejected: zeroed(STRIPES),
        });
        match &entry.store {
            Store::Histogram {
                bounds: existing, ..
            } => assert_eq!(
                existing, bounds,
                "metric {name:?} already registered with different bounds"
            ),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
        Histo { entry }
    }

    /// A log2-HDR histogram handle for `u64` samples (typically
    /// nanoseconds): bucket boundaries are powers of two, covering the
    /// full range in 64 buckets.
    pub fn log2_histogram(&self, name: &str) -> Log2Histo {
        self.log2_histogram_with(name, &[])
    }

    /// A labeled log2-HDR histogram handle.
    pub fn log2_histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Log2Histo {
        let entry = self.register(name, labels, || Store::Log2 {
            buckets: zeroed(STRIPES * LOG2_BUCKETS),
            sums: zeroed(STRIPES),
            counts: zeroed(STRIPES),
        });
        assert!(
            matches!(entry.store, Store::Log2 { .. }),
            "metric {name:?} already registered as a {}",
            entry.store.kind()
        );
        Log2Histo { entry }
    }

    /// Freezes the registry (metrics and span trees) into a mergeable,
    /// serializable snapshot. Writers may continue concurrently; the
    /// snapshot observes each cell atomically.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut metrics: Vec<MetricValue> = self
            .inner
            .entries
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|e| e.freeze())
            .collect();
        metrics.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        let mut spans = crate::span::collect_spans(&self.inner);
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        TelemetrySnapshot { metrics, spans }
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl MetricEntry {
    fn freeze(&self) -> MetricValue {
        let data = match &self.store {
            Store::Counter(cells) => MetricData::Counter {
                value: cells.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
            },
            Store::Gauge { bits, samples } => MetricData::Gauge {
                value: f64::from_bits(bits.load(Ordering::Relaxed)),
                samples: samples.load(Ordering::Relaxed),
            },
            Store::Histogram {
                bounds,
                buckets,
                sums,
                counts,
                rejected,
            } => {
                let width = bounds.len() + 1;
                let mut folded = vec![0u64; width];
                for s in 0..STRIPES {
                    for (i, cell) in buckets[s * width..(s + 1) * width].iter().enumerate() {
                        folded[i] += cell.load(Ordering::Relaxed);
                    }
                }
                MetricData::Histogram {
                    bounds: bounds.clone(),
                    counts: folded,
                    sum: sums
                        .iter()
                        .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
                        .sum(),
                    count: counts.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
                    rejected: rejected.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
                }
            }
            Store::Log2 {
                buckets,
                sums,
                counts,
            } => {
                let mut folded = vec![0u64; LOG2_BUCKETS];
                for s in 0..STRIPES {
                    for (i, cell) in buckets[s * LOG2_BUCKETS..(s + 1) * LOG2_BUCKETS]
                        .iter()
                        .enumerate()
                    {
                        folded[i] += cell.load(Ordering::Relaxed);
                    }
                }
                MetricData::Log2 {
                    counts: folded,
                    sum: sums.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
                    count: counts.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
                }
            }
        };
        MetricValue {
            name: self.name.clone(),
            labels: self.labels.clone(),
            data,
        }
    }
}

/// Monotonic counter handle; writes are striped atomic adds.
#[derive(Clone)]
pub struct Counter {
    entry: Arc<MetricEntry>,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Store::Counter(cells) = &self.entry.store {
            cells[stripe()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// Gauge handle: a last-written level.
#[derive(Clone)]
pub struct Gauge {
    entry: Arc<MetricEntry>,
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: f64) {
        if let Store::Gauge { bits, samples } = &self.entry.store {
            bits.store(v.to_bits(), Ordering::Relaxed);
            samples.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histo {
    entry: Arc<MetricEntry>,
}

impl Histo {
    /// Records one sample; non-finite values are dropped and counted in
    /// the snapshot's `rejected` field.
    pub fn record(&self, v: f64) {
        if let Store::Histogram {
            bounds,
            buckets,
            sums,
            counts,
            rejected,
        } = &self.entry.store
        {
            let s = stripe();
            if !v.is_finite() {
                rejected[s].fetch_add(1, Ordering::Relaxed);
                return;
            }
            let width = bounds.len() + 1;
            let idx = bounds.partition_point(|&b| b <= v);
            buckets[s * width + idx].fetch_add(1, Ordering::Relaxed);
            f64_add(&sums[s], v);
            counts[s].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Log2-HDR histogram handle for `u64` samples.
#[derive(Clone)]
pub struct Log2Histo {
    entry: Arc<MetricEntry>,
}

/// Bucket index of a `u64` sample: its bit width (0 for 0).
pub(crate) fn log2_bucket(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(LOG2_BUCKETS - 1)
}

impl Log2Histo {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Store::Log2 {
            buckets,
            sums,
            counts,
        } = &self.entry.store
        {
            let s = stripe();
            buckets[s * LOG2_BUCKETS + log2_bucket(v)].fetch_add(1, Ordering::Relaxed);
            sums[s].fetch_add(v, Ordering::Relaxed);
            counts[s].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One frozen metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricValue {
    /// Metric name (a valid Prometheus identifier).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Kind-specific frozen data.
    pub data: MetricData,
}

/// Frozen data of one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricData {
    /// Monotonic count.
    Counter {
        /// Total across stripes.
        value: u64,
    },
    /// Level.
    Gauge {
        /// Last-written level (sum of levels after a merge).
        value: f64,
        /// How many `set` calls happened.
        samples: u64,
    },
    /// Fixed-bucket distribution.
    Histogram {
        /// Strictly increasing bucket bounds.
        bounds: Vec<f64>,
        /// `bounds.len() + 1` per-bucket counts.
        counts: Vec<u64>,
        /// Sum of accepted samples.
        sum: f64,
        /// Accepted samples.
        count: u64,
        /// Non-finite samples dropped.
        rejected: u64,
    },
    /// Power-of-two-bucket distribution over `u64` samples.
    Log2 {
        /// 64 per-bit-width counts.
        counts: Vec<u64>,
        /// Sum of samples.
        sum: u64,
        /// Samples recorded.
        count: u64,
    },
}

/// One aggregated span path in a snapshot: the `;`-joined ancestry
/// (flamegraph folded-stack key), with total and self time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRow {
    /// `;`-joined span ancestry, root first (e.g.
    /// `env.dispatch;search.hill_climb`).
    pub path: String,
    /// Completed spans on this path.
    pub count: u64,
    /// Wall time inside these spans, nanoseconds.
    pub total_ns: u64,
    /// `total_ns` minus time attributed to child spans.
    pub self_ns: u64,
}

impl SpanRow {
    /// The leaf span name (last `;` segment).
    pub fn name(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }
}

/// A frozen, mergeable view of one registry: sorted metrics plus sorted
/// span rows. Serialized snapshots are the fleet's telemetry artifact.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Frozen metrics, sorted by (name, labels).
    pub metrics: Vec<MetricValue>,
    /// Aggregated span rows, sorted by path.
    pub spans: Vec<SpanRow>,
}

impl TelemetrySnapshot {
    /// Folds `other` into this snapshot: counters, histograms, and span
    /// rows add; gauges add levels (per-shard levels roll up to fleet
    /// totals). This mirrors `TraceSummary::merge` — merging per-shard
    /// snapshots in any grouping agrees with one registry having
    /// observed every event (property-tested).
    ///
    /// # Panics
    ///
    /// Panics when one metric name is registered with incompatible
    /// shapes (different kinds or histogram bounds) across the two
    /// snapshots.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for theirs in &other.metrics {
            match self
                .metrics
                .iter_mut()
                .find(|m| m.name == theirs.name && m.labels == theirs.labels)
            {
                None => self.metrics.push(theirs.clone()),
                Some(ours) => match (&mut ours.data, &theirs.data) {
                    (MetricData::Counter { value: a }, MetricData::Counter { value: b }) => {
                        *a += b;
                    }
                    (
                        MetricData::Gauge {
                            value: a,
                            samples: asn,
                        },
                        MetricData::Gauge {
                            value: b,
                            samples: bsn,
                        },
                    ) => {
                        *a += b;
                        *asn += bsn;
                    }
                    (
                        MetricData::Histogram {
                            bounds: ab,
                            counts: ac,
                            sum: asum,
                            count: an,
                            rejected: ar,
                        },
                        MetricData::Histogram {
                            bounds: bb,
                            counts: bc,
                            sum: bsum,
                            count: bn,
                            rejected: br,
                        },
                    ) => {
                        assert_eq!(
                            ab, bb,
                            "cannot merge histogram {:?} with different bounds",
                            ours.name
                        );
                        for (x, y) in ac.iter_mut().zip(bc) {
                            *x += y;
                        }
                        *asum += bsum;
                        *an += bn;
                        *ar += br;
                    }
                    (
                        MetricData::Log2 {
                            counts: ac,
                            sum: asum,
                            count: an,
                        },
                        MetricData::Log2 {
                            counts: bc,
                            sum: bsum,
                            count: bn,
                        },
                    ) => {
                        for (x, y) in ac.iter_mut().zip(bc) {
                            *x += y;
                        }
                        *asum += bsum;
                        *an += bn;
                    }
                    _ => panic!(
                        "metric {:?} has incompatible kinds across snapshots",
                        ours.name
                    ),
                },
            }
        }
        for theirs in &other.spans {
            match self.spans.iter_mut().find(|s| s.path == theirs.path) {
                None => self.spans.push(theirs.clone()),
                Some(ours) => {
                    ours.count += theirs.count;
                    ours.total_ns += theirs.total_ns;
                    ours.self_ns += theirs.self_ns;
                }
            }
        }
        self.metrics
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.spans.sort_by(|a, b| a.path.cmp(&b.path));
    }

    /// The value of an unlabeled counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.name == name && m.labels.is_empty())
            .and_then(|m| match &m.data {
                MetricData::Counter { value } => Some(*value),
                _ => None,
            })
    }

    /// The aggregated span row whose leaf name is `name` summed over
    /// every path it appears on (`None` when never recorded).
    pub fn span(&self, name: &str) -> Option<SpanRow> {
        let mut acc: Option<SpanRow> = None;
        for row in self.spans.iter().filter(|s| s.name() == name) {
            match &mut acc {
                None => {
                    acc = Some(SpanRow {
                        path: name.to_string(),
                        count: row.count,
                        total_ns: row.total_ns,
                        self_ns: row.self_ns,
                    })
                }
                Some(a) => {
                    a.count += row.count;
                    a.total_ns += row.total_ns;
                    a.self_ns += row.self_ns;
                }
            }
        }
        acc
    }

    /// An upper bound on the `q`-quantile (0..=1) of an unlabeled
    /// histogram metric: the smallest bucket boundary whose cumulative
    /// count reaches `q * count`. Returns `None` for empty or missing
    /// histograms; samples beyond the last bound yield infinity
    /// (fixed-bucket) or the next power of two (log2).
    pub fn quantile(&self, name: &str, q: f64) -> Option<f64> {
        let m = self
            .metrics
            .iter()
            .find(|m| m.name == name && m.labels.is_empty())?;
        match &m.data {
            MetricData::Histogram {
                bounds,
                counts,
                count,
                ..
            } => {
                if *count == 0 {
                    return None;
                }
                let target = (q.clamp(0.0, 1.0) * *count as f64).ceil().max(1.0) as u64;
                let mut cum = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    cum += c;
                    if cum >= target {
                        return Some(bounds.get(i).copied().unwrap_or(f64::INFINITY));
                    }
                }
                Some(f64::INFINITY)
            }
            MetricData::Log2 { counts, count, .. } => {
                if *count == 0 {
                    return None;
                }
                let target = (q.clamp(0.0, 1.0) * *count as f64).ceil().max(1.0) as u64;
                let mut cum = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    cum += c;
                    if cum >= target {
                        return Some((1u128 << i) as f64);
                    }
                }
                Some(f64::INFINITY)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_fold_across_stripes_and_threads() {
        let t = Telemetry::new();
        let c = t.counter("gpm_test_total");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(t.snapshot().counter("gpm_test_total"), Some(8000));
    }

    #[test]
    fn histogram_buckets_sum_and_reject() {
        let t = Telemetry::new();
        let h = t.histogram("gpm_lat_seconds", &[0.1, 1.0]);
        for v in [0.05, 0.5, 5.0, -3.0] {
            h.record(v);
        }
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        let snap = t.snapshot();
        let m = &snap.metrics[0];
        match &m.data {
            MetricData::Histogram {
                counts,
                count,
                rejected,
                sum,
                ..
            } => {
                assert_eq!(counts, &vec![2, 1, 1]);
                assert_eq!(*count, 4);
                assert_eq!(*rejected, 2);
                assert!((sum - 2.55).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn log2_histogram_buckets_by_bit_width() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(1023), 10);
        assert_eq!(log2_bucket(u64::MAX), 63);
        let t = Telemetry::new();
        let h = t.log2_histogram("gpm_span_ns");
        h.record(900);
        h.record(1100);
        let q = t.snapshot().quantile("gpm_span_ns", 0.99).unwrap();
        assert_eq!(q, 2048.0);
    }

    #[test]
    fn gauge_keeps_last_level() {
        let t = Telemetry::new();
        let g = t.gauge("gpm_depth");
        g.set(3.0);
        g.set(7.0);
        match &t.snapshot().metrics[0].data {
            MetricData::Gauge { value, samples } => {
                assert_eq!(*value, 7.0);
                assert_eq!(*samples, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn interning_returns_the_same_entry_and_id() {
        let t = Telemetry::new();
        let a = t.counter_with("gpm_jobs_total", &[("shard", "3")]);
        let b = t.counter_with("gpm_jobs_total", &[("shard", "3")]);
        a.inc();
        b.inc();
        let id = t.metric_id("gpm_jobs_total", &[("shard", "3")]).unwrap();
        assert_eq!(id, MetricId(0));
        assert!(t.metric_id("gpm_jobs_total", &[]).is_none());
        let snap = t.snapshot();
        assert_eq!(snap.metrics.len(), 1);
        match snap.metrics[0].data {
            MetricData::Counter { value } => assert_eq!(value, 2),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let t = Telemetry::new();
        let _ = t.counter("gpm_thing");
        let _ = t.gauge("gpm_thing");
    }

    #[test]
    #[should_panic(expected = "not a valid Prometheus identifier")]
    fn invalid_names_are_rejected() {
        let _ = Telemetry::new().counter("0bad name");
    }

    #[test]
    fn merge_adds_counters_histograms_and_spans() {
        let a = Telemetry::new();
        a.counter("gpm_x_total").add(2);
        a.histogram("gpm_h", &[1.0]).record(0.5);
        let b = Telemetry::new();
        b.counter("gpm_x_total").add(3);
        b.counter("gpm_y_total").add(1);
        b.histogram("gpm_h", &[1.0]).record(2.0);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter("gpm_x_total"), Some(5));
        assert_eq!(m.counter("gpm_y_total"), Some(1));
        match &m.metrics.iter().find(|v| v.name == "gpm_h").unwrap().data {
            MetricData::Histogram { counts, count, .. } => {
                assert_eq!(counts, &vec![1, 1]);
                assert_eq!(*count, 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let t = Telemetry::new();
        t.counter_with("gpm_jobs_total", &[("shard", "0")]).add(4);
        t.histogram("gpm_lat", &[0.5]).record(0.1);
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn quantile_reads_bucket_upper_bounds() {
        let t = Telemetry::new();
        let h = t.histogram("gpm_lat", &[0.001, 0.01, 0.1]);
        for _ in 0..98 {
            h.record(0.0005);
        }
        h.record(0.05);
        h.record(0.05);
        let snap = t.snapshot();
        assert_eq!(snap.quantile("gpm_lat", 0.5), Some(0.001));
        assert_eq!(snap.quantile("gpm_lat", 0.99), Some(0.1));
        assert_eq!(snap.quantile("gpm_missing", 0.99), None);
    }
}
