//! Microbenchmark for the telemetry primitives' unit costs.
//!
//! Prints the per-operation cost of a span guard (open + close), a
//! counter increment through a pre-registered handle, a bare
//! `Instant::now()` (two of which are the hard floor under every span),
//! and an *inert* span — the free-function guard on a thread with no
//! registry entered, which is what uninstrumented library callers pay.
//!
//! These are the numbers behind the overhead budget discussion in
//! `docs/TELEMETRY.md`; the end-to-end gate lives in the
//! `telemetry_overhead` bench binary. Run with `--release`.

use gpm_telemetry::{span, Telemetry};
use std::time::Instant;

fn per_op(n: u64, f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos() as f64 / n as f64
}

fn main() {
    let t = Telemetry::new();
    let enter = t.enter();
    // Warm-up registers the span names and the thread slot, so the
    // timed loops measure the steady state.
    for _ in 0..10_000 {
        let _s = span("hot");
    }

    let n = 2_000_000u64;
    let hot = per_op(n, || {
        for _ in 0..n {
            let _s = span("hot");
        }
    });
    println!("span open+close   : {hot:.1} ns");

    let c = t.counter("guard_cost_iters_total");
    let inc = per_op(n, || {
        for _ in 0..n {
            c.inc();
        }
    });
    println!("counter inc       : {inc:.1} ns");

    let now = per_op(n, || {
        for _ in 0..n {
            std::hint::black_box(Instant::now());
        }
    });
    println!("Instant::now      : {now:.1} ns (x2 = span floor)");

    drop(enter);
    let inert = per_op(n, || {
        for _ in 0..n {
            let _s = span("hot");
        }
    });
    println!("inert span        : {inert:.1} ns (no registry entered)");
}
