//! Power-management governors: the baselines the paper's MPC scheme is
//! measured against.
//!
//! * [`TurboCore`] — the state-of-the-practice shipping policy
//!   (Section V-B): boost everything while package power stays under TDP,
//!   shifting power away from the CPU when it does not.
//! * [`PpkGovernor`] — *Predict Previous Kernel*, the paper's idealization
//!   of state-of-the-art history-based schemes: assume the next kernel
//!   equals the last one and pick its predicted energy-optimal
//!   configuration under the running throughput constraint (Eq. 2).
//! * [`to`] — the *Theoretically Optimal* scheme: full-knowledge,
//!   offline multiple-choice-knapsack solution (minimum energy subject to
//!   the end-to-end throughput target), used as the limit in Figures 4
//!   and 12.
//! * [`Equalizer`] — a reactive counter-driven tuner in the style of
//!   Sethia & Mahlke's Equalizer (related work the paper contrasts with).
//! * [`FixedGovernor`] / [`PlannedGovernor`] — building blocks for sweeps
//!   (Figure 2) and for replaying precomputed plans.
//!
//! All governors implement [`Governor`], the interface the experiment
//! harness drives: `select` a configuration before each kernel launch,
//! `observe` the outcome after it retires.

pub mod equalizer;
pub mod fixed;
pub mod governor;
pub mod ppk;
pub mod search;
pub mod static_best;
pub mod to;
pub mod turbocore;

pub use equalizer::{Equalizer, EqualizerMode};
pub use fixed::{FixedGovernor, PlannedGovernor};
pub use governor::{Governor, GovernorDecision, KernelContext, OverheadModel, PerfTarget};
pub use ppk::PpkGovernor;
pub use static_best::{plan_static_best, static_best_governor};
pub use to::{plan_optimal, ToPlan, ToSolver};
pub use turbocore::TurboCore;
