//! Configuration-search primitives shared by PPK and MPC.
//!
//! Both policies repeatedly answer the same sub-question: *given a kernel
//! snapshot and a time cap, which configuration minimizes predicted chip
//! energy?* [`EnergyEvaluator`] turns predictor output into a chip-energy
//! estimate (predicted GPU power, plus the `V²f` CPU busy-wait model and
//! constant background power, integrated over predicted time);
//! [`exhaustive_best`] and [`hill_climb`] are the two search strategies —
//! the latter is the paper's greedy knob-by-knob optimizer with its
//! `Σ|knob|` (≈19× cheaper) evaluation budget.

use crate::governor::PerfTarget;
use gpm_hw::{ConfigSpace, HwConfig, Knob, KnobDirection};
use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
use gpm_sim::SimParams;
use gpm_trace::KnobVisits;
use serde::{Deserialize, Serialize};

/// Telemetry of one search invocation: how many candidates were priced,
/// where the greedy walk spent them, and how many were rejected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Predictor evaluations performed (cache misses only).
    pub evaluations: u64,
    /// Candidate configurations visited per knob.
    pub visits: KnobVisits,
    /// Candidates evaluated and rejected — an energy increase or a time-cap
    /// violation ended the sweep there (the pruned branches of the climb).
    pub pruned: u64,
    /// Estimates rejected as anomalous (non-finite or outside the
    /// plausibility envelope) — a corrupted predictor or stale input.
    pub anomalies: u64,
}

impl SearchStats {
    /// Adds another invocation's counters into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.evaluations += other.evaluations;
        self.visits.merge(&other.visits);
        self.pruned += other.pruned;
        self.anomalies += other.anomalies;
    }
}

/// Any predicted kernel time above this is treated as a prediction
/// anomaly: the suite's kernels run in microseconds to seconds, so hours
/// can only come from a corrupted estimate.
pub const PLAUSIBLE_MAX_TIME_S: f64 = 1e4;

/// Any predicted chip power above this is treated as a prediction
/// anomaly — two orders of magnitude above the part's TDP.
pub const PLAUSIBLE_MAX_POWER_W: f64 = 1e3;

/// A fully evaluated candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigEstimate {
    /// The candidate configuration.
    pub config: HwConfig,
    /// Predicted kernel execution time, seconds.
    pub time_s: f64,
    /// Predicted chip power (GPU domain + CPU busy-wait + background),
    /// watts.
    pub chip_power_w: f64,
    /// Predicted chip energy over the kernel, joules.
    pub energy_j: f64,
}

impl ConfigEstimate {
    /// Anomaly detection: whether the estimate is finite and inside the
    /// physically plausible envelope. Searches reject candidates failing
    /// this check instead of letting a corrupted predictor steer the
    /// governor toward a nonsense configuration.
    pub fn is_plausible(&self) -> bool {
        self.time_s.is_finite()
            && self.time_s > 0.0
            && self.time_s <= PLAUSIBLE_MAX_TIME_S
            && self.chip_power_w.is_finite()
            && self.chip_power_w >= 0.0
            && self.chip_power_w <= PLAUSIBLE_MAX_POWER_W
            && self.energy_j.is_finite()
    }
}

/// Turns predictor output into chip-energy estimates.
///
/// # Examples
///
/// ```
/// use gpm_governors::search::EnergyEvaluator;
/// use gpm_hw::HwConfig;
/// use gpm_sim::{ApuSimulator, KernelCharacteristics, OraclePredictor, SimParams};
/// use gpm_sim::predictor::KernelSnapshot;
///
/// let sim = ApuSimulator::noiseless();
/// let k = KernelCharacteristics::compute_bound("k", 10.0);
/// let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
/// let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k);
///
/// let oracle = OraclePredictor::new(&sim);
/// let eval = EnergyEvaluator::new(&oracle, SimParams::noiseless());
/// let est = eval.estimate(&snap, HwConfig::FAIL_SAFE);
/// assert!(est.energy_j > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyEvaluator<P> {
    predictor: P,
    params: SimParams,
}

impl<P: PowerPerfPredictor> EnergyEvaluator<P> {
    /// Couples a predictor with the CPU/background power model parameters.
    pub fn new(predictor: P, params: SimParams) -> EnergyEvaluator<P> {
        EnergyEvaluator { predictor, params }
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Constant non-CPU, non-GPU power charged per second of kernel time.
    pub fn background_w(&self) -> f64 {
        self.params.soc_other_w + self.params.dram_static_w
    }

    /// Predicts time, power, and energy of `snapshot`'s kernel at `cfg`.
    pub fn estimate(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> ConfigEstimate {
        let est = self.predictor.predict(snapshot, cfg);
        let cpu_w = gpm_sim::power::cpu_busywait_power(&self.params, cfg.cpu);
        let chip_power_w = est.gpu_power_w + cpu_w + self.background_w();
        ConfigEstimate {
            config: cfg,
            time_s: est.time_s,
            chip_power_w,
            energy_j: chip_power_w * est.time_s,
        }
    }

    /// Prices a whole candidate sweep in one predictor call, writing the
    /// estimates into `out` (cleared and refilled, index-aligned with
    /// `cfgs`).
    ///
    /// Each element is bit-identical to
    /// [`estimate`](EnergyEvaluator::estimate) on the same configuration:
    /// the batch goes through
    /// [`PowerPerfPredictor::predict_batch`], whose contract requires
    /// value-identity with the scalar path.
    pub fn estimate_batch(
        &self,
        snapshot: &KernelSnapshot,
        cfgs: &[HwConfig],
        out: &mut Vec<ConfigEstimate>,
    ) {
        PREDICT_SCRATCH.with(|scratch| {
            let raw = &mut *scratch.borrow_mut();
            self.predictor.predict_batch(snapshot, cfgs, raw);
            out.clear();
            out.extend(raw.iter().zip(cfgs).map(|(est, &cfg)| {
                let cpu_w = gpm_sim::power::cpu_busywait_power(&self.params, cfg.cpu);
                let chip_power_w = est.gpu_power_w + cpu_w + self.background_w();
                ConfigEstimate {
                    config: cfg,
                    time_s: est.time_s,
                    chip_power_w,
                    energy_j: chip_power_w * est.time_s,
                }
            }));
        });
    }
}

thread_local! {
    /// Reused raw-prediction buffer behind [`EnergyEvaluator::estimate_batch`].
    static PREDICT_SCRATCH: std::cell::RefCell<Vec<gpm_sim::PowerPerfEstimate>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Reused (candidates, estimates) buffers behind [`exhaustive_best`].
    static EXHAUSTIVE_SCRATCH: std::cell::RefCell<(Vec<HwConfig>, Vec<ConfigEstimate>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// Exhaustively searches `space` for the minimum-energy configuration whose
/// predicted time fits `time_cap_s`. Returns the winner (if any
/// configuration is feasible) and the number of predictor evaluations.
pub fn exhaustive_best<P: PowerPerfPredictor>(
    eval: &EnergyEvaluator<P>,
    snapshot: &KernelSnapshot,
    space: &ConfigSpace,
    time_cap_s: f64,
) -> (Option<ConfigEstimate>, u64) {
    let _span = gpm_telemetry::span("search.exhaustive");
    // The candidate set is fixed up front, so the whole space is priced in
    // one batched predictor call; the feasibility scan then walks the
    // estimates in the same order (and with the same comparisons) as the
    // seed per-candidate loop, so the winner is unchanged.
    EXHAUSTIVE_SCRATCH.with(|scratch| {
        let (cfgs, estimates) = &mut *scratch.borrow_mut();
        cfgs.clear();
        cfgs.extend(space.iter());
        eval.estimate_batch(snapshot, cfgs, estimates);
        let mut best: Option<ConfigEstimate> = None;
        for est in estimates.iter() {
            if est.is_plausible()
                && est.time_s <= time_cap_s
                && best.is_none_or(|b| est.energy_j < b.energy_j)
            {
                best = Some(*est);
            }
        }
        (best, cfgs.len() as u64)
    })
}

/// The paper's greedy hill-climbing optimizer (Section IV-A1a).
///
/// Starting from `start` (normally the fail-safe configuration), the
/// algorithm first estimates each knob's *energy sensitivity* — the
/// predicted energy change for a one-step move toward lower power — and
/// orders knobs by decreasing sensitivity. It then sweeps each knob in
/// turn, stepping down while predicted energy keeps decreasing and the
/// time cap stays satisfied, stopping at the first energy increase.
///
/// Returns the best feasible estimate found (`None` when even `start`
/// violates the cap) and the number of predictor evaluations — bounded by
/// roughly `Σ|knob|` per the paper's 19×-cheaper-than-exhaustive claim.
pub fn hill_climb<P: PowerPerfPredictor>(
    eval: &EnergyEvaluator<P>,
    snapshot: &KernelSnapshot,
    start: HwConfig,
    time_cap_s: f64,
) -> (Option<ConfigEstimate>, u64) {
    let (best, stats) = hill_climb_stats(eval, snapshot, start, time_cap_s);
    (best, stats.evaluations)
}

/// Dense per-candidate memo backing [`hill_climb_with_memo`]: one slot
/// per point of the full [`HwConfig::DENSE_COUNT`] lattice, stamped with
/// an epoch so a new search invalidates every entry in O(1) without
/// releasing the allocation.
///
/// Semantically the memo is scoped to **one search invocation** — entries
/// never survive into the next search (each entry's epoch stamp sees to
/// that), so reusing one memo across horizon steps or decisions changes
/// nothing but allocation traffic. The seed implementation allocated a
/// fresh `HashMap` per invocation; governors now hoist one `EvalMemo` and
/// hand it to every climb.
#[derive(Debug, Clone)]
pub struct EvalMemo {
    epoch: u32,
    slots: Vec<(u32, ConfigEstimate)>,
}

impl EvalMemo {
    /// A memo with every slot vacant.
    pub fn new() -> EvalMemo {
        let placeholder = ConfigEstimate {
            config: HwConfig::FAIL_SAFE,
            time_s: 0.0,
            chip_power_w: 0.0,
            energy_j: 0.0,
        };
        EvalMemo {
            epoch: 0,
            slots: vec![(0, placeholder); HwConfig::DENSE_COUNT],
        }
    }

    /// Starts a new search scope: every slot becomes vacant, the
    /// allocation stays.
    fn begin(&mut self) {
        if self.epoch == u32::MAX {
            self.epoch = 0;
            for slot in &mut self.slots {
                slot.0 = 0;
            }
        }
        self.epoch += 1;
    }
}

impl Default for EvalMemo {
    fn default() -> EvalMemo {
        EvalMemo::new()
    }
}

/// [`hill_climb`] with full per-knob telemetry: identical search, but also
/// reports where the candidate budget went ([`SearchStats`]).
pub fn hill_climb_stats<P: PowerPerfPredictor>(
    eval: &EnergyEvaluator<P>,
    snapshot: &KernelSnapshot,
    start: HwConfig,
    time_cap_s: f64,
) -> (Option<ConfigEstimate>, SearchStats) {
    hill_climb_with_memo(eval, snapshot, start, time_cap_s, &mut EvalMemo::new())
}

/// [`hill_climb_stats`] against a caller-provided [`EvalMemo`], the form
/// the governors' hot paths use so repeated climbs within and across
/// decisions reuse one allocation.
///
/// The memo is re-scoped on entry, so results and evaluation counts are
/// identical to [`hill_climb_stats`] regardless of what the memo saw
/// before — `SearchStats::evaluations` still counts exactly the cache
/// misses of *this* invocation (the count the overhead model charges).
pub fn hill_climb_with_memo<P: PowerPerfPredictor>(
    eval: &EnergyEvaluator<P>,
    snapshot: &KernelSnapshot,
    start: HwConfig,
    time_cap_s: f64,
    memo: &mut EvalMemo,
) -> (Option<ConfigEstimate>, SearchStats) {
    // Deliberately span-free: callers climb once per *window position*,
    // several times per decision, and a guard here would dominate the
    // climb itself. The `search.hill_climb` phase span lives at the
    // per-decision call sites (window optimization, PPK selection).
    let mut evals = 0u64;
    let mut visits = KnobVisits::default();
    let mut pruned = 0u64;
    let mut anomalies = 0u64;
    memo.begin();
    let epoch = memo.epoch;
    let slots = &mut memo.slots;
    let mut estimate = |cfg: HwConfig| {
        let slot = &mut slots[cfg.dense_index()];
        if slot.0 != epoch {
            evals += 1;
            *slot = (epoch, eval.estimate(snapshot, cfg));
        }
        slot.1
    };

    let current = estimate(start);
    if !current.is_plausible() || current.time_s > time_cap_s {
        if !current.is_plausible() {
            anomalies += 1;
        }
        let stats = SearchStats {
            evaluations: evals,
            visits,
            pruned,
            anomalies,
        };
        return (None, stats);
    }
    let mut current = current;

    // Energy sensitivity per knob: the larger of the energy deltas of a
    // one-step move in either direction.
    let mut sensitivities: Vec<(Knob, f64)> = Knob::ALL
        .iter()
        .map(|&knob| {
            let delta = [KnobDirection::Down, KnobDirection::Up]
                .iter()
                .filter_map(|&dir| knob.step(current.config, dir))
                .map(|cfg| {
                    visits.bump(knob);
                    let est = estimate(cfg);
                    if !est.is_plausible() {
                        // An anomalous probe makes the knob look maximally
                        // unattractive rather than steering the ordering.
                        anomalies += 1;
                        return f64::NEG_INFINITY;
                    }
                    current.energy_j - est.energy_j
                })
                .fold(f64::NEG_INFINITY, f64::max);
            (knob, delta)
        })
        .collect();
    sensitivities.sort_by(|a, b| b.1.total_cmp(&a.1));

    for (knob, _) in sensitivities {
        // Pick the direction whose first feasible step decreases energy,
        // then keep climbing in that direction while it pays off.
        for dir in [KnobDirection::Down, KnobDirection::Up] {
            let Some(first_cfg) = knob.step(current.config, dir) else {
                continue;
            };
            visits.bump(knob);
            let first = estimate(first_cfg);
            if !first.is_plausible() {
                anomalies += 1;
                pruned += 1;
                continue;
            }
            if !(first.energy_j < current.energy_j && first.time_s <= time_cap_s) {
                pruned += 1;
                continue;
            }
            current = first;
            while let Some(next_cfg) = knob.step(current.config, dir) {
                visits.bump(knob);
                let next = estimate(next_cfg);
                if !next.is_plausible() {
                    anomalies += 1;
                    pruned += 1;
                    break;
                }
                if next.energy_j < current.energy_j && next.time_s <= time_cap_s {
                    current = next;
                } else {
                    pruned += 1;
                    break;
                }
            }
            break;
        }
    }
    let stats = SearchStats {
        evaluations: evals,
        visits,
        pruned,
        anomalies,
    };
    (Some(current), stats)
}

/// Convenience: the Eq. 5 time cap for the next kernel, given the target
/// and running sums. Negative caps mean no configuration can satisfy the
/// constraint (the caller should fail safe).
pub fn next_kernel_time_cap(
    target: &PerfTarget,
    elapsed_gi: f64,
    elapsed_kernel_s: f64,
    expected_gi: f64,
) -> f64 {
    target.time_cap(elapsed_gi, elapsed_kernel_s, expected_gi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_sim::{ApuSimulator, KernelCharacteristics, OraclePredictor};

    fn setup(kernel: KernelCharacteristics) -> (EnergyEvaluator<OraclePredictor>, KernelSnapshot) {
        let sim = ApuSimulator::noiseless();
        let out = sim.evaluate(&kernel, HwConfig::FAIL_SAFE);
        let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, kernel);
        let eval = EnergyEvaluator::new(OraclePredictor::new(&sim), SimParams::noiseless());
        (eval, snap)
    }

    #[test]
    fn exhaustive_respects_time_cap() {
        let (eval, snap) = setup(KernelCharacteristics::compute_bound("cb", 20.0));
        let space = ConfigSpace::paper_campaign();
        let fastest = space
            .iter()
            .map(|c| eval.estimate(&snap, c).time_s)
            .fold(f64::INFINITY, f64::min);
        let (best, evals) = exhaustive_best(&eval, &snap, &space, fastest * 1.2);
        assert_eq!(evals, 336);
        let best = best.unwrap();
        assert!(best.time_s <= fastest * 1.2);
    }

    #[test]
    fn exhaustive_finds_global_minimum() {
        let (eval, snap) = setup(KernelCharacteristics::memory_bound("mb", 1.0));
        let space = ConfigSpace::paper_campaign();
        let (best, _) = exhaustive_best(&eval, &snap, &space, f64::INFINITY);
        let best = best.unwrap();
        for cfg in &space {
            assert!(eval.estimate(&snap, cfg).energy_j >= best.energy_j - 1e-12);
        }
    }

    #[test]
    fn exhaustive_infeasible_returns_none() {
        let (eval, snap) = setup(KernelCharacteristics::compute_bound("cb", 20.0));
        let space = ConfigSpace::paper_campaign();
        let (best, _) = exhaustive_best(&eval, &snap, &space, 1e-12);
        assert!(best.is_none());
    }

    #[test]
    fn hill_climb_improves_on_start_and_stays_feasible() {
        let (eval, snap) = setup(KernelCharacteristics::unscalable("us", 0.02));
        let start = HwConfig::FAIL_SAFE;
        let start_est = eval.estimate(&snap, start);
        let cap = start_est.time_s * 1.3;
        let (best, evals) = hill_climb(&eval, &snap, start, cap);
        let best = best.unwrap();
        assert!(best.energy_j <= start_est.energy_j);
        assert!(best.time_s <= cap);
        // The 19× claim: far fewer evaluations than the 336-point space.
        assert!(evals <= 40, "hill climb used {evals} evaluations");
    }

    #[test]
    fn hill_climb_with_infinite_cap_approaches_exhaustive() {
        // For an unscalable kernel the energy landscape is monotone along
        // each knob, so greedy descent should land at or near the global
        // optimum.
        let (eval, snap) = setup(KernelCharacteristics::unscalable("us", 0.02));
        let space = ConfigSpace::full();
        let (exh, _) = exhaustive_best(&eval, &snap, &space, f64::INFINITY);
        let (hc, _) = hill_climb(&eval, &snap, HwConfig::FAIL_SAFE, f64::INFINITY);
        let ratio = hc.unwrap().energy_j / exh.unwrap().energy_j;
        assert!(ratio < 1.25, "hill climb {ratio}× worse than exhaustive");
    }

    #[test]
    fn hill_climb_infeasible_start_returns_none() {
        let (eval, snap) = setup(KernelCharacteristics::compute_bound("cb", 20.0));
        let (best, evals) = hill_climb(&eval, &snap, HwConfig::FAIL_SAFE, 1e-12);
        assert!(best.is_none());
        assert_eq!(evals, 1);
    }

    #[test]
    fn hill_climb_stats_matches_hill_climb_and_counts_visits() {
        let (eval, snap) = setup(KernelCharacteristics::unscalable("us", 0.02));
        let start = HwConfig::FAIL_SAFE;
        let cap = eval.estimate(&snap, start).time_s * 1.3;
        let (best_a, evals) = hill_climb(&eval, &snap, start, cap);
        let (best_b, stats) = hill_climb_stats(&eval, &snap, start, cap);
        assert_eq!(
            best_a, best_b,
            "telemetry variant changed the search result"
        );
        assert_eq!(evals, stats.evaluations);
        // Every knob's sensitivity probe visits at least one candidate.
        assert!(stats.visits.cpu_pstate > 0);
        assert!(stats.visits.nb_state > 0);
        assert!(stats.visits.gpu_dpm > 0);
        assert!(stats.visits.cu_count > 0);
        // Visits may revisit cached candidates, so they bound evaluations.
        assert!(stats.visits.total() + 1 >= stats.evaluations);
    }

    #[test]
    fn hill_climb_stats_infeasible_reports_no_visits() {
        let (eval, snap) = setup(KernelCharacteristics::compute_bound("cb", 20.0));
        let (best, stats) = hill_climb_stats(&eval, &snap, HwConfig::FAIL_SAFE, 1e-12);
        assert!(best.is_none());
        assert_eq!(stats.evaluations, 1);
        assert_eq!(stats.visits.total(), 0);
        assert_eq!(stats.pruned, 0);
    }

    #[test]
    fn estimate_batch_matches_scalar_estimates() {
        let (eval, snap) = setup(KernelCharacteristics::memory_bound("mb", 1.0));
        let cfgs: Vec<HwConfig> = ConfigSpace::paper_campaign().iter().collect();
        let mut batch = Vec::new();
        eval.estimate_batch(&snap, &cfgs, &mut batch);
        assert_eq!(batch.len(), cfgs.len());
        for (est, &cfg) in batch.iter().zip(&cfgs) {
            assert_eq!(*est, eval.estimate(&snap, cfg), "{cfg}");
        }
    }

    #[test]
    fn memo_reuse_is_invisible_to_results_and_counts() {
        // One memo reused across climbs with different snapshots, caps, and
        // starts must reproduce the fresh-memo results and evaluation
        // counts exactly — stale entries never leak across searches.
        let mut memo = EvalMemo::new();
        for kernel in [
            KernelCharacteristics::unscalable("us", 0.02),
            KernelCharacteristics::memory_bound("mb", 1.0),
            KernelCharacteristics::compute_bound("cb", 20.0),
        ] {
            let (eval, snap) = setup(kernel);
            for cap_scale in [1.1, 1.5, f64::INFINITY] {
                let cap = eval.estimate(&snap, HwConfig::FAIL_SAFE).time_s * cap_scale;
                let (fresh_best, fresh_stats) =
                    hill_climb_stats(&eval, &snap, HwConfig::FAIL_SAFE, cap);
                let (reused_best, reused_stats) =
                    hill_climb_with_memo(&eval, &snap, HwConfig::FAIL_SAFE, cap, &mut memo);
                assert_eq!(fresh_best, reused_best);
                assert_eq!(fresh_stats, reused_stats);
            }
        }
    }

    #[test]
    fn memo_epoch_overflow_resets_cleanly() {
        let (eval, snap) = setup(KernelCharacteristics::unscalable("us", 0.02));
        let mut memo = EvalMemo::new();
        memo.epoch = u32::MAX - 1;
        let cap = f64::INFINITY;
        let (a, stats_a) = hill_climb_with_memo(&eval, &snap, HwConfig::FAIL_SAFE, cap, &mut memo);
        let (b, stats_b) = hill_climb_with_memo(&eval, &snap, HwConfig::FAIL_SAFE, cap, &mut memo);
        let (c, stats_c) = hill_climb_with_memo(&eval, &snap, HwConfig::FAIL_SAFE, cap, &mut memo);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(stats_a, stats_b);
        assert_eq!(stats_b, stats_c);
    }

    /// Oracle that returns a corrupted estimate at one configuration.
    #[derive(Debug)]
    struct PoisonedPredictor {
        inner: OraclePredictor,
        poison: HwConfig,
    }

    impl PowerPerfPredictor for PoisonedPredictor {
        fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> gpm_sim::PowerPerfEstimate {
            if cfg == self.poison {
                return gpm_sim::PowerPerfEstimate {
                    time_s: f64::NAN,
                    gpu_power_w: 1e9,
                };
            }
            self.inner.predict(snapshot, cfg)
        }
    }

    fn poisoned_setup(poison: HwConfig) -> (EnergyEvaluator<PoisonedPredictor>, KernelSnapshot) {
        let sim = ApuSimulator::noiseless();
        let kernel = KernelCharacteristics::unscalable("us", 0.02);
        let out = sim.evaluate(&kernel, HwConfig::FAIL_SAFE);
        let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, kernel);
        let predictor = PoisonedPredictor {
            inner: OraclePredictor::new(&sim),
            poison,
        };
        (
            EnergyEvaluator::new(predictor, SimParams::noiseless()),
            snap,
        )
    }

    #[test]
    fn anomalous_start_estimate_fails_safe() {
        let (eval, snap) = poisoned_setup(HwConfig::FAIL_SAFE);
        let (best, stats) = hill_climb_stats(&eval, &snap, HwConfig::FAIL_SAFE, f64::INFINITY);
        assert!(best.is_none());
        assert_eq!(stats.anomalies, 1);
    }

    #[test]
    fn anomalous_candidates_are_rejected_mid_climb() {
        // Poison a non-start configuration: the climb must complete with a
        // plausible result and count the anomaly instead of absorbing NaN.
        let mut poison = HwConfig::FAIL_SAFE;
        poison.nb = gpm_hw::NbState::Nb3;
        let (eval, snap) = poisoned_setup(poison);
        let (best, stats) = hill_climb_stats(&eval, &snap, HwConfig::FAIL_SAFE, f64::INFINITY);
        let best = best.expect("climb survives a poisoned candidate");
        assert!(best.is_plausible());
        assert_ne!(best.config, poison);
        assert!(stats.anomalies >= 1);
    }

    #[test]
    fn exhaustive_skips_anomalous_estimates() {
        let poison = HwConfig::MAX_PERF;
        let (eval, snap) = poisoned_setup(poison);
        let space = ConfigSpace::paper_campaign();
        let (best, _) = exhaustive_best(&eval, &snap, &space, f64::INFINITY);
        let best = best.expect("335 clean candidates remain");
        assert!(best.is_plausible());
        assert_ne!(best.config, poison);
    }

    #[test]
    fn plausibility_rejects_corrupt_estimates() {
        let good = ConfigEstimate {
            config: HwConfig::FAIL_SAFE,
            time_s: 0.01,
            chip_power_w: 40.0,
            energy_j: 0.4,
        };
        assert!(good.is_plausible());
        for bad in [
            ConfigEstimate {
                time_s: f64::NAN,
                ..good
            },
            ConfigEstimate {
                time_s: -1.0,
                ..good
            },
            ConfigEstimate {
                time_s: PLAUSIBLE_MAX_TIME_S * 10.0,
                ..good
            },
            ConfigEstimate {
                chip_power_w: f64::INFINITY,
                ..good
            },
            ConfigEstimate {
                chip_power_w: PLAUSIBLE_MAX_POWER_W * 10.0,
                ..good
            },
            ConfigEstimate {
                energy_j: f64::NAN,
                ..good
            },
        ] {
            assert!(!bad.is_plausible(), "{bad:?}");
        }
    }

    #[test]
    fn estimate_includes_cpu_and_background_power() {
        let (eval, snap) = setup(KernelCharacteristics::compute_bound("cb", 20.0));
        let est = eval.estimate(&snap, HwConfig::FAIL_SAFE);
        let bare = eval.predictor().predict(&snap, HwConfig::FAIL_SAFE);
        assert!(est.chip_power_w > bare.gpu_power_w + eval.background_w());
        assert!((est.energy_j - est.chip_power_w * est.time_s).abs() < 1e-12);
    }

    #[test]
    fn lower_cpu_state_lowers_estimated_energy_for_gpu_kernel() {
        let (eval, snap) = setup(KernelCharacteristics::compute_bound("cb", 20.0));
        let hi = eval.estimate(&snap, HwConfig::MAX_PERF);
        let mut cfg = HwConfig::MAX_PERF;
        cfg.cpu = gpm_hw::CpuPState::P7;
        let lo = eval.estimate(&snap, cfg);
        assert!(lo.energy_j < hi.energy_j);
        // CPU state only stretches the host-side launch overhead, which is
        // tiny for a GPU-dominated kernel.
        assert!(
            (lo.time_s / hi.time_s - 1.0).abs() < 0.01,
            "CPU state moved kernel time"
        );
    }
}
