//! Static per-application configuration (the style of Wang et al., cited
//! by the paper as "statically optimized individual GPGPU kernels").
//!
//! One configuration is chosen offline for the *whole application* — the
//! minimum-energy single configuration whose total predicted time meets
//! the baseline budget — and never changed at runtime. The contrast with
//! kernel-level schemes quantifies the value of per-kernel adaptation.

use crate::fixed::FixedGovernor;
use crate::governor::Governor;
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_sim::{ApuSimulator, KernelCharacteristics};

/// Plans the best single configuration for an application: minimum total
/// energy subject to total kernel time ≤ `budget_s`, with perfect
/// (noiseless-model) knowledge.
///
/// Falls back to [`HwConfig::FAIL_SAFE`] when no single configuration
/// meets the budget.
pub fn plan_static_best(
    sim: &ApuSimulator,
    kernels: &[KernelCharacteristics],
    space: &ConfigSpace,
    budget_s: f64,
) -> HwConfig {
    let mut best: Option<(HwConfig, f64)> = None;
    for cfg in space {
        let (mut time, mut energy) = (0.0, 0.0);
        for k in kernels {
            let out = sim.evaluate_exact(k, cfg);
            time += out.time_s;
            energy += out.energy.total_j();
        }
        if time <= budget_s && best.is_none_or(|(_, be)| energy < be) {
            best = Some((cfg, energy));
        }
    }
    best.map(|(cfg, _)| cfg).unwrap_or(HwConfig::FAIL_SAFE)
}

/// A governor pinned to the statically planned configuration.
pub fn static_best_governor(
    sim: &ApuSimulator,
    kernels: &[KernelCharacteristics],
    space: &ConfigSpace,
    budget_s: f64,
) -> impl Governor {
    FixedGovernor::new(plan_static_best(sim, kernels, space, budget_s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to::plan_optimal;

    fn app() -> Vec<KernelCharacteristics> {
        vec![
            KernelCharacteristics::compute_bound("cb", 20.0),
            KernelCharacteristics::memory_bound("mb", 1.0),
            KernelCharacteristics::unscalable("us", 0.02),
        ]
    }

    fn budget(sim: &ApuSimulator, slack: f64) -> f64 {
        app()
            .iter()
            .map(|k| sim.evaluate_exact(k, HwConfig::MAX_PERF).time_s)
            .sum::<f64>()
            * slack
    }

    #[test]
    fn static_best_meets_its_budget() {
        let sim = ApuSimulator::noiseless();
        let space = ConfigSpace::paper_campaign();
        let b = budget(&sim, 1.2);
        let cfg = plan_static_best(&sim, &app(), &space, b);
        let total: f64 = app()
            .iter()
            .map(|k| sim.evaluate_exact(k, cfg).time_s)
            .sum();
        assert!(total <= b + 1e-9);
    }

    #[test]
    fn static_best_beats_max_perf_on_energy() {
        let sim = ApuSimulator::noiseless();
        let space = ConfigSpace::paper_campaign();
        let b = budget(&sim, 1.3);
        let cfg = plan_static_best(&sim, &app(), &space, b);
        let e_static: f64 = app()
            .iter()
            .map(|k| sim.evaluate_exact(k, cfg).energy.total_j())
            .sum();
        let e_max: f64 = app()
            .iter()
            .map(|k| sim.evaluate_exact(k, HwConfig::MAX_PERF).energy.total_j())
            .sum();
        assert!(e_static < e_max);
    }

    #[test]
    fn per_kernel_to_never_loses_to_static() {
        // Kernel-level adaptation strictly generalizes one static config.
        let sim = ApuSimulator::noiseless();
        let space = ConfigSpace::paper_campaign();
        let b = budget(&sim, 1.25);
        let static_cfg = plan_static_best(&sim, &app(), &space, b);
        let e_static: f64 = app()
            .iter()
            .map(|k| sim.evaluate_exact(k, static_cfg).energy.total_j())
            .sum();
        let plan = plan_optimal(&sim, &app(), &space, b);
        assert!(
            plan.energy_j <= e_static + 1e-6,
            "TO {} vs static {}",
            plan.energy_j,
            e_static
        );
    }

    #[test]
    fn impossible_budget_falls_back() {
        let sim = ApuSimulator::noiseless();
        let space = ConfigSpace::paper_campaign();
        let cfg = plan_static_best(&sim, &app(), &space, 1e-9);
        assert_eq!(cfg, HwConfig::FAIL_SAFE);
    }
}
