//! The governor interface and shared accounting types.

use crate::search::ConfigEstimate;
use gpm_faults::FaultInjector;
use gpm_hw::HwConfig;
use gpm_sim::{KernelCharacteristics, KernelOutcome};
use gpm_trace::TraceSink;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The application-level performance target (Eq. 1's right-hand side):
/// match the default Turbo Core run's end-to-end kernel throughput.
///
/// # Examples
///
/// ```
/// use gpm_governors::PerfTarget;
///
/// // 100 Ginstr over 10 s → 10 Ginstr/s target throughput.
/// let target = PerfTarget::new(100.0, 10.0);
/// assert_eq!(target.throughput(), 10.0);
/// // Eq. 5 headroom: with 50 Ginstr banked in 4 s and 10 more expected,
/// // the next kernel may take up to (50+10)/10 − 4 = 2 s.
/// let cap = target.time_cap(50.0, 4.0, 10.0);
/// assert!((cap - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfTarget {
    total_ginstructions: f64,
    total_time_s: f64,
}

impl PerfTarget {
    /// Target from the baseline run's totals.
    ///
    /// # Panics
    ///
    /// Panics if either total is non-positive.
    pub fn new(total_ginstructions: f64, total_time_s: f64) -> PerfTarget {
        assert!(
            total_ginstructions > 0.0,
            "instruction total must be positive"
        );
        assert!(total_time_s > 0.0, "time total must be positive");
        PerfTarget {
            total_ginstructions,
            total_time_s,
        }
    }

    /// Baseline total instructions (`I_total`), giga-instructions.
    pub fn total_ginstructions(&self) -> f64 {
        self.total_ginstructions
    }

    /// Baseline total kernel time (`T_total`), seconds.
    pub fn total_time_s(&self) -> f64 {
        self.total_time_s
    }

    /// Target throughput `I_total / T_total`, giga-instructions per second.
    pub fn throughput(&self) -> f64 {
        self.total_ginstructions / self.total_time_s
    }

    /// Eq. 5's execution-time headroom: the longest the next kernel may run
    /// while keeping cumulative throughput at or above target.
    ///
    /// `elapsed_gi`/`elapsed_s` are the retired kernels' instruction and
    /// time sums; `expected_gi` is the expected instruction count of the
    /// kernel being planned. Can be negative when performance debt has
    /// accumulated — no configuration satisfies the constraint then.
    pub fn time_cap(&self, elapsed_gi: f64, elapsed_s: f64, expected_gi: f64) -> f64 {
        (elapsed_gi + expected_gi) / self.throughput() - elapsed_s
    }

    /// Whether cumulative performance so far meets the target (Eq. 2's
    /// constraint evaluated at a prefix).
    pub fn met_by(&self, elapsed_gi: f64, elapsed_s: f64) -> bool {
        if elapsed_s <= 0.0 {
            return true;
        }
        elapsed_gi / elapsed_s >= self.throughput()
    }
}

/// Cost accounting for a governor's decision-making code, charged on the
/// host CPU between kernels (Section V runs it at `[P5, NB0, DPM0, 2 CUs]`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Wall-clock cost of one predictor evaluation, seconds. Calibrated so
    /// a hill-climbing pass (~18 evaluations) costs tens of microseconds,
    /// matching the paper's sub-percent adaptive-horizon overheads.
    pub per_eval_s: f64,
    /// Fixed cost per optimizer invocation (pattern lookup, bookkeeping),
    /// seconds.
    pub base_s: f64,
}

impl Default for OverheadModel {
    fn default() -> OverheadModel {
        OverheadModel {
            per_eval_s: 20.0e-6,
            base_s: 30.0e-6,
        }
    }
}

impl OverheadModel {
    /// Zero-cost model, for limit studies that exclude overheads.
    pub fn free() -> OverheadModel {
        OverheadModel {
            per_eval_s: 0.0,
            base_s: 0.0,
        }
    }

    /// Time charged for a decision that performed `evaluations` predictor
    /// calls.
    pub fn cost_s(&self, evaluations: u64) -> f64 {
        self.base_s + self.per_eval_s * evaluations as f64
    }
}

/// What the harness tells a governor before each kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelContext {
    /// 0-based position of the upcoming kernel within this application run.
    pub position: usize,
    /// 0-based index of the application invocation (0 = first/profiling).
    pub run_index: usize,
    /// Sum of retired kernel execution times this run, seconds
    /// (excluding optimizer overheads — the performance tracker reasons
    /// about kernel time; overheads are bounded separately).
    pub elapsed_kernel_s: f64,
    /// Sum of retired kernel instructions this run, giga-instructions.
    pub elapsed_gi: f64,
    /// The application-level performance target.
    pub target: PerfTarget,
    /// Total kernels in the application, if known (after profiling).
    pub total_kernels: Option<usize>,
}

/// A governor's answer: the configuration to run the next kernel at, plus
/// the decision's own cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorDecision {
    /// Hardware configuration for the upcoming kernel.
    pub config: HwConfig,
    /// Optimizer wall-clock overhead charged before the kernel, seconds.
    pub overhead_s: f64,
    /// Predictor evaluations performed (for search-cost accounting).
    pub evaluations: u64,
    /// Horizon length used, when the governor is horizon-based.
    pub horizon: Option<usize>,
    /// The search's estimate of the chosen configuration's behaviour,
    /// when one was produced — lets the harness trace signed prediction
    /// errors once the kernel retires. Purely observational: nothing
    /// downstream feeds it back into control.
    pub predicted: Option<ConfigEstimate>,
}

impl GovernorDecision {
    /// A zero-overhead decision (hardware default policies).
    pub fn instant(config: HwConfig) -> GovernorDecision {
        GovernorDecision {
            config,
            overhead_s: 0.0,
            evaluations: 0,
            horizon: None,
            predicted: None,
        }
    }
}

/// A kernel-granularity power-management policy.
///
/// The harness calls [`select`](Governor::select) before each kernel launch
/// and [`observe`](Governor::observe) after it retires;
/// [`end_run`](Governor::end_run) marks application-invocation boundaries
/// (the paper's schemes profile on the first invocation and exploit the
/// learned pattern afterwards).
pub trait Governor {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Chooses the configuration for the upcoming kernel.
    fn select(&mut self, ctx: &KernelContext) -> GovernorDecision;

    /// Feeds back the retired kernel's measured outcome. `truth` carries
    /// ground-truth characteristics only in oracle-predictor studies.
    fn observe(
        &mut self,
        ctx: &KernelContext,
        executed_at: HwConfig,
        outcome: &KernelOutcome,
        truth: Option<&KernelCharacteristics>,
    );

    /// Marks the end of an application invocation.
    fn end_run(&mut self) {}

    /// Installs a sink receiving the governor's *internal* decision
    /// telemetry (search statistics, fail-safe and pattern-misprediction
    /// triggers). Governors without internals ignore it — the harness
    /// emits dispatch/decision/outcome events for every governor
    /// regardless. Installing any sink must never change decisions.
    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        let _ = sink;
    }

    /// Installs a fault injector on the governor's *internal* state paths
    /// (e.g. the MPC pattern-store read path). Governors without
    /// injectable internals ignore it — the harness routes dispatch-level
    /// faults (transitions, throttling, observation corruption) itself.
    /// Installing a disabled injector must never change decisions.
    fn set_fault_injector(&mut self, faults: Arc<dyn FaultInjector>) {
        let _ = faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_cap() {
        let t = PerfTarget::new(200.0, 20.0);
        assert_eq!(t.throughput(), 10.0);
        // No history: cap is expected_gi / throughput.
        assert!((t.time_cap(0.0, 0.0, 30.0) - 3.0).abs() < 1e-12);
        // Ahead of target: extra headroom accrues.
        assert!(t.time_cap(100.0, 5.0, 10.0) > 10.0 / 10.0);
        // Behind target: cap can go negative.
        assert!(t.time_cap(10.0, 50.0, 1.0) < 0.0);
    }

    #[test]
    fn met_by_prefix() {
        let t = PerfTarget::new(100.0, 10.0);
        assert!(t.met_by(0.0, 0.0));
        assert!(t.met_by(50.0, 4.0));
        assert!(!t.met_by(50.0, 6.0));
    }

    #[test]
    #[should_panic(expected = "time total must be positive")]
    fn zero_time_target_panics() {
        let _ = PerfTarget::new(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "instruction total must be positive")]
    fn zero_instr_target_panics() {
        let _ = PerfTarget::new(0.0, 1.0);
    }

    #[test]
    fn overhead_model_costs() {
        let m = OverheadModel::default();
        assert!(m.cost_s(0) > 0.0);
        assert!((m.cost_s(18) - (m.base_s + 18.0 * m.per_eval_s)).abs() < 1e-15);
        assert_eq!(OverheadModel::free().cost_s(1000), 0.0);
    }

    #[test]
    fn instant_decision_is_free() {
        let d = GovernorDecision::instant(HwConfig::FAIL_SAFE);
        assert_eq!(d.overhead_s, 0.0);
        assert_eq!(d.evaluations, 0);
        assert_eq!(d.horizon, None);
    }
}
