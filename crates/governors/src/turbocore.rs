//! AMD Turbo Core baseline (Section V-B).
//!
//! Turbo Core is the shipping, state-of-the-practice policy: it runs every
//! domain at its boost state as long as the package stays within TDP, and
//! shifts power away from the CPU when it does not. During GPGPU offload
//! the CPU busy-waits, which keeps its utilization — and therefore its
//! DVFS request — high: "Turbo Core does not drop the CPU DVFS states as
//! long as the system stays within its TDP."

use crate::governor::{Governor, GovernorDecision, KernelContext};
use gpm_hw::{CpuPState, CuCount, GpuDpm, HwConfig, NbState};
use gpm_sim::{KernelCharacteristics, KernelOutcome};

/// The Turbo Core governor.
///
/// # Examples
///
/// ```
/// use gpm_governors::{Governor, TurboCore, KernelContext, PerfTarget};
///
/// let mut tc = TurboCore::new(95.0);
/// let ctx = KernelContext {
///     position: 0,
///     run_index: 0,
///     elapsed_kernel_s: 0.0,
///     elapsed_gi: 0.0,
///     target: PerfTarget::new(1.0, 1.0),
///     total_kernels: None,
/// };
/// let d = tc.select(&ctx);
/// assert_eq!(d.config.gpu, gpm_hw::GpuDpm::Dpm4);
/// assert_eq!(d.overhead_s, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct TurboCore {
    tdp_w: f64,
    cpu: CpuPState,
    /// Hysteresis: re-boost only when package power drops below this
    /// fraction of TDP.
    reboost_fraction: f64,
}

impl TurboCore {
    /// Turbo Core for a package with the given TDP in watts.
    pub fn new(tdp_w: f64) -> TurboCore {
        TurboCore {
            tdp_w,
            cpu: CpuPState::P1,
            reboost_fraction: 0.90,
        }
    }

    /// Current CPU P-state choice (observable for tests/diagnostics).
    pub fn cpu_state(&self) -> CpuPState {
        self.cpu
    }
}

impl Governor for TurboCore {
    fn name(&self) -> &str {
        "turbo-core"
    }

    fn select(&mut self, _ctx: &KernelContext) -> GovernorDecision {
        GovernorDecision::instant(HwConfig::new(
            self.cpu,
            NbState::Nb0,
            GpuDpm::Dpm4,
            CuCount::MAX,
        ))
    }

    fn observe(
        &mut self,
        _ctx: &KernelContext,
        _executed_at: HwConfig,
        outcome: &KernelOutcome,
        _truth: Option<&KernelCharacteristics>,
    ) {
        let package = outcome.power.package_w();
        if package > self.tdp_w {
            // Shift power away from the busy-waiting CPU.
            if let Some(slower) = self.cpu.slower() {
                self.cpu = slower;
            }
        } else if package < self.tdp_w * self.reboost_fraction {
            if let Some(faster) = self.cpu.faster() {
                self.cpu = faster;
            }
        }
    }

    fn end_run(&mut self) {
        self.cpu = CpuPState::P1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::PerfTarget;
    use gpm_sim::ApuSimulator;

    fn ctx() -> KernelContext {
        KernelContext {
            position: 0,
            run_index: 0,
            elapsed_kernel_s: 0.0,
            elapsed_gi: 0.0,
            target: PerfTarget::new(1.0, 1.0),
            total_kernels: None,
        }
    }

    #[test]
    fn boosts_everything_by_default() {
        let mut tc = TurboCore::new(95.0);
        let d = tc.select(&ctx());
        assert_eq!(d.config, HwConfig::MAX_PERF);
        assert_eq!(d.evaluations, 0);
    }

    #[test]
    fn sheds_cpu_state_over_tdp() {
        let sim = ApuSimulator::noiseless();
        let k = KernelCharacteristics::compute_bound("hot", 50.0);
        let mut tc = TurboCore::new(40.0); // artificially tight TDP
        let d = tc.select(&ctx());
        let out = sim.evaluate(&k, d.config);
        assert!(out.power.package_w() > 40.0);
        tc.observe(&ctx(), d.config, &out, None);
        assert_eq!(tc.cpu_state(), CpuPState::P2);
        // Keeps shedding while still over.
        let cfg2 = tc.select(&ctx()).config;
        let out2 = sim.evaluate(&k, cfg2);
        tc.observe(&ctx(), cfg2, &out2, None);
        assert_eq!(tc.cpu_state(), CpuPState::P3);
    }

    #[test]
    fn reboosts_when_power_drops() {
        let sim = ApuSimulator::noiseless();
        let cool = KernelCharacteristics::unscalable("cool", 0.02);
        let mut tc = TurboCore::new(95.0);
        // Force a shed state, then feed a cool kernel.
        tc.cpu = CpuPState::P5;
        let d = tc.select(&ctx());
        let out = sim.evaluate(&cool, d.config);
        assert!(out.power.package_w() < 95.0 * 0.9);
        tc.observe(&ctx(), d.config, &out, None);
        assert_eq!(tc.cpu_state(), CpuPState::P4);
    }

    #[test]
    fn end_run_resets_to_boost() {
        let mut tc = TurboCore::new(95.0);
        tc.cpu = CpuPState::P6;
        tc.end_run();
        assert_eq!(tc.cpu_state(), CpuPState::P1);
    }

    #[test]
    fn never_underflows_p7() {
        let sim = ApuSimulator::noiseless();
        let k = KernelCharacteristics::compute_bound("hot", 50.0);
        let mut tc = TurboCore::new(1.0); // impossible TDP
        for _ in 0..20 {
            let d = tc.select(&ctx());
            let out = sim.evaluate(&k, d.config);
            tc.observe(&ctx(), d.config, &out, None);
        }
        assert_eq!(tc.cpu_state(), CpuPState::P7);
    }
}
