//! Predict Previous Kernel (PPK), the paper's stand-in for
//! state-of-the-art history-based schemes (Sections II-E, III).
//!
//! PPK "assumes that the last seen kernel or phase repeats again and uses
//! its behavior to estimate the energy optimal configuration of the
//! upcoming kernel", under the running throughput constraint of Eq. 2. It
//! never looks further than one kernel ahead and so cannot anticipate
//! throughput phase changes — the failure mode that motivates MPC.

use crate::governor::{Governor, GovernorDecision, KernelContext, OverheadModel};
use crate::search::{
    exhaustive_best, hill_climb_with_memo, EnergyEvaluator, EvalMemo, SearchStats,
};
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
use gpm_sim::{KernelCharacteristics, KernelOutcome, SimParams};
use gpm_trace::{noop_sink, FailSafeReason, FaultChannelKind, TraceEvent, TraceSink};
use std::sync::Arc;

/// Search strategy used for the per-kernel optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PpkSearch {
    /// Evaluate every configuration in the space (prior-work style).
    Exhaustive,
    /// The paper's greedy hill climb (≈19× fewer evaluations).
    HillClimb,
}

/// The PPK governor.
///
/// The very first kernel runs at the fail-safe configuration ("the very
/// first kernel is run at fail-safe since no performance counters are
/// available", Section V-B); afterwards each decision optimizes the
/// predicted energy of the *previous* kernel's snapshot under the Eq. 2
/// prefix-throughput constraint.
#[derive(Debug, Clone)]
pub struct PpkGovernor<P> {
    evaluator: EnergyEvaluator<P>,
    space: ConfigSpace,
    overhead: OverheadModel,
    search: PpkSearch,
    store_truth: bool,
    last: Option<KernelSnapshot>,
    total_overhead_s: f64,
    total_evaluations: u64,
    trace: Arc<dyn TraceSink>,
    /// Hoisted hill-climb memo: one allocation for the governor's
    /// lifetime instead of one per decision (re-scoped per search, so
    /// decisions are unaffected).
    memo: EvalMemo,
}

impl<P: PowerPerfPredictor> PpkGovernor<P> {
    /// PPK with the given predictor, simulator parameters (for the CPU
    /// `V²f` model), search space, and overhead accounting.
    pub fn new(
        predictor: P,
        params: SimParams,
        space: ConfigSpace,
        overhead: OverheadModel,
    ) -> PpkGovernor<P> {
        PpkGovernor {
            evaluator: EnergyEvaluator::new(predictor, params),
            space,
            overhead,
            search: PpkSearch::HillClimb,
            store_truth: false,
            last: None,
            total_overhead_s: 0.0,
            total_evaluations: 0,
            trace: noop_sink(),
            memo: EvalMemo::new(),
        }
    }

    /// Selects the search strategy (default: hill climb, matching the
    /// MPC optimizer's per-kernel evaluation budget so the profiling run's
    /// `T_PPK` is a faithful cost proxy for the adaptive horizon generator).
    pub fn with_search(mut self, search: PpkSearch) -> PpkGovernor<P> {
        self.search = search;
        self
    }

    /// Attach ground truth to snapshots (oracle-predictor studies only).
    pub fn with_truth_snapshots(mut self, enabled: bool) -> PpkGovernor<P> {
        self.store_truth = enabled;
        self
    }

    /// Cumulative optimizer overhead charged so far, seconds. This is the
    /// `T_PPK` the adaptive horizon generator consumes after a profiling
    /// run.
    pub fn total_overhead_s(&self) -> f64 {
        self.total_overhead_s
    }

    /// Cumulative predictor evaluations.
    pub fn total_evaluations(&self) -> u64 {
        self.total_evaluations
    }
}

impl<P: PowerPerfPredictor> Governor for PpkGovernor<P> {
    fn name(&self) -> &str {
        "ppk"
    }

    fn select(&mut self, ctx: &KernelContext) -> GovernorDecision {
        let Some(last) = self.last.clone() else {
            // No history yet: fail safe, no optimization charged.
            return GovernorDecision::instant(HwConfig::FAIL_SAFE);
        };
        // Eq. 2: the upcoming kernel (assumed equal to the previous one)
        // must keep cumulative throughput at or above target.
        let cap = ctx
            .target
            .time_cap(ctx.elapsed_gi, ctx.elapsed_kernel_s, last.ginstructions);
        let (best, stats) = match self.search {
            PpkSearch::Exhaustive => {
                let (best, evals) = exhaustive_best(&self.evaluator, &last, &self.space, cap);
                (
                    best,
                    SearchStats {
                        evaluations: evals,
                        ..SearchStats::default()
                    },
                )
            }
            PpkSearch::HillClimb => {
                let _span = gpm_telemetry::span("search.hill_climb");
                hill_climb_with_memo(
                    &self.evaluator,
                    &last,
                    HwConfig::FAIL_SAFE,
                    cap,
                    &mut self.memo,
                )
            }
        };
        let config = best.map(|b| b.config).unwrap_or(HwConfig::FAIL_SAFE);
        let overhead_s = self.overhead.cost_s(stats.evaluations);
        self.total_overhead_s += overhead_s;
        self.total_evaluations += stats.evaluations;
        if self.trace.enabled() {
            self.trace.record(&TraceEvent::Search {
                run_index: ctx.run_index,
                position: ctx.position,
                horizon: None,
                evaluations: stats.evaluations,
                visits: stats.visits,
                pruned: stats.pruned,
                overhead_s,
            });
            if best.is_none() {
                // Distinguish a predictor gone bad from a genuinely
                // unsatisfiable cap.
                let reason = if stats.anomalies > 0 {
                    FailSafeReason::PredictionAnomaly
                } else {
                    FailSafeReason::InfeasibleCap
                };
                self.trace.record(&TraceEvent::FailSafe {
                    run_index: ctx.run_index,
                    position: ctx.position,
                    reason,
                });
            }
        }
        GovernorDecision {
            config,
            overhead_s,
            evaluations: stats.evaluations,
            horizon: None,
            predicted: best,
        }
    }

    fn observe(
        &mut self,
        ctx: &KernelContext,
        executed_at: HwConfig,
        outcome: &KernelOutcome,
        truth: Option<&KernelCharacteristics>,
    ) {
        let truth = if self.store_truth {
            truth.cloned()
        } else {
            None
        };
        let mut snapshot = KernelSnapshot {
            counters: outcome.counters,
            measured_at: executed_at,
            ginstructions: outcome.ginstructions,
            truth,
        };
        // A corrupted observation must not poison the one-kernel history:
        // clamp it and note the recovery.
        if !snapshot.is_well_formed() {
            snapshot.counters.sanitize();
            if !snapshot.ginstructions.is_finite() || snapshot.ginstructions < 0.0 {
                snapshot.ginstructions = 0.0;
            }
            if self.trace.enabled() {
                self.trace.record(&TraceEvent::Recovered {
                    run_index: ctx.run_index,
                    position: ctx.position,
                    channel: FaultChannelKind::CounterNoise,
                    retries: 0,
                });
            }
        }
        self.last = Some(snapshot);
    }

    fn end_run(&mut self) {
        // History does not carry across application invocations: the next
        // run's first kernel again has no predecessor within the run.
        self.last = None;
    }

    fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = sink;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::PerfTarget;
    use gpm_sim::{ApuSimulator, OraclePredictor};

    fn ctx(position: usize, elapsed_gi: f64, elapsed_s: f64, target: PerfTarget) -> KernelContext {
        KernelContext {
            position,
            run_index: 0,
            elapsed_kernel_s: elapsed_s,
            elapsed_gi,
            target,
            total_kernels: None,
        }
    }

    fn oracle_ppk(sim: &ApuSimulator) -> PpkGovernor<OraclePredictor> {
        PpkGovernor::new(
            OraclePredictor::new(sim),
            SimParams::noiseless(),
            ConfigSpace::paper_campaign(),
            OverheadModel::default(),
        )
        .with_truth_snapshots(true)
    }

    #[test]
    fn first_kernel_is_fail_safe() {
        let sim = ApuSimulator::noiseless();
        let mut ppk = oracle_ppk(&sim);
        let target = PerfTarget::new(10.0, 1.0);
        let d = ppk.select(&ctx(0, 0.0, 0.0, target));
        assert_eq!(d.config, HwConfig::FAIL_SAFE);
        assert_eq!(d.overhead_s, 0.0);
    }

    #[test]
    fn optimizes_after_first_observation() {
        let sim = ApuSimulator::noiseless();
        let mut ppk = oracle_ppk(&sim);
        let k = KernelCharacteristics::unscalable("us", 0.02);
        // Establish a lenient target from a fail-safe run.
        let base = sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let target = PerfTarget::new(base.ginstructions * 10.0, base.time_s * 10.0 * 1.5);

        let c = ctx(0, 0.0, 0.0, target);
        ppk.observe(&c, HwConfig::FAIL_SAFE, &base, Some(&k));
        let d = ppk.select(&ctx(1, base.ginstructions, base.time_s, target));
        // An unscalable kernel with slack: PPK should pick something much
        // lower-power than fail-safe.
        assert_ne!(d.config, HwConfig::FAIL_SAFE);
        assert!(d.evaluations > 0);
        assert!(d.overhead_s > 0.0);
        let chosen = sim.evaluate(&k, d.config);
        assert!(chosen.power.total_w() < base.power.total_w());
    }

    #[test]
    fn falls_back_when_behind_target() {
        let sim = ApuSimulator::noiseless();
        let mut ppk = oracle_ppk(&sim);
        let k = KernelCharacteristics::compute_bound("cb", 20.0);
        let base = sim.evaluate(&k, HwConfig::MAX_PERF);
        // Impossible target: twice the max-perf throughput.
        let target = PerfTarget::new(base.ginstructions * 2.0, base.time_s);
        let c = ctx(0, 0.0, 0.0, target);
        ppk.observe(&c, HwConfig::MAX_PERF, &base, Some(&k));
        // Deep performance debt makes the cap negative → fail-safe.
        let d = ppk.select(&ctx(1, base.ginstructions, base.time_s * 4.0, target));
        assert_eq!(d.config, HwConfig::FAIL_SAFE);
    }

    #[test]
    fn end_run_clears_history() {
        let sim = ApuSimulator::noiseless();
        let mut ppk = oracle_ppk(&sim);
        let k = KernelCharacteristics::compute_bound("cb", 20.0);
        let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let target = PerfTarget::new(1.0, 1.0);
        ppk.observe(
            &ctx(0, 0.0, 0.0, target),
            HwConfig::FAIL_SAFE,
            &out,
            Some(&k),
        );
        ppk.end_run();
        let d = ppk.select(&ctx(0, 0.0, 0.0, target));
        assert_eq!(d.config, HwConfig::FAIL_SAFE);
        assert_eq!(d.evaluations, 0);
    }

    #[test]
    fn accumulates_overhead_accounting() {
        let sim = ApuSimulator::noiseless();
        let mut ppk = oracle_ppk(&sim);
        let k = KernelCharacteristics::memory_bound("mb", 1.0);
        let base = sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let target = PerfTarget::new(base.ginstructions * 5.0, base.time_s * 5.0 * 2.0);
        let c = ctx(0, 0.0, 0.0, target);
        ppk.observe(&c, HwConfig::FAIL_SAFE, &base, Some(&k));
        let before = ppk.total_overhead_s();
        let d = ppk.select(&ctx(1, base.ginstructions, base.time_s, target));
        assert!(
            d.evaluations > 0 && d.evaluations < 60,
            "evals {}",
            d.evaluations
        );
        assert!(ppk.total_overhead_s() > before);
        assert_eq!(ppk.total_evaluations(), d.evaluations);
    }

    #[test]
    fn corrupted_observation_is_sanitized_before_storage() {
        let sim = ApuSimulator::noiseless();
        let mut ppk = oracle_ppk(&sim);
        let k = KernelCharacteristics::memory_bound("mb", 1.0);
        let clean = sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let target = PerfTarget::new(clean.ginstructions * 5.0, clean.time_s * 5.0 * 2.0);
        let mut corrupted = clean.clone();
        corrupted.counters.values_mut()[0] = f64::NAN;
        corrupted.ginstructions = f64::INFINITY;
        ppk.observe(
            &ctx(0, 0.0, 0.0, target),
            HwConfig::FAIL_SAFE,
            &corrupted,
            Some(&k),
        );
        // The next decision must still be well-defined: finite overhead, a
        // real configuration, no NaN leaking out of the search.
        let d = ppk.select(&ctx(1, clean.ginstructions, clean.time_s, target));
        assert!(ConfigSpace::full().contains(d.config));
        assert!(d.overhead_s.is_finite());
        if let Some(p) = d.predicted {
            assert!(p.is_plausible());
        }
    }

    #[test]
    fn exhaustive_variant_evaluates_whole_space() {
        let sim = ApuSimulator::noiseless();
        let mut ppk = oracle_ppk(&sim).with_search(PpkSearch::Exhaustive);
        let k = KernelCharacteristics::unscalable("us", 0.02);
        let base = sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let target = PerfTarget::new(base.ginstructions * 5.0, base.time_s * 5.0 * 2.0);
        let c = ctx(0, 0.0, 0.0, target);
        ppk.observe(&c, HwConfig::FAIL_SAFE, &base, Some(&k));
        let d = ppk.select(&ctx(1, base.ginstructions, base.time_s, target));
        assert_eq!(d.evaluations, 336);
    }
}
