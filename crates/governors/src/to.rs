//! The Theoretically Optimal (TO) scheme (Sections II-E, V-B).
//!
//! TO has perfect knowledge of every kernel's behaviour at every
//! configuration and picks, offline, the per-kernel configurations that
//! minimize total energy while meeting the end-to-end throughput target
//! (Eq. 1). With all kernels included, the throughput constraint reduces
//! to a *time budget*: minimize `ΣEᵢ(sᵢ)` subject to `ΣTᵢ(sᵢ) ≤ T_total` —
//! a multiple-choice knapsack.
//!
//! The paper brute-forces this at `O(Mᴺ)`; we solve it exactly on a
//! discretized time grid with dynamic programming (`O(N·M·G)`), plus a
//! Lagrangian-relaxation fast path, and cross-check against brute force in
//! tests.

use crate::governor::{Governor, GovernorDecision, KernelContext};
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_sim::{ApuSimulator, KernelCharacteristics, KernelOutcome};
use serde::{Deserialize, Serialize};

/// One candidate option for one kernel: (time, energy).
pub type Option2 = (f64, f64);

/// A solved TO assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToPlan {
    /// Chosen configuration per kernel, in execution order.
    pub configs: Vec<HwConfig>,
    /// Total predicted kernel energy of the plan, joules.
    pub energy_j: f64,
    /// Total predicted kernel time of the plan, seconds.
    pub time_s: f64,
}

/// Exact-on-a-grid multiple-choice knapsack solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToSolver {
    /// Time-grid resolution. Larger grids approach the continuous optimum;
    /// item times are rounded *up* to grid cells, so solutions are always
    /// feasible in continuous time.
    pub grid: usize,
}

impl Default for ToSolver {
    fn default() -> ToSolver {
        ToSolver { grid: 4000 }
    }
}

impl ToSolver {
    /// Minimizes total energy subject to `Σ time ≤ budget_s`.
    ///
    /// `options[k]` lists kernel `k`'s `(time_s, energy_j)` alternatives.
    /// Returns the chosen option index per kernel, or `None` when no
    /// assignment fits the budget (on the conservative grid).
    ///
    /// # Panics
    ///
    /// Panics if any kernel has no options or the budget is non-positive.
    pub fn solve(&self, options: &[Vec<Option2>], budget_s: f64) -> Option<Vec<usize>> {
        assert!(budget_s > 0.0, "time budget must be positive");
        assert!(
            options.iter().all(|o| !o.is_empty()),
            "every kernel needs at least one option"
        );
        if options.is_empty() {
            return Some(Vec::new());
        }
        let g = self.grid.max(8);
        let delta = budget_s / g as f64;
        let weight = |t: f64| -> usize { (t / delta).ceil() as usize };

        const INF: f64 = f64::INFINITY;
        let mut dp = vec![INF; g + 1];
        dp[0] = 0.0;
        // choice[k][cell] = option picked for kernel k when total weight
        // after kernel k is `cell`.
        let mut choice: Vec<Vec<u32>> = Vec::with_capacity(options.len());

        for opts in options {
            let mut next = vec![INF; g + 1];
            let mut pick = vec![u32::MAX; g + 1];
            for (j, &(t, e)) in opts.iter().enumerate() {
                let w = weight(t);
                if w > g {
                    continue;
                }
                for cell in w..=g {
                    let base = dp[cell - w];
                    if base.is_finite() {
                        let cand = base + e;
                        if cand < next[cell] {
                            next[cell] = cand;
                            pick[cell] = j as u32;
                        }
                    }
                }
            }
            dp = next;
            choice.push(pick);
        }

        // Best terminal cell.
        let (best_cell, _) = dp
            .iter()
            .enumerate()
            .filter(|(_, &e)| e.is_finite())
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())?;

        // Walk back through the choice tables.
        let mut cell = best_cell;
        let mut picks = vec![0usize; options.len()];
        for k in (0..options.len()).rev() {
            let j = choice[k][cell];
            debug_assert_ne!(j, u32::MAX);
            picks[k] = j as usize;
            let w = weight(options[k][j as usize].0);
            cell -= w;
        }
        Some(picks)
    }

    /// Lagrangian-relaxation fast path: binary-search the time price `λ`
    /// and let each kernel pick `argmin(e + λ·t)` independently. Returns
    /// the best *feasible* assignment encountered — on the convex hull of
    /// the trade-off this matches the DP; off it, it may be slightly
    /// suboptimal but is `O(N·M·log)` with no grid.
    pub fn solve_lagrangian(options: &[Vec<Option2>], budget_s: f64) -> Option<Vec<usize>> {
        assert!(budget_s > 0.0, "time budget must be positive");
        let pick_at = |lambda: f64| -> (Vec<usize>, f64, f64) {
            let mut idx = Vec::with_capacity(options.len());
            let mut time = 0.0;
            let mut energy = 0.0;
            for opts in options {
                let (j, &(t, e)) = opts
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        let ca = a.1 .1 + lambda * a.1 .0;
                        let cb = b.1 .1 + lambda * b.1 .0;
                        ca.partial_cmp(&cb).unwrap()
                    })
                    .unwrap();
                idx.push(j);
                time += t;
                energy += e;
            }
            (idx, time, energy)
        };

        let (idx0, t0, _) = pick_at(0.0);
        if t0 <= budget_s {
            return Some(idx0); // energy-greedy already fits
        }
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        // Grow hi until feasible (or give up).
        let mut best: Option<(Vec<usize>, f64)> = None;
        for _ in 0..64 {
            let (idx, t, e) = pick_at(hi);
            if t <= budget_s {
                best = Some((idx, e));
                break;
            }
            hi *= 4.0;
        }
        best.as_ref()?;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            let (idx, t, e) = pick_at(mid);
            if t <= budget_s {
                if best.as_ref().is_none_or(|(_, be)| e < *be) {
                    best = Some((idx, e));
                }
                hi = mid;
            } else {
                lo = mid;
            }
        }
        best.map(|(idx, _)| idx)
    }
}

/// Plans the TO assignment for a kernel sequence using the noiseless
/// simulator as the perfect model.
///
/// `budget_s` is the baseline's total kernel time (`T_total` of Eq. 1).
/// Falls back to the fail-safe configuration for every kernel if even the
/// grid-conservative DP finds no feasible assignment.
pub fn plan_optimal(
    sim: &ApuSimulator,
    kernels: &[KernelCharacteristics],
    space: &ConfigSpace,
    budget_s: f64,
) -> ToPlan {
    let configs: Vec<HwConfig> = space.iter().collect();
    let options: Vec<Vec<Option2>> = kernels
        .iter()
        .map(|k| {
            configs
                .iter()
                .map(|&cfg| {
                    let out = sim.evaluate_exact(k, cfg);
                    (out.time_s, out.energy.total_j())
                })
                .collect()
        })
        .collect();

    let solver = ToSolver::default();
    let picks = solver.solve(&options, budget_s).unwrap_or_else(|| {
        vec![
            configs
                .iter()
                .position(|&c| c == HwConfig::FAIL_SAFE)
                .unwrap_or(0);
            kernels.len()
        ]
    });

    let chosen: Vec<HwConfig> = picks.iter().map(|&j| configs[j]).collect();
    let (time_s, energy_j) = picks
        .iter()
        .enumerate()
        .fold((0.0, 0.0), |(t, e), (k, &j)| {
            (t + options[k][j].0, e + options[k][j].1)
        });
    ToPlan {
        configs: chosen,
        energy_j,
        time_s,
    }
}

/// TO as a replayable governor (zero overhead, perfect knowledge).
pub fn to_governor(plan: &ToPlan) -> impl Governor {
    ToGovernor {
        plan: plan.configs.clone(),
    }
}

#[derive(Debug, Clone)]
struct ToGovernor {
    plan: Vec<HwConfig>,
}

impl Governor for ToGovernor {
    fn name(&self) -> &str {
        "theoretically-optimal"
    }

    fn select(&mut self, ctx: &KernelContext) -> GovernorDecision {
        let cfg = self
            .plan
            .get(ctx.position)
            .copied()
            .unwrap_or(HwConfig::FAIL_SAFE);
        GovernorDecision::instant(cfg)
    }

    fn observe(
        &mut self,
        _ctx: &KernelContext,
        _executed_at: HwConfig,
        _outcome: &KernelOutcome,
        _truth: Option<&KernelCharacteristics>,
    ) {
    }
}

/// Brute-force reference solver for tests: `O(Mᴺ)`.
pub fn solve_brute(options: &[Vec<Option2>], budget_s: f64) -> Option<(Vec<usize>, f64)> {
    fn rec(
        options: &[Vec<Option2>],
        k: usize,
        time: f64,
        energy: f64,
        budget: f64,
        picks: &mut Vec<usize>,
        best: &mut Option<(Vec<usize>, f64)>,
    ) {
        if time > budget {
            return;
        }
        if k == options.len() {
            if best.as_ref().is_none_or(|(_, be)| energy < *be) {
                *best = Some((picks.clone(), energy));
            }
            return;
        }
        for (j, &(t, e)) in options[k].iter().enumerate() {
            picks.push(j);
            rec(options, k + 1, time + t, energy + e, budget, picks, best);
            picks.pop();
        }
    }
    let mut best = None;
    rec(options, 0, 0.0, 0.0, budget_s, &mut Vec::new(), &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_options() -> Vec<Vec<Option2>> {
        // Three kernels, three options each: (fast, expensive) → (slow, cheap).
        vec![
            vec![(1.0, 10.0), (2.0, 6.0), (4.0, 5.0)],
            vec![(1.0, 20.0), (3.0, 9.0), (5.0, 8.0)],
            vec![(2.0, 12.0), (4.0, 7.0), (6.0, 6.5)],
        ]
    }

    fn total(options: &[Vec<Option2>], picks: &[usize]) -> (f64, f64) {
        picks
            .iter()
            .enumerate()
            .fold((0.0, 0.0), |(t, e), (k, &j)| {
                (t + options[k][j].0, e + options[k][j].1)
            })
    }

    #[test]
    fn dp_matches_brute_force() {
        let options = toy_options();
        for budget in [4.0, 6.0, 8.0, 10.0, 15.0] {
            // A grid whose cell size divides the (integer) option times
            // exactly, so the conservative ceil-rounding is lossless and
            // the DP must match brute force bit-for-bit.
            let dp = ToSolver {
                grid: (budget * 10.0) as usize,
            }
            .solve(&options, budget);
            let brute = solve_brute(&options, budget);
            match (dp, brute) {
                (Some(d), Some((_, be))) => {
                    let (t, e) = total(&options, &d);
                    assert!(t <= budget + 1e-9);
                    assert!(
                        (e - be).abs() < 1e-6,
                        "budget {budget}: dp energy {e} vs brute {be}"
                    );
                }
                (None, None) => {}
                (d, b) => panic!("budget {budget}: dp {d:?} brute {b:?}"),
            }
        }
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let options = toy_options();
        assert_eq!(ToSolver::default().solve(&options, 1.0), None);
        assert_eq!(solve_brute(&options, 1.0), None);
    }

    #[test]
    fn generous_budget_takes_cheapest_options() {
        let options = toy_options();
        let picks = ToSolver::default().solve(&options, 100.0).unwrap();
        assert_eq!(picks, vec![2, 2, 2]);
    }

    #[test]
    fn lagrangian_is_feasible_and_near_dp() {
        let options = toy_options();
        for budget in [6.0, 8.0, 10.0] {
            let lag = ToSolver::solve_lagrangian(&options, budget).unwrap();
            let (t, e) = total(&options, &lag);
            assert!(t <= budget + 1e-9);
            let dp = ToSolver {
                grid: (budget * 10.0) as usize,
            }
            .solve(&options, budget)
            .unwrap();
            let (_, e_dp) = total(&options, &dp);
            assert!(e >= e_dp - 1e-9);
            assert!(
                e <= e_dp * 1.3,
                "budget {budget}: lagrangian {e} vs dp {e_dp}"
            );
        }
    }

    #[test]
    fn empty_problem_is_trivially_solved() {
        assert_eq!(ToSolver::default().solve(&[], 1.0), Some(Vec::new()));
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn nonpositive_budget_panics() {
        let _ = ToSolver::default().solve(&toy_options(), 0.0);
    }

    #[test]
    fn plan_optimal_meets_budget_and_beats_fail_safe() {
        let sim = ApuSimulator::noiseless();
        let kernels = vec![
            KernelCharacteristics::compute_bound("a", 15.0),
            KernelCharacteristics::memory_bound("b", 1.0),
            KernelCharacteristics::unscalable("c", 0.02),
            KernelCharacteristics::peak("d", 8.0),
        ];
        let space = ConfigSpace::paper_campaign();
        // Budget: fail-safe total time with 5% slack.
        let fs_time: f64 = kernels
            .iter()
            .map(|k| sim.evaluate_exact(k, HwConfig::FAIL_SAFE).time_s)
            .sum();
        let fs_energy: f64 = kernels
            .iter()
            .map(|k| sim.evaluate_exact(k, HwConfig::FAIL_SAFE).energy.total_j())
            .sum();
        let plan = plan_optimal(&sim, &kernels, &space, fs_time * 1.05);
        assert_eq!(plan.configs.len(), kernels.len());
        assert!(plan.time_s <= fs_time * 1.05 + 1e-9);
        assert!(
            plan.energy_j < fs_energy,
            "TO {} vs fail-safe {}",
            plan.energy_j,
            fs_energy
        );
    }

    #[test]
    fn to_governor_replays_plan() {
        use crate::governor::PerfTarget;
        let plan = ToPlan {
            configs: vec![HwConfig::MAX_PERF, HwConfig::FAIL_SAFE],
            energy_j: 1.0,
            time_s: 1.0,
        };
        let mut gov = to_governor(&plan);
        let mk = |position| KernelContext {
            position,
            run_index: 0,
            elapsed_kernel_s: 0.0,
            elapsed_gi: 0.0,
            target: PerfTarget::new(1.0, 1.0),
            total_kernels: Some(2),
        };
        assert_eq!(gov.select(&mk(0)).config, HwConfig::MAX_PERF);
        assert_eq!(gov.select(&mk(1)).config, HwConfig::FAIL_SAFE);
        assert_eq!(gov.select(&mk(5)).config, HwConfig::FAIL_SAFE);
        assert_eq!(gov.name(), "theoretically-optimal");
    }
}
