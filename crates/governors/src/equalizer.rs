//! An Equalizer-style reactive governor (Sethia & Mahlke, MICRO 2014 —
//! cited by the paper as representative reactive tuning).
//!
//! Equalizer samples performance counters each epoch and nudges the GPU
//! knobs one step at a time toward the bottleneck: memory-bound kernels
//! get memory bandwidth (and shed compute frequency in efficiency mode),
//! compute-bound kernels get frequency/CUs, cache-thrashing kernels shed
//! CUs. It never predicts — it reacts — and it has no notion of an
//! application-level performance target, which is exactly the contrast
//! the paper draws with MPC.

use crate::governor::{Governor, GovernorDecision, KernelContext};
use gpm_hw::{CpuPState, CuCount, GpuDpm, HwConfig, NbState};
use gpm_sim::{CounterSet, KernelCharacteristics, KernelOutcome};
use serde::{Deserialize, Serialize};

/// Operating objective, Equalizer's two modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EqualizerMode {
    /// Chase throughput: boost the bottleneck resource.
    Performance,
    /// Chase efficiency: shed the non-bottleneck resources.
    Efficiency,
}

/// The reactive Equalizer governor.
///
/// # Examples
///
/// ```
/// use gpm_governors::{Equalizer, EqualizerMode, Governor};
///
/// let gov = Equalizer::new(EqualizerMode::Efficiency);
/// assert_eq!(gov.name(), "equalizer");
/// ```
#[derive(Debug, Clone)]
pub struct Equalizer {
    mode: EqualizerMode,
    current: HwConfig,
}

/// Counter thresholds classifying the last epoch's bottleneck.
const MEM_STALL_HIGH_PCT: f64 = 45.0;
const MEM_STALL_LOW_PCT: f64 = 15.0;
const CACHE_HIT_LOW_PCT: f64 = 40.0;

impl Equalizer {
    /// A fresh governor starting from the boost configuration with the
    /// CPU parked (Equalizer manages GPU resources only).
    pub fn new(mode: EqualizerMode) -> Equalizer {
        Equalizer {
            mode,
            current: HwConfig::new(CpuPState::P7, NbState::Nb0, GpuDpm::Dpm4, CuCount::MAX),
        }
    }

    /// The configured objective.
    pub fn mode(&self) -> EqualizerMode {
        self.mode
    }

    /// The configuration the governor would apply next.
    pub fn current(&self) -> HwConfig {
        self.current
    }

    /// One reactive adjustment from the last kernel's counters.
    fn react(&mut self, counters: &CounterSet) {
        let mem_stall = counters.mem_unit_stalled_pct();
        let cache_hit = counters.cache_hit_pct();
        let mut cfg = self.current;

        if cache_hit < CACHE_HIT_LOW_PCT && counters.fetch_size_kb() > 0.0 && cfg.cu > CuCount::MIN
        {
            // Thrashing the shared cache: shed CUs regardless of mode.
            if let Some(fewer) = cfg.cu.fewer() {
                cfg.cu = fewer;
            }
        } else if mem_stall > MEM_STALL_HIGH_PCT {
            // Memory-bound epoch.
            match self.mode {
                EqualizerMode::Performance => {
                    if let Some(faster) = cfg.nb.faster() {
                        cfg.nb = faster;
                    }
                }
                EqualizerMode::Efficiency => {
                    // Compute is starved: shedding GPU frequency is nearly
                    // free.
                    if let Some(slower) = cfg.gpu.slower() {
                        cfg.gpu = slower;
                    }
                }
            }
        } else if mem_stall < MEM_STALL_LOW_PCT {
            // Compute-bound epoch.
            match self.mode {
                EqualizerMode::Performance => {
                    if let Some(faster) = cfg.gpu.faster() {
                        cfg.gpu = faster;
                    } else if let Some(more) = cfg.cu.more() {
                        cfg.cu = more;
                    }
                }
                EqualizerMode::Efficiency => {
                    // Memory is idle: shed NB state.
                    if let Some(slower) = cfg.nb.slower() {
                        cfg.nb = slower;
                    }
                }
            }
        }
        self.current = cfg;
    }
}

impl Governor for Equalizer {
    fn name(&self) -> &str {
        "equalizer"
    }

    fn select(&mut self, _ctx: &KernelContext) -> GovernorDecision {
        GovernorDecision::instant(self.current)
    }

    fn observe(
        &mut self,
        _ctx: &KernelContext,
        _executed_at: HwConfig,
        outcome: &KernelOutcome,
        _truth: Option<&KernelCharacteristics>,
    ) {
        self.react(&outcome.counters);
    }

    fn end_run(&mut self) {
        self.current = HwConfig::new(CpuPState::P7, NbState::Nb0, GpuDpm::Dpm4, CuCount::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::PerfTarget;
    use gpm_sim::ApuSimulator;

    fn ctx() -> KernelContext {
        KernelContext {
            position: 0,
            run_index: 0,
            elapsed_kernel_s: 0.0,
            elapsed_gi: 0.0,
            target: PerfTarget::new(1.0, 1.0),
            total_kernels: None,
        }
    }

    fn feed(gov: &mut Equalizer, kernel: &KernelCharacteristics, times: usize) {
        let sim = ApuSimulator::noiseless();
        for _ in 0..times {
            let d = gov.select(&ctx());
            let out = sim.evaluate(kernel, d.config);
            gov.observe(&ctx(), d.config, &out, None);
        }
    }

    #[test]
    fn efficiency_mode_sheds_gpu_freq_on_memory_bound() {
        let mut gov = Equalizer::new(EqualizerMode::Efficiency);
        let mb = KernelCharacteristics::memory_bound("mb", 2.0);
        feed(&mut gov, &mb, 4);
        assert!(
            gov.current().gpu < GpuDpm::Dpm4,
            "gpu state {}",
            gov.current().gpu
        );
    }

    #[test]
    fn efficiency_mode_sheds_nb_on_compute_bound() {
        let mut gov = Equalizer::new(EqualizerMode::Efficiency);
        let cb = KernelCharacteristics::compute_bound("cb", 30.0);
        feed(&mut gov, &cb, 4);
        assert!(
            gov.current().nb > NbState::Nb0,
            "nb state {}",
            gov.current().nb
        );
    }

    #[test]
    fn performance_mode_boosts_bottleneck() {
        let mut gov = Equalizer::new(EqualizerMode::Performance);
        // Start from a degraded point so there is headroom to boost.
        gov.current = HwConfig::new(CpuPState::P7, NbState::Nb2, GpuDpm::Dpm2, CuCount::MIN);
        let cb = KernelCharacteristics::compute_bound("cb", 30.0);
        feed(&mut gov, &cb, 4);
        assert!(gov.current().gpu > GpuDpm::Dpm2);
    }

    #[test]
    fn thrashing_kernels_shed_cus() {
        let mut gov = Equalizer::new(EqualizerMode::Performance);
        // A peak kernel whose 8-CU cache hit rate collapses.
        let pk = KernelCharacteristics::builder("pk", 10.0)
            .cache_hit(0.7)
            .cache_interference(0.09)
            .memory_gb(1.5)
            .build();
        feed(&mut gov, &pk, 3);
        assert!(gov.current().cu < CuCount::MAX, "cu {}", gov.current().cu);
    }

    #[test]
    fn end_run_resets() {
        let mut gov = Equalizer::new(EqualizerMode::Efficiency);
        feed(&mut gov, &KernelCharacteristics::memory_bound("mb", 2.0), 3);
        gov.end_run();
        assert_eq!(gov.current().gpu, GpuDpm::Dpm4);
        assert_eq!(gov.current().nb, NbState::Nb0);
    }

    #[test]
    fn decisions_are_instant() {
        let mut gov = Equalizer::new(EqualizerMode::Performance);
        let d = gov.select(&ctx());
        assert_eq!(d.overhead_s, 0.0);
        assert_eq!(d.evaluations, 0);
    }
}
