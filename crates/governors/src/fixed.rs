//! Trivial governors: a fixed configuration, or a precomputed plan.

use crate::governor::{Governor, GovernorDecision, KernelContext};
use gpm_hw::HwConfig;
use gpm_sim::{KernelCharacteristics, KernelOutcome};

/// Runs every kernel at one fixed configuration. Used for the Figure 2
/// characterization sweeps and as a degenerate baseline.
///
/// # Examples
///
/// ```
/// use gpm_governors::FixedGovernor;
/// use gpm_hw::HwConfig;
///
/// let gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
/// assert_eq!(gov.config(), HwConfig::FAIL_SAFE);
/// ```
#[derive(Debug, Clone)]
pub struct FixedGovernor {
    config: HwConfig,
}

impl FixedGovernor {
    /// Governor pinned to `config`.
    pub fn new(config: HwConfig) -> FixedGovernor {
        FixedGovernor { config }
    }

    /// The pinned configuration.
    pub fn config(&self) -> HwConfig {
        self.config
    }
}

impl Governor for FixedGovernor {
    fn name(&self) -> &str {
        "fixed"
    }

    fn select(&mut self, _ctx: &KernelContext) -> GovernorDecision {
        GovernorDecision::instant(self.config)
    }

    fn observe(
        &mut self,
        _ctx: &KernelContext,
        _executed_at: HwConfig,
        _outcome: &KernelOutcome,
        _truth: Option<&KernelCharacteristics>,
    ) {
    }
}

/// Replays a precomputed per-kernel configuration plan (e.g. a
/// Theoretically Optimal solution from [`crate::to`]). Positions beyond
/// the plan's end fall back to the fail-safe configuration.
#[derive(Debug, Clone)]
pub struct PlannedGovernor {
    name: String,
    plan: Vec<HwConfig>,
}

impl PlannedGovernor {
    /// Governor replaying `plan`.
    pub fn new(name: impl Into<String>, plan: Vec<HwConfig>) -> PlannedGovernor {
        PlannedGovernor {
            name: name.into(),
            plan,
        }
    }

    /// The plan being replayed.
    pub fn plan(&self) -> &[HwConfig] {
        &self.plan
    }
}

impl Governor for PlannedGovernor {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&mut self, ctx: &KernelContext) -> GovernorDecision {
        let cfg = self
            .plan
            .get(ctx.position)
            .copied()
            .unwrap_or(HwConfig::FAIL_SAFE);
        GovernorDecision::instant(cfg)
    }

    fn observe(
        &mut self,
        _ctx: &KernelContext,
        _executed_at: HwConfig,
        _outcome: &KernelOutcome,
        _truth: Option<&KernelCharacteristics>,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::PerfTarget;
    use gpm_hw::{CpuPState, CuCount, GpuDpm, NbState};

    fn ctx(position: usize) -> KernelContext {
        KernelContext {
            position,
            run_index: 0,
            elapsed_kernel_s: 0.0,
            elapsed_gi: 0.0,
            target: PerfTarget::new(1.0, 1.0),
            total_kernels: None,
        }
    }

    #[test]
    fn fixed_always_returns_its_config() {
        let mut gov = FixedGovernor::new(HwConfig::MPC_HOST);
        for i in 0..5 {
            assert_eq!(gov.select(&ctx(i)).config, HwConfig::MPC_HOST);
        }
    }

    #[test]
    fn planned_replays_in_order() {
        let a = HwConfig::MAX_PERF;
        let b = HwConfig::new(CpuPState::P7, NbState::Nb3, GpuDpm::Dpm0, CuCount::MIN);
        let mut gov = PlannedGovernor::new("plan", vec![a, b]);
        assert_eq!(gov.select(&ctx(0)).config, a);
        assert_eq!(gov.select(&ctx(1)).config, b);
    }

    #[test]
    fn planned_falls_back_past_end() {
        let mut gov = PlannedGovernor::new("plan", vec![HwConfig::MAX_PERF]);
        assert_eq!(gov.select(&ctx(7)).config, HwConfig::FAIL_SAFE);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FixedGovernor::new(HwConfig::FAIL_SAFE).name(), "fixed");
        assert_eq!(PlannedGovernor::new("to", vec![]).name(), "to");
    }
}
