//! Execution-order recording, repetition detection, and future-kernel
//! lookahead.

use crate::signature::KernelSignature;
use crate::store::{KernelRecord, KernelStore};
use gpm_hw::HwConfig;
use gpm_sim::{KernelCharacteristics, KernelOutcome};
use serde::{Deserialize, Serialize};

/// Dense identifier of a distinct kernel within a [`PatternExtractor`].
pub type KernelId = usize;

/// Detects the smallest period `p` such that `seq` is a prefix of an
/// infinite repetition of its first `p` elements (Totoni-style on-line
/// repetition detection). Requires at least two full periods of evidence;
/// returns `None` otherwise.
///
/// # Examples
///
/// ```
/// use gpm_pattern::detect_period;
/// assert_eq!(detect_period(&[1, 2, 1, 2, 1]), Some(2));
/// assert_eq!(detect_period(&[1, 2, 3]), None);
/// ```
pub fn detect_period(seq: &[KernelId]) -> Option<usize> {
    let n = seq.len();
    for p in 1..=n / 2 {
        if (p..n).all(|i| seq[i] == seq[i - p]) {
            return Some(p);
        }
    }
    None
}

/// The paper's kernel pattern extractor (Section IV-A2).
///
/// During the application's **first invocation** the extractor simply
/// records: each retired kernel is signed, stored, and appended to the
/// execution list. [`end_run`](PatternExtractor::end_run) freezes that list
/// as the *reference pattern*. On subsequent invocations,
/// [`expected`](PatternExtractor::expected) and
/// [`lookahead`](PatternExtractor::lookahead) answer "which kernels come
/// next?" from the reference, while [`observe`](PatternExtractor::observe)
/// keeps refreshing each kernel's stored counters from runtime feedback.
///
/// # Examples
///
/// ```
/// use gpm_hw::HwConfig;
/// use gpm_pattern::PatternExtractor;
/// use gpm_sim::{ApuSimulator, KernelCharacteristics};
///
/// let sim = ApuSimulator::default();
/// let a = KernelCharacteristics::compute_bound("a", 10.0);
/// let b = KernelCharacteristics::memory_bound("b", 1.0);
///
/// let mut px = PatternExtractor::new();
/// for k in [&a, &b, &a, &b] {
///     let out = sim.evaluate(k, HwConfig::FAIL_SAFE);
///     px.observe(&out, HwConfig::FAIL_SAFE, None);
/// }
/// px.end_run();
/// assert_eq!(px.reference_len(), Some(4));
/// assert_eq!(px.expected(0), px.expected(2)); // A at positions 0 and 2
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PatternExtractor {
    store: KernelStore,
    current_run: Vec<KernelId>,
    reference: Option<Vec<KernelId>>,
}

impl PatternExtractor {
    /// An empty extractor with no stored knowledge — the state all schemes
    /// start from when "our framework starts with no stored knowledge"
    /// (Section V-B).
    pub fn new() -> PatternExtractor {
        PatternExtractor::default()
    }

    /// Records a retired kernel: computes its signature, upserts its store
    /// record with the fresh counters/time/power, and appends it to the
    /// current run's execution list. Returns the kernel's id.
    ///
    /// `truth` attaches ground-truth characteristics for oracle-predictor
    /// studies; pass `None` in the realistic counter-driven configuration.
    pub fn observe(
        &mut self,
        outcome: &KernelOutcome,
        executed_at: HwConfig,
        truth: Option<KernelCharacteristics>,
    ) -> KernelId {
        let signature = KernelSignature::from_counters(&outcome.counters);
        let id = self.store.upsert(
            signature,
            outcome.counters,
            executed_at,
            outcome.time_s,
            outcome.power.gpu_domain_w(),
            outcome.ginstructions,
            truth,
        );
        self.current_run.push(id);
        id
    }

    /// Ends the current application invocation. The first completed run
    /// becomes the reference pattern; later runs are simply cleared (their
    /// counter feedback has already been absorbed by the store).
    pub fn end_run(&mut self) {
        if self.reference.is_none() && !self.current_run.is_empty() {
            self.reference = Some(std::mem::take(&mut self.current_run));
        } else {
            self.current_run.clear();
        }
    }

    /// Discards the reference pattern and all per-run state, keeping the
    /// kernel store (used when an application's pattern is known to have
    /// changed).
    pub fn reset_pattern(&mut self) {
        self.reference = None;
        self.current_run.clear();
    }

    /// The kernel expected at `position` (0-based) of the application,
    /// according to the reference pattern. `None` before a reference
    /// exists or past its end.
    pub fn expected(&self, position: usize) -> Option<KernelId> {
        self.reference.as_ref()?.get(position).copied()
    }

    /// Up to `horizon` kernel ids expected at positions
    /// `position..position + horizon`. Empty before a reference exists;
    /// truncated at the application's end.
    pub fn lookahead(&self, position: usize, horizon: usize) -> Vec<KernelId> {
        match &self.reference {
            Some(r) => r.iter().skip(position).take(horizon).copied().collect(),
            None => Vec::new(),
        }
    }

    /// Whether a reference pattern has been captured.
    pub fn has_reference(&self) -> bool {
        self.reference.is_some()
    }

    /// Length of the reference pattern, if captured.
    pub fn reference_len(&self) -> Option<usize> {
        self.reference.as_ref().map(Vec::len)
    }

    /// The full reference pattern, if captured.
    pub fn reference(&self) -> Option<&[KernelId]> {
        self.reference.as_deref()
    }

    /// Kernels observed so far in the current run.
    pub fn run_so_far(&self) -> &[KernelId] {
        &self.current_run
    }

    /// Attempts to re-align a diverged run against the reference pattern:
    /// when the kernel observed at `position` is not the expected one,
    /// searches the reference within `window` positions after `position`
    /// for the observed kernel and returns the matching reference
    /// position. The caller can then treat the application as having
    /// skipped ahead (e.g. an iteration count that shrank between runs).
    pub fn realign(&self, position: usize, observed: KernelId, window: usize) -> Option<usize> {
        let reference = self.reference.as_deref()?;
        (position..reference.len().min(position + window + 1)).find(|&p| reference[p] == observed)
    }

    /// On-line repetition detection over the current run (Totoni-style):
    /// the smallest period consistent with everything seen so far, with at
    /// least two periods of evidence.
    pub fn current_period(&self) -> Option<usize> {
        detect_period(&self.current_run)
    }

    /// Access to a stored kernel record.
    pub fn record(&self, id: KernelId) -> Option<&KernelRecord> {
        self.store.get(id)
    }

    /// The underlying store.
    pub fn store(&self) -> &KernelStore {
        &self.store
    }

    /// Number of distinct kernels seen.
    pub fn num_distinct_kernels(&self) -> usize {
        self.store.len()
    }

    /// Runtime storage footprint per the paper's 80-bytes-per-kernel
    /// accounting.
    pub fn storage_bytes(&self) -> usize {
        self.store.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_sim::ApuSimulator;

    fn kernels() -> Vec<KernelCharacteristics> {
        vec![
            KernelCharacteristics::compute_bound("a", 10.0),
            KernelCharacteristics::memory_bound("b", 1.0),
            KernelCharacteristics::peak("c", 8.0),
        ]
    }

    fn run_sequence(px: &mut PatternExtractor, seq: &[usize]) -> Vec<KernelId> {
        let sim = ApuSimulator::default();
        let ks = kernels();
        seq.iter()
            .map(|&i| {
                let out = sim.evaluate(&ks[i], HwConfig::FAIL_SAFE);
                px.observe(&out, HwConfig::FAIL_SAFE, None)
            })
            .collect()
    }

    #[test]
    fn detect_period_basics() {
        assert_eq!(detect_period(&[]), None);
        assert_eq!(detect_period(&[1]), None);
        assert_eq!(detect_period(&[1, 1]), Some(1));
        assert_eq!(detect_period(&[1, 2, 1, 2]), Some(2));
        assert_eq!(detect_period(&[1, 2, 3, 1, 2, 3]), Some(3));
        // Fewer than two full periods of evidence: no detection yet.
        assert_eq!(detect_period(&[1, 2, 3, 1, 2]), None);
        assert_eq!(detect_period(&[1, 2, 3, 4]), None);
    }

    #[test]
    fn distinct_kernels_get_distinct_ids() {
        let mut px = PatternExtractor::new();
        let ids = run_sequence(&mut px, &[0, 1, 2]);
        assert_eq!(px.num_distinct_kernels(), 3);
        assert_eq!(ids.len(), 3);
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
    }

    #[test]
    fn repeated_kernel_reuses_id() {
        let mut px = PatternExtractor::new();
        let ids = run_sequence(&mut px, &[0, 1, 0, 1, 0]);
        assert_eq!(px.num_distinct_kernels(), 2);
        assert_eq!(ids[0], ids[2]);
        assert_eq!(ids[0], ids[4]);
        assert_eq!(ids[1], ids[3]);
        assert_eq!(px.current_period(), Some(2));
    }

    #[test]
    fn first_run_becomes_reference() {
        let mut px = PatternExtractor::new();
        let ids = run_sequence(&mut px, &[0, 1, 2, 1]);
        assert!(!px.has_reference());
        px.end_run();
        assert!(px.has_reference());
        assert_eq!(px.reference_len(), Some(4));
        assert_eq!(px.reference().unwrap(), ids.as_slice());
        assert!(px.run_so_far().is_empty());
    }

    #[test]
    fn lookahead_truncates_at_end() {
        let mut px = PatternExtractor::new();
        let ids = run_sequence(&mut px, &[0, 1, 2]);
        px.end_run();
        assert_eq!(px.lookahead(1, 10), vec![ids[1], ids[2]]);
        assert_eq!(px.lookahead(0, 2), vec![ids[0], ids[1]]);
        assert!(px.lookahead(3, 5).is_empty());
    }

    #[test]
    fn lookahead_empty_without_reference() {
        let mut px = PatternExtractor::new();
        run_sequence(&mut px, &[0, 1]);
        assert!(px.lookahead(0, 4).is_empty());
        assert_eq!(px.expected(0), None);
    }

    #[test]
    fn second_run_does_not_replace_reference() {
        let mut px = PatternExtractor::new();
        run_sequence(&mut px, &[0, 1]);
        px.end_run();
        run_sequence(&mut px, &[2, 2, 2]);
        px.end_run();
        assert_eq!(px.reference_len(), Some(2));
    }

    #[test]
    fn feedback_updates_stored_counters() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        let mut px = PatternExtractor::new();
        let out1 = sim.evaluate(&ks[0], HwConfig::FAIL_SAFE);
        let id = px.observe(&out1, HwConfig::FAIL_SAFE, None);
        let t1 = px.record(id).unwrap().time_s;
        let out2 = sim.evaluate(&ks[0], HwConfig::MAX_PERF);
        let id2 = px.observe(&out2, HwConfig::MAX_PERF, None);
        assert_eq!(id, id2, "same kernel should keep its id across configs");
        let rec = px.record(id).unwrap();
        assert_ne!(rec.time_s, t1);
        assert_eq!(rec.measured_at, HwConfig::MAX_PERF);
    }

    #[test]
    fn realign_finds_skipped_ahead_position() {
        let mut px = PatternExtractor::new();
        let ids = run_sequence(&mut px, &[0, 1, 2, 1, 0]);
        px.end_run();
        // Expected position 1 (kernel B) but we observed kernel C (= id of
        // position 2): the run skipped one kernel.
        assert_eq!(px.realign(1, ids[2], 3), Some(2));
        // Observed the expected kernel: realign returns the position itself.
        assert_eq!(px.realign(1, ids[1], 3), Some(1));
        // Kernel not in the window: no alignment.
        assert_eq!(px.realign(4, ids[1], 2), None);
        // No reference yet: no alignment.
        assert_eq!(PatternExtractor::new().realign(0, 0, 5), None);
    }

    #[test]
    fn reset_pattern_clears_reference_keeps_store() {
        let mut px = PatternExtractor::new();
        run_sequence(&mut px, &[0, 1]);
        px.end_run();
        px.reset_pattern();
        assert!(!px.has_reference());
        assert_eq!(px.num_distinct_kernels(), 2);
    }

    #[test]
    fn storage_scales_with_distinct_kernels() {
        let mut px = PatternExtractor::new();
        run_sequence(&mut px, &[0, 1, 2, 0, 1, 2]);
        assert_eq!(px.storage_bytes(), 3 * 80);
    }
}
