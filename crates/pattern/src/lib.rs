//! Kernel pattern extraction (Section IV-A2 of the paper).
//!
//! GPGPU applications launch kernels in largely regular orders. The pattern
//! extractor watches the stream of retired kernels, identifies distinct
//! kernels by a *signature* over their performance counters, records the
//! execution order, and — on subsequent invocations of the application —
//! tells the optimizer which kernels to expect next, along with their
//! stored counters.
//!
//! Three pieces, mirroring the paper's three steps:
//!
//! * [`signature`] — log-binned counter signatures that identify a kernel
//!   (and its input regime) across invocations;
//! * [`store`] — the 80-bytes-per-distinct-kernel record store (8 counters
//!   + time + power as f64), updated from runtime feedback;
//! * [`extractor`] — the execution-order recorder and future-kernel
//!   lookahead, plus on-line repetition detection in the style of Totoni
//!   et al.
//!
//! # Examples
//!
//! ```
//! use gpm_hw::HwConfig;
//! use gpm_pattern::PatternExtractor;
//! use gpm_sim::{ApuSimulator, KernelCharacteristics};
//!
//! let sim = ApuSimulator::default();
//! let k = KernelCharacteristics::compute_bound("k", 10.0);
//! let out = sim.evaluate(&k, HwConfig::FAIL_SAFE);
//!
//! let mut extractor = PatternExtractor::new();
//! let id = extractor.observe(&out, HwConfig::FAIL_SAFE, None);
//! assert_eq!(extractor.run_so_far(), &[id]);
//! ```

pub mod extractor;
pub mod signature;
pub mod store;

pub use extractor::{detect_period, KernelId, PatternExtractor};
pub use signature::KernelSignature;
pub use store::{KernelRecord, KernelStore};
