//! Per-kernel record storage.
//!
//! For each *dissimilar* kernel (distinct signature) the extractor stores
//! the eight Table III counters plus kernel time and power as
//! double-precision values — the 80 bytes/kernel the paper budgets — along
//! with bookkeeping the optimizer needs (instruction count, the
//! configuration the counters were captured at, and optionally the ground
//! truth for oracle studies).

use crate::signature::KernelSignature;
use gpm_hw::HwConfig;
use gpm_sim::predictor::KernelSnapshot;
use gpm_sim::{CounterSet, KernelCharacteristics};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stored knowledge about one distinct kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRecord {
    /// The identifying signature.
    pub signature: KernelSignature,
    /// Latest observed counters.
    pub counters: CounterSet,
    /// Configuration the counters were captured at.
    pub measured_at: HwConfig,
    /// Latest observed execution time, seconds.
    pub time_s: f64,
    /// Latest observed GPU-domain power, watts.
    pub gpu_power_w: f64,
    /// Instructions for the throughput metric, giga-instructions.
    pub ginstructions: f64,
    /// Times this kernel has been observed.
    pub observations: u64,
    /// Ground truth, carried only in oracle-predictor studies.
    pub truth: Option<KernelCharacteristics>,
}

impl KernelRecord {
    /// Builds the snapshot an optimizer hands to a predictor.
    pub fn snapshot(&self) -> KernelSnapshot {
        KernelSnapshot {
            counters: self.counters,
            measured_at: self.measured_at,
            ginstructions: self.ginstructions,
            truth: self.truth.clone(),
        }
    }

    /// The paper's storage estimate for this record: 8 counters + time +
    /// power at 8 bytes each = 80 bytes.
    pub const STORED_BYTES: usize = 80;
}

/// Signature-indexed store of [`KernelRecord`]s.
///
/// Records are addressed by dense [`KernelId`](crate::KernelId)s (insertion
/// order), which the execution lists reference.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelStore {
    records: Vec<KernelRecord>,
    #[serde(skip)]
    index: HashMap<KernelSignature, usize>,
}

impl KernelStore {
    /// An empty store.
    pub fn new() -> KernelStore {
        KernelStore::default()
    }

    /// Inserts a new observation or updates the existing record with the
    /// freshest counters/time/power (the paper's "dynamically updates the
    /// stored kernel performance counter values based on the performance
    /// counter feedback of the last executed kernel"). Returns the record's
    /// id.
    #[allow(clippy::too_many_arguments)]
    pub fn upsert(
        &mut self,
        signature: KernelSignature,
        counters: CounterSet,
        measured_at: HwConfig,
        time_s: f64,
        gpu_power_w: f64,
        ginstructions: f64,
        truth: Option<KernelCharacteristics>,
    ) -> usize {
        if let Some(&id) = self.index.get(&signature) {
            let rec = &mut self.records[id];
            rec.counters = counters;
            rec.measured_at = measured_at;
            rec.time_s = time_s;
            rec.gpu_power_w = gpu_power_w;
            rec.ginstructions = ginstructions;
            rec.observations += 1;
            if truth.is_some() {
                rec.truth = truth;
            }
            id
        } else {
            let id = self.records.len();
            self.records.push(KernelRecord {
                signature,
                counters,
                measured_at,
                time_s,
                gpu_power_w,
                ginstructions,
                observations: 1,
                truth,
            });
            self.index.insert(signature, id);
            id
        }
    }

    /// Looks up a record by id.
    pub fn get(&self, id: usize) -> Option<&KernelRecord> {
        self.records.get(id)
    }

    /// Looks up a record id by signature.
    pub fn id_of(&self, signature: &KernelSignature) -> Option<usize> {
        self.index.get(signature).copied()
    }

    /// Number of distinct kernels stored.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in id order.
    pub fn records(&self) -> &[KernelRecord] {
        &self.records
    }

    /// Total storage the paper's accounting would charge: 80 bytes per
    /// distinct kernel.
    pub fn storage_bytes(&self) -> usize {
        self.records.len() * KernelRecord::STORED_BYTES
    }

    /// Rebuilds the signature index (needed after deserialization, where
    /// the index is skipped).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.signature, i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_sim::CounterSet;

    fn sig(seed: f64) -> (KernelSignature, CounterSet) {
        let c = CounterSet::from_values([seed * 1000.0, 10.0, 80.0, 2.0, 8.0, 1.0, 64.0, 512.0]);
        (KernelSignature::from_counters(&c), c)
    }

    #[test]
    fn upsert_inserts_then_updates() {
        let mut store = KernelStore::new();
        let (s, c) = sig(1.0);
        let id = store.upsert(s, c, HwConfig::FAIL_SAFE, 0.5, 20.0, 1.0, None);
        assert_eq!(store.len(), 1);
        let id2 = store.upsert(s, c, HwConfig::MAX_PERF, 0.4, 25.0, 1.0, None);
        assert_eq!(id, id2);
        assert_eq!(store.len(), 1);
        let rec = store.get(id).unwrap();
        assert_eq!(rec.time_s, 0.4);
        assert_eq!(rec.measured_at, HwConfig::MAX_PERF);
        assert_eq!(rec.observations, 2);
    }

    #[test]
    fn distinct_signatures_get_distinct_ids() {
        let mut store = KernelStore::new();
        let (s1, c1) = sig(1.0);
        let (s2, c2) = sig(64.0);
        assert_ne!(s1, s2);
        let a = store.upsert(s1, c1, HwConfig::FAIL_SAFE, 0.5, 20.0, 1.0, None);
        let b = store.upsert(s2, c2, HwConfig::FAIL_SAFE, 0.7, 22.0, 2.0, None);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        assert_eq!(store.id_of(&s2), Some(b));
    }

    #[test]
    fn storage_matches_paper_budget() {
        let mut store = KernelStore::new();
        for i in 0..6 {
            let (s, c) = sig((1 << i) as f64 * 4.0);
            store.upsert(s, c, HwConfig::FAIL_SAFE, 0.5, 20.0, 1.0, None);
        }
        assert_eq!(store.storage_bytes(), store.len() * 80);
    }

    #[test]
    fn truth_is_retained_once_set() {
        let mut store = KernelStore::new();
        let (s, c) = sig(1.0);
        let truth = KernelCharacteristics::compute_bound("k", 5.0);
        let id = store.upsert(
            s,
            c,
            HwConfig::FAIL_SAFE,
            0.5,
            20.0,
            1.0,
            Some(truth.clone()),
        );
        // An update without truth must not erase it.
        store.upsert(s, c, HwConfig::FAIL_SAFE, 0.6, 21.0, 1.0, None);
        assert_eq!(
            store.get(id).unwrap().truth.as_ref().unwrap().name(),
            truth.name()
        );
    }

    #[test]
    fn snapshot_carries_record_fields() {
        let mut store = KernelStore::new();
        let (s, c) = sig(2.0);
        let id = store.upsert(s, c, HwConfig::MAX_PERF, 0.5, 20.0, 3.5, None);
        let snap = store.get(id).unwrap().snapshot();
        assert_eq!(snap.counters, c);
        assert_eq!(snap.measured_at, HwConfig::MAX_PERF);
        assert_eq!(snap.ginstructions, 3.5);
        assert!(snap.truth.is_none());
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut store = KernelStore::new();
        let (s, c) = sig(1.0);
        store.upsert(s, c, HwConfig::FAIL_SAFE, 0.5, 20.0, 1.0, None);
        let mut clone = KernelStore {
            records: store.records.clone(),
            index: HashMap::new(),
        };
        assert_eq!(clone.id_of(&s), None);
        clone.rebuild_index();
        assert_eq!(clone.id_of(&s), Some(0));
    }
}
