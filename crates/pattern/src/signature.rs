//! Log-binned kernel signatures.
//!
//! The paper identifies kernels at runtime by binning performance counters
//! with `binᵢ = ⌊log u⌋` and using the tuple of bins as the signature.
//! Kernels with similar counters — the same kernel, or the same kernel in
//! the same input regime — collide into one signature; kernels whose
//! inputs change enough to shift performance land in new signatures (as
//! with hybridsort's `mergeSortPass` F1–F9).
//!
//! One refinement over a literal reading of the paper: only the four
//! *configuration-invariant* counters participate in the identity —
//! `GlobalWorkSize`, `VFetchInsts`, `ScratchRegs`, and `VALUInsts`, which
//! are properties of the kernel and its input. The other four
//! (`MemUnitStalled`, `CacheHit`, `LDSBankConflict`, `FetchSize`) vary
//! with the DVFS state and CU count the kernel happens to execute at;
//! binning them would fragment one kernel into several identities as the
//! governor moves it across configurations (observed as spurious ~50%
//! "pattern mispredictions" on single-kernel benchmarks). All eight
//! counters are still *stored* per kernel for the predictor (Table III).

use gpm_sim::CounterSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Indices (into Table III order) of the configuration-invariant counters
/// used for identity.
const IDENTITY_COUNTERS: [usize; 4] = [0, 3, 4, 6];

/// A kernel identity: the tuple of log-binned configuration-invariant
/// counters.
///
/// # Examples
///
/// ```
/// use gpm_pattern::KernelSignature;
/// use gpm_sim::CounterSet;
///
/// let a = KernelSignature::from_counters(&CounterSet::from_values(
///     [1000.0, 10.0, 80.0, 2.0, 8.0, 1.0, 64.0, 512.0]));
/// let same = KernelSignature::from_counters(&CounterSet::from_values(
///     [1010.0, 55.0, 20.0, 2.1, 8.0, 9.9, 70.0, 2048.0]));
/// // Same kernel observed at a different configuration: the stall/cache
/// // counters moved, the identity did not.
/// assert_eq!(a, same);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelSignature([i32; IDENTITY_COUNTERS.len()]);

impl KernelSignature {
    /// Computes the signature of a counter set.
    ///
    /// Each identity counter is binned as `⌊log₂(u + 1)⌋`; the `+1` keeps
    /// zero counters well-defined (the paper's `⌊log u⌋` presumes positive
    /// values).
    pub fn from_counters(counters: &CounterSet) -> KernelSignature {
        let values = counters.values();
        let mut bins = [0i32; IDENTITY_COUNTERS.len()];
        for (bin, &idx) in bins.iter_mut().zip(IDENTITY_COUNTERS.iter()) {
            *bin = (values[idx].max(0.0) + 1.0).log2().floor() as i32;
        }
        KernelSignature(bins)
    }

    /// The raw bins.
    pub fn bins(&self) -> &[i32] {
        &self.0
    }

    /// Number of bins in which two signatures differ; 0 means identical.
    pub fn distance(&self, other: &KernelSignature) -> usize {
        self.0
            .iter()
            .zip(other.0.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Display for KernelSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(scale: f64) -> CounterSet {
        CounterSet::from_values([
            1024.0 * scale,
            10.0,
            80.0,
            4.0 * scale,
            8.0,
            1.0,
            64.0 * scale,
            512.0 * scale,
        ])
    }

    #[test]
    fn identical_counters_identical_signature() {
        assert_eq!(
            KernelSignature::from_counters(&counters(1.0)),
            KernelSignature::from_counters(&counters(1.0))
        );
    }

    #[test]
    fn small_perturbations_collide() {
        let a = KernelSignature::from_counters(&counters(1.0));
        let b = KernelSignature::from_counters(&counters(1.05));
        assert_eq!(a, b);
    }

    #[test]
    fn large_input_changes_separate() {
        let a = KernelSignature::from_counters(&counters(1.0));
        let b = KernelSignature::from_counters(&counters(16.0));
        assert_ne!(a, b);
        assert!(a.distance(&b) >= 3);
    }

    #[test]
    fn config_dependent_counters_do_not_affect_identity() {
        // The same kernel measured at two configurations: stall %, cache
        // hit %, LDS %, and fetch traffic all move; identity must not.
        let at_8cu = CounterSet::from_values([1024.0, 60.0, 47.0, 4.0, 8.0, 2.0, 64.0, 4000.0]);
        let at_2cu = CounterSet::from_values([1024.0, 12.0, 95.0, 4.0, 8.0, 0.5, 64.0, 300.0]);
        assert_eq!(
            KernelSignature::from_counters(&at_8cu),
            KernelSignature::from_counters(&at_2cu)
        );
    }

    #[test]
    fn zero_counters_are_well_defined() {
        let sig = KernelSignature::from_counters(&CounterSet::from_values([0.0; 8]));
        assert_eq!(sig.bins(), &[0i32; 4]);
    }

    #[test]
    fn distance_is_zero_iff_equal() {
        let a = KernelSignature::from_counters(&counters(1.0));
        assert_eq!(a.distance(&a), 0);
        let b = KernelSignature::from_counters(&counters(100.0));
        assert!(a.distance(&b) > 0);
    }

    #[test]
    fn display_is_tuple_like() {
        let sig = KernelSignature::from_counters(&CounterSet::from_values([0.0; 8]));
        assert_eq!(sig.to_string(), "(0,0,0,0)");
    }
}
