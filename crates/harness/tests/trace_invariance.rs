//! The tentpole observability guarantee: attaching any trace sink must
//! never change a governor's decisions, and the aggregating sink must
//! reproduce the statistics the MPC governor already keeps.

use gpm_harness::{EvalContext, EvalOptions, ExecEnv, Scheme, SchemeOutcome};
use gpm_mpc::HorizonMode;
use gpm_trace::{AggregateSink, FanoutSink, RingSink, TraceSink};
use gpm_workloads::workload_by_name;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
}

const WORKLOADS: [&str; 3] = ["kmeans", "Spmv", "EigenValue"];

fn scheme_for(index: usize) -> Scheme {
    match index {
        0 => Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
        1 => Scheme::PpkRf,
        2 => Scheme::TurboCore,
        _ => Scheme::MpcRf {
            horizon: HorizonMode::Full,
        },
    }
}

/// The decision trajectory, byte for byte: per-kernel configs, times,
/// energies, overheads and horizons of both invocations.
fn trajectory(out: &SchemeOutcome) -> String {
    let profiling = out
        .profiling
        .as_ref()
        .map(|p| serde_json::to_string(&p.per_kernel).unwrap())
        .unwrap_or_default();
    let measured = serde_json::to_string(&out.measured.per_kernel).unwrap();
    format!("{profiling}\n{measured}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property (ISSUE acceptance criterion): replaying with a live sink
    /// installed produces byte-identical decisions to the Noop path.
    #[test]
    fn any_sink_never_changes_decisions(w_idx in 0usize..WORKLOADS.len(), s_idx in 0usize..4) {
        let workload = workload_by_name(WORKLOADS[w_idx]).unwrap();
        let scheme = scheme_for(s_idx);

        let plain = ExecEnv::new().evaluate(ctx(), &workload, scheme);

        let ring = Arc::new(RingSink::new(256));
        let agg = Arc::new(AggregateSink::new());
        let sink: Arc<dyn TraceSink> =
            Arc::new(FanoutSink::new(vec![ring.clone(), agg.clone()]));
        let traced = ExecEnv::new().with_trace(sink).evaluate(ctx(), &workload, scheme);

        prop_assert_eq!(trajectory(&plain), trajectory(&traced));
        // And the sink really observed the replay.
        prop_assert!(ring.total_recorded() > 0);
        prop_assert!(agg.summary().dispatches as usize >= workload.len());
    }
}

/// The aggregate summary derived purely from trace events must agree with
/// the `MpcStats` the governor accumulates internally (the Figure 14/15
/// source): mean horizon, overhead per decision, and evaluation counts.
#[test]
fn aggregate_summary_reproduces_mpc_stats() {
    let workload = workload_by_name("kmeans").unwrap();
    let agg = Arc::new(AggregateSink::new());
    let sink: Arc<dyn TraceSink> = agg.clone();
    let out = ExecEnv::new().with_trace(sink).evaluate(
        ctx(),
        &workload,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let stats = out.mpc_stats.expect("MPC scheme returns stats");
    let summary = agg.summary();

    assert_eq!(summary.horizon_decisions as usize, stats.horizons.len());
    assert!(
        (summary.mean_horizon - stats.average_horizon()).abs() < 1e-9,
        "trace mean horizon {} vs stats {}",
        summary.mean_horizon,
        stats.average_horizon()
    );
    let stats_overhead_per_decision = stats.total_overhead_s() / stats.horizons.len() as f64;
    assert!(
        (summary.overhead_per_decision_s - stats_overhead_per_decision).abs() < 1e-12,
        "trace overhead/decision {} vs stats {}",
        summary.overhead_per_decision_s,
        stats_overhead_per_decision
    );
    assert_eq!(summary.horizon_evaluations, stats.total_evaluations());
}

/// Events streamed through the JSONL sink round-trip the golden schema.
#[test]
fn traced_run_events_roundtrip_jsonl() {
    let workload = workload_by_name("Spmv").unwrap();
    let jsonl = Arc::new(gpm_trace::JsonlSink::new(Vec::new()));
    let sink: Arc<dyn TraceSink> = jsonl.clone();
    let env = ExecEnv::new().with_trace(Arc::clone(&sink));
    let _ = env.evaluate(
        ctx(),
        &workload,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    drop(env);
    drop(sink);
    let bytes = Arc::try_unwrap(jsonl).expect("sole owner").into_inner();
    let text = String::from_utf8(bytes).unwrap();
    let mut kinds = std::collections::BTreeSet::new();
    let mut count = 0usize;
    for line in text.lines() {
        let event: gpm_trace::TraceEvent = serde_json::from_str(line).unwrap();
        assert_eq!(serde_json::to_string(&event).unwrap(), line);
        kinds.insert(event.kind());
        count += 1;
    }
    assert!(count > 2 * workload.len(), "only {count} events");
    for expected in [
        "RunStart", "Dispatch", "Search", "Decision", "Outcome", "Headroom", "RunEnd",
    ] {
        assert!(kinds.contains(expected), "missing {expected} in {kinds:?}");
    }
}
