//! The tentpole fault-layer guarantees:
//!
//! 1. A zero [`FaultPlan`] is the identity — the faulted evaluation path
//!    (wrapped predictors, injector-threaded governor, faulted dispatch
//!    loop) makes byte-identical decisions to the clean path.
//! 2. A non-zero plan is deterministic — the same seed replays the same
//!    degraded trajectory bit for bit.
//! 3. Degradation is graceful — at a 10% per-channel fault rate MPC still
//!    completes with finite accounting and bounded slowdown.

use gpm_faults::FaultPlan;
use gpm_harness::{EvalContext, EvalOptions, ExecEnv, Scheme, SchemeOutcome};
use gpm_mpc::HorizonMode;
use gpm_trace::{AggregateSink, TraceSink};
use gpm_workloads::workload_by_name;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
}

const WORKLOADS: [&str; 3] = ["kmeans", "Spmv", "EigenValue"];

fn scheme_for(index: usize) -> Scheme {
    match index {
        0 => Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
        1 => Scheme::PpkRf,
        2 => Scheme::TurboCore,
        _ => Scheme::Equalizer {
            mode: gpm_governors::EqualizerMode::Efficiency,
        },
    }
}

/// The decision trajectory, byte for byte: per-kernel configs, times,
/// energies, overheads and horizons of both invocations.
fn trajectory(out: &SchemeOutcome) -> String {
    let profiling = out
        .profiling
        .as_ref()
        .map(|p| serde_json::to_string(&p.per_kernel).unwrap())
        .unwrap_or_default();
    let measured = serde_json::to_string(&out.measured.per_kernel).unwrap();
    format!("{profiling}\n{measured}")
}

fn faulted(workload_name: &str, scheme: Scheme, plan: &FaultPlan) -> (SchemeOutcome, u64) {
    let workload = workload_by_name(workload_name).unwrap();
    let agg = Arc::new(AggregateSink::new());
    let sink: Arc<dyn TraceSink> = agg.clone();
    let env = ExecEnv::new()
        .with_trace(sink)
        .with_fault_plan(plan.clone());
    let out = env.evaluate(ctx(), &workload, scheme);
    (out, agg.summary().fault_injections)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property (ISSUE acceptance criterion): a zero-fault plan is the
    /// identity for every scheme — byte-identical decision trajectories.
    #[test]
    fn zero_fault_plan_is_the_identity(
        w_idx in 0usize..WORKLOADS.len(),
        s_idx in 0usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let workload = workload_by_name(WORKLOADS[w_idx]).unwrap();
        let scheme = scheme_for(s_idx);
        let clean = ExecEnv::new().evaluate(ctx(), &workload, scheme);
        let (zeroed, fired) = faulted(WORKLOADS[w_idx], scheme, &FaultPlan::zero(seed));
        prop_assert_eq!(trajectory(&clean), trajectory(&zeroed));
        prop_assert_eq!(fired, 0);
    }
}

/// The same non-zero plan replays the same degraded trajectory, and it
/// really does inject faults.
#[test]
fn fault_schedules_replay_bit_identically() {
    let plan = FaultPlan::uniform(0xFEEDFACE, 0.15);
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    let (a, fired_a) = faulted("kmeans", scheme, &plan);
    let (b, fired_b) = faulted("kmeans", scheme, &plan);
    assert_eq!(trajectory(&a), trajectory(&b));
    assert_eq!(fired_a, fired_b);
    assert!(fired_a > 0, "the 15% plan never fired");
    // A different seed must diverge somewhere on the fault schedule.
    let (_, fired_c) = faulted("kmeans", scheme, &FaultPlan::uniform(0xDECAF, 0.15));
    assert!(fired_c > 0);
}

/// Graceful degradation at the ISSUE's 10% fault-rate bar: MPC completes
/// with finite accounting and a bounded throughput violation.
#[test]
fn faulted_mpc_degrades_gracefully_at_ten_percent() {
    let plan = FaultPlan::uniform(0xA5A5, 0.10);
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    let (out, fired) = faulted("kmeans", scheme, &plan);
    assert!(fired > 0, "the 10% plan never fired");
    let m = &out.measured;
    assert!(m.kernel_time_s.is_finite() && m.kernel_time_s > 0.0);
    assert!(m.total_energy_j().is_finite() && m.total_energy_j() > 0.0);
    let slowdown = m.wall_time_s() / out.baseline.wall_time_s();
    assert!(
        slowdown.is_finite() && slowdown < 1.5,
        "slowdown {slowdown} under 10% faults"
    );
}
