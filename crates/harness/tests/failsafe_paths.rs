//! Reachability of every fault-driven [`FailSafeReason`]: a crafted
//! [`FaultPlan`] arming exactly one channel drives the corresponding
//! fallback, and the replay engine emits the matching
//! [`TraceEvent::FailSafe`] — `TransitionFailed` from the dispatch path,
//! `PredictionAnomaly` and `StalePattern` from governor decisions.

use gpm_faults::FaultPlan;
use gpm_governors::{PerfTarget, PlannedGovernor};
use gpm_harness::{EvalContext, EvalOptions, ExecEnv, Scheme};
use gpm_hw::HwConfig;
use gpm_mpc::HorizonMode;
use gpm_trace::{FailSafeReason, RingSink, TraceEvent, TraceSink};
use gpm_workloads::workload_by_name;
use std::sync::{Arc, OnceLock};

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
}

/// All fail-safe reasons recorded by `sink`, in emission order.
fn fail_safe_reasons(ring: &RingSink) -> Vec<FailSafeReason> {
    ring.snapshot()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::FailSafe { reason, .. } => Some(*reason),
            _ => None,
        })
        .collect()
}

fn ring() -> Arc<RingSink> {
    Arc::new(RingSink::new(65_536))
}

#[test]
fn transition_fail_plan_reaches_transition_failed() {
    // No-op transitions are never eligible, so the governor must actually
    // change configuration between kernels. At rate 1.0 every eligible
    // transition exhausts its retry budget, runs the kernel at
    // HwConfig::FAIL_SAFE, and emits FailSafe { TransitionFailed }.
    let sink = ring();
    let env = ExecEnv::new()
        .with_trace(sink.clone() as Arc<dyn TraceSink>)
        .with_fault_plan(FaultPlan::only_transition_fail(7, 1.0));
    let w = workload_by_name("Spmv").unwrap();
    let plan: Vec<HwConfig> = (0..w.len())
        .map(|p| {
            if p % 2 == 0 {
                HwConfig::MAX_PERF
            } else {
                HwConfig::MPC_HOST
            }
        })
        .collect();
    let mut gov = PlannedGovernor::new("alternating", plan);
    let run = env.run(
        &ctx().sim,
        &w,
        &mut gov,
        PerfTarget::new(1.0, 1.0),
        0,
        false,
    );

    let reasons = fail_safe_reasons(&sink);
    assert!(
        reasons.contains(&FailSafeReason::TransitionFailed),
        "no TransitionFailed among {reasons:?}"
    );
    assert!(
        reasons
            .iter()
            .all(|r| *r == FailSafeReason::TransitionFailed),
        "transition-only plan produced other reasons: {reasons:?}"
    );
    // The first dispatch has no previous configuration to transition
    // from, so fallbacks start at position 1 and hit every later kernel.
    let positions: Vec<usize> = sink
        .snapshot()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::FailSafe { position, .. } => Some(*position),
            _ => None,
        })
        .collect();
    assert_eq!(
        positions.len(),
        w.len() - 1,
        "one fallback per dispatch after the first"
    );
    assert!(positions.iter().all(|&p| p >= 1));
    // And the fallback actually took effect on the trajectory.
    assert!(run
        .per_kernel
        .iter()
        .skip(1)
        .all(|k| k.config == HwConfig::FAIL_SAFE));
}

#[test]
fn predictor_spike_plan_reaches_prediction_anomaly() {
    // At rate 1.0 every estimate the search sees is a spike, and a fixed
    // fraction of the spikes are non-finite. PredictionAnomaly needs the
    // search to *reject* an estimate (not just miss the cap), which only
    // the non-finite draws force — whether one lands on a decision's
    // starting estimate depends on the seeded hash, so sweep a small
    // deterministic seed set and require the reason within it.
    let mut hit = false;
    for seed in 0..32u64 {
        let sink = ring();
        let env = ExecEnv::new()
            .with_trace(sink.clone() as Arc<dyn TraceSink>)
            .with_fault_plan(FaultPlan::only_predictor_spike(seed, 1.0));
        let w = workload_by_name("kmeans").unwrap();
        let _ = env.evaluate(ctx(), &w, Scheme::PpkRf);
        if fail_safe_reasons(&sink).contains(&FailSafeReason::PredictionAnomaly) {
            hit = true;
            break;
        }
    }
    assert!(hit, "no spike seed in 0..32 produced PredictionAnomaly");
}

#[test]
fn stale_pattern_plan_reaches_stale_pattern() {
    // At rate 1.0 every pattern-store read is scaled or corrupted; the
    // MPC governor discards the record for the head kernel and falls
    // back with StalePattern when the window cannot be priced.
    let sink = ring();
    let env = ExecEnv::new()
        .with_trace(sink.clone() as Arc<dyn TraceSink>)
        .with_fault_plan(FaultPlan::only_stale_pattern(13, 1.0));
    let w = workload_by_name("kmeans").unwrap();
    let _ = env.evaluate(
        ctx(),
        &w,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );

    let reasons = fail_safe_reasons(&sink);
    assert!(
        reasons.contains(&FailSafeReason::StalePattern),
        "no StalePattern among {reasons:?}"
    );
}

#[test]
fn zero_plan_reaches_no_fault_driven_fail_safe() {
    // Control: the identity plan must not manufacture any of the three
    // fault-driven reasons on the same workloads and schemes.
    let sink = ring();
    let env = ExecEnv::new()
        .with_trace(sink.clone() as Arc<dyn TraceSink>)
        .with_fault_plan(FaultPlan::zero(7));
    let w = workload_by_name("kmeans").unwrap();
    let _ = env.evaluate(
        ctx(),
        &w,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
    );
    let reasons = fail_safe_reasons(&sink);
    for r in [
        FailSafeReason::TransitionFailed,
        FailSafeReason::PredictionAnomaly,
        FailSafeReason::StalePattern,
    ] {
        assert!(!reasons.contains(&r), "clean run produced {r:?}");
    }
}
