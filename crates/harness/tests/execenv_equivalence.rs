//! The dispatch path's golden guarantees: an [`ExecEnv`] holds no hidden
//! per-run state — a reused environment is byte-identical to a fresh one
//! built per call (the behavior of the retired `run_once*` /
//! `evaluate_scheme*` free functions, reconstructed inline here) — and
//! the context's shared baseline cache returns bit-identical Turbo Core
//! targets while simulating the baseline exactly once per workload per
//! context, even under concurrent resolution.
//!
//! It also pins the batched flat-forest inference engine to the seed's
//! scalar path: MPC and PPK decisions under `predict_batch` + memoized
//! search must be byte-identical to nested per-call traversal, clean,
//! traced, and faulted alike.

use gpm_faults::{FaultPlan, FaultyPredictor};
use gpm_governors::{EqualizerMode, FixedGovernor, OverheadModel, PerfTarget, PpkGovernor};
use gpm_harness::{turbo_core_baseline, EvalContext, EvalOptions, ExecEnv, Scheme, SchemeOutcome};
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_model::{encode_features, ErrorSpec, RandomForestPredictor};
use gpm_mpc::{HorizonMode, MpcConfig, MpcGovernor};
use gpm_sim::{KernelSnapshot, PowerPerfEstimate, PowerPerfPredictor};
use gpm_trace::{AggregateSink, RingSink, TraceSink};
use gpm_workloads::{suite, workload_by_name};
use std::sync::{Arc, OnceLock};

fn ctx() -> &'static EvalContext {
    static CTX: OnceLock<EvalContext> = OnceLock::new();
    CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
}

/// Every scheme constructor, parameterized variants included.
fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::TurboCore,
        Scheme::PpkOracle,
        Scheme::PpkRf,
        Scheme::MpcRf {
            horizon: HorizonMode::default(),
        },
        Scheme::MpcRf {
            horizon: HorizonMode::Full,
        },
        Scheme::MpcRf {
            horizon: HorizonMode::Fixed(3),
        },
        Scheme::MpcRfOverhead {
            horizon: HorizonMode::default(),
            overhead: OverheadModel::default(),
        },
        Scheme::MpcRfIdealized,
        Scheme::MpcOracle,
        Scheme::MpcError {
            spec: ErrorSpec::ERR_15_10,
        },
        Scheme::TheoreticallyOptimal,
        Scheme::Equalizer {
            mode: EqualizerMode::Efficiency,
        },
    ]
}

/// Full outcome fingerprint: label, both trajectories, baseline, target.
fn fingerprint(out: &SchemeOutcome) -> String {
    let profiling = out
        .profiling
        .as_ref()
        .map(|p| serde_json::to_string(&p.per_kernel).unwrap())
        .unwrap_or_default();
    format!(
        "{}\n{}\n{}\n{}\n{:x}/{:x}",
        out.label,
        profiling,
        serde_json::to_string(&out.measured.per_kernel).unwrap(),
        serde_json::to_string(&out.baseline.per_kernel).unwrap(),
        out.target.total_ginstructions().to_bits(),
        out.target.total_time_s().to_bits(),
    )
}

#[test]
fn reused_execenv_matches_fresh_env_per_call_for_all_schemes() {
    // The retired `evaluate_scheme` shim built a fresh `ExecEnv::new()`
    // per call; a long-lived environment must be indistinguishable from
    // that — no state may leak between evaluations.
    let w = workload_by_name("kmeans").unwrap();
    let env = ExecEnv::new();
    for scheme in all_schemes() {
        let fresh = ExecEnv::new().evaluate(ctx(), &w, scheme);
        let reused = env.evaluate(ctx(), &w, scheme);
        assert_eq!(
            fingerprint(&fresh),
            fingerprint(&reused),
            "{} diverged between a fresh and a reused ExecEnv",
            scheme.label()
        );
    }
}

#[test]
fn traced_evaluation_is_environment_reuse_invariant() {
    let w = workload_by_name("Spmv").unwrap();
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    // Fresh environment per call (the retired `evaluate_scheme_traced`
    // construction) ...
    let fresh_agg = Arc::new(AggregateSink::new());
    let fresh = ExecEnv::new()
        .with_trace(fresh_agg.clone() as Arc<dyn TraceSink>)
        .evaluate(ctx(), &w, scheme);

    // ... versus one long-lived environment evaluating twice: the second
    // pass must stream the identical decision sequence.
    let agg = Arc::new(AggregateSink::new());
    let env = ExecEnv::new().with_trace(agg.clone());
    let _warmup = env.evaluate(ctx(), &w, scheme);
    let agg2 = Arc::new(AggregateSink::new());
    let env2 = ExecEnv::new().with_trace(agg2.clone());
    let reused = env2.evaluate(ctx(), &w, scheme);

    assert_eq!(fingerprint(&fresh), fingerprint(&reused));
    // Same decision stream → same aggregate counters.
    let (fs, us) = (fresh_agg.summary(), agg2.summary());
    assert_eq!(fs.dispatches, us.dispatches);
    assert_eq!(fs.decisions, us.decisions);
    assert_eq!(fs.horizon_evaluations, us.horizon_evaluations);
    assert_eq!(us.baseline_simulations + us.baseline_cache_hits, 1);
}

#[test]
fn faulted_evaluation_is_environment_reuse_invariant() {
    let w = workload_by_name("EigenValue").unwrap();
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    let plan = FaultPlan::uniform(0xFEED_BEEF, 0.15);

    // Fresh environment (the retired `evaluate_scheme_faulted`
    // construction): trace + fault plan built per call.
    let fresh_agg = Arc::new(AggregateSink::new());
    let fresh = ExecEnv::new()
        .with_trace(fresh_agg.clone() as Arc<dyn TraceSink>)
        .with_fault_plan(plan.clone())
        .evaluate(ctx(), &w, scheme);

    // Reused environment: a second evaluation must replay the identical
    // fault schedule — the plan is stateless, so reuse cannot drift it.
    let agg = Arc::new(AggregateSink::new());
    let env = ExecEnv::new().with_trace(agg.clone()).with_fault_plan(plan);
    let _warmup = env.evaluate(ctx(), &w, scheme);
    let reused = env.evaluate(ctx(), &w, scheme);

    assert_eq!(fingerprint(&fresh), fingerprint(&reused));
    assert!(
        fresh_agg.summary().fault_injections > 0,
        "the 15% plan never fired"
    );
    // Two identical evaluations on the reused env inject exactly twice
    // the fresh env's single-evaluation count.
    assert_eq!(
        agg.summary().fault_injections,
        2 * fresh_agg.summary().fault_injections
    );
}

#[test]
fn telemetry_env_is_byte_identical_to_clean_env_for_all_schemes() {
    // Telemetry is strictly read-only observability: installing a live
    // registry (metrics + spans firing on every dispatch, search, and
    // baseline resolution) must not perturb a single decision byte.
    let w = workload_by_name("kmeans").unwrap();
    for scheme in all_schemes() {
        let clean = ExecEnv::new().evaluate(ctx(), &w, scheme);
        let tel = gpm_telemetry::Telemetry::new();
        let instrumented = ExecEnv::new()
            .with_telemetry(tel.clone())
            .evaluate(ctx(), &w, scheme);
        assert_eq!(
            fingerprint(&clean),
            fingerprint(&instrumented),
            "{} diverged between clean and telemetry-instrumented ExecEnv",
            scheme.label()
        );
        // The registry actually observed the run — this is not a
        // vacuous comparison against a disabled handle.
        let snap = tel.snapshot();
        assert!(snap.counter("gpm_dispatches_total").unwrap_or(0) > 0);
        assert!(snap.span("env.dispatch").is_some());
    }
}

#[test]
fn telemetry_env_byte_identity_holds_traced_and_faulted() {
    let w = workload_by_name("EigenValue").unwrap();
    let scheme = Scheme::MpcRf {
        horizon: HorizonMode::default(),
    };
    let plan = FaultPlan::uniform(0xFEED_BEEF, 0.15);
    let run = |telemetry: Option<gpm_telemetry::Telemetry>| {
        let agg = Arc::new(AggregateSink::new());
        let mut env = ExecEnv::new()
            .with_trace(agg.clone() as Arc<dyn TraceSink>)
            .with_fault_plan(plan.clone());
        if let Some(t) = telemetry {
            env = env.with_telemetry(t);
        }
        (env.evaluate(ctx(), &w, scheme), agg.summary())
    };
    let (clean, clean_sum) = run(None);
    let tel = gpm_telemetry::Telemetry::new();
    let (instrumented, instr_sum) = run(Some(tel.clone()));
    assert_eq!(fingerprint(&clean), fingerprint(&instrumented));
    assert_eq!(clean_sum, instr_sum, "trace summaries diverged");
    // Telemetry dispatch counts agree with the trace's own accounting.
    assert_eq!(
        tel.snapshot().counter("gpm_dispatches_total"),
        Some(instr_sum.dispatches)
    );
}

#[test]
fn execenv_run_is_reuse_invariant_for_plain_replays() {
    let w = workload_by_name("NBody").unwrap();
    let target = PerfTarget::new(1.0, 1.0);
    let fresh = {
        let mut gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
        ExecEnv::new().run(&ctx().sim, &w, &mut gov, target, 0, false)
    };
    let env = ExecEnv::default();
    let _warmup = {
        let mut gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
        env.run(&ctx().sim, &w, &mut gov, target, 0, false)
    };
    let reused = {
        let mut gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
        env.run(&ctx().sim, &w, &mut gov, target, 0, false)
    };
    assert_eq!(
        serde_json::to_string(&fresh.per_kernel).unwrap(),
        serde_json::to_string(&reused.per_kernel).unwrap()
    );
    assert_eq!(
        fresh.total_energy_j().to_bits(),
        reused.total_energy_j().to_bits()
    );
    assert_eq!(
        fresh.wall_time_s().to_bits(),
        reused.wall_time_s().to_bits()
    );
}

#[test]
fn cached_baselines_are_bit_identical_to_uncached_recomputation() {
    let env = ExecEnv::new();
    // A fresh context so this test owns the cache-hit accounting.
    let local = EvalContext::build(EvalOptions::fast());
    for w in suite() {
        let (cached_run, cached_target) = env.baseline(&local, &w);
        let (raw_run, raw_target) = turbo_core_baseline(&local.sim, &w);
        assert_eq!(
            cached_target.total_ginstructions().to_bits(),
            raw_target.total_ginstructions().to_bits(),
            "{}: cached target instructions differ",
            w.name()
        );
        assert_eq!(
            cached_target.total_time_s().to_bits(),
            raw_target.total_time_s().to_bits(),
            "{}: cached target time differs",
            w.name()
        );
        assert_eq!(
            cached_run.total_energy_j().to_bits(),
            raw_run.total_energy_j().to_bits(),
            "{}: cached baseline energy differs",
            w.name()
        );
    }
    // Second resolution round: all hits, no recomputation.
    let after_first = local.baseline_stats();
    for w in suite() {
        let _ = env.baseline(&local, &w);
    }
    let after_second = local.baseline_stats();
    assert_eq!(after_first.computed, suite().len() as u64);
    assert_eq!(after_second.computed, after_first.computed);
    assert_eq!(after_second.hits, after_first.hits + suite().len() as u64);
}

#[test]
fn concurrent_resolution_simulates_each_baseline_once() {
    let local = EvalContext::build(EvalOptions::fast());
    let names = ["kmeans", "Spmv", "EigenValue", "NBody"];
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                let env = ExecEnv::new();
                for name in names {
                    let w = workload_by_name(name).unwrap();
                    let (_, target) = env.baseline(&local, &w);
                    assert!(target.total_time_s() > 0.0);
                }
            });
        }
    });
    let stats = local.baseline_stats();
    assert_eq!(
        stats.computed,
        names.len() as u64,
        "each workload's baseline must be simulated exactly once"
    );
    assert_eq!(stats.hits, (names.len() * 3) as u64);
}

// ---------------------------------------------------------------------------
// Golden guarantee for the batched flat-forest inference engine: the
// allocation-free `predict_batch` path plus the dense search memo must
// leave every governor decision — and every evaluation count feeding the
// overhead model — byte-identical to the seed's scalar nested traversal.
// ---------------------------------------------------------------------------

/// The seed's scalar RF inference path, reconstructed: one freshly
/// allocated feature vector per call, nested tree traversal, and the
/// trait's default looped `predict_batch`.
#[derive(Debug, Clone)]
struct NestedRfPredictor(RandomForestPredictor);

impl PowerPerfPredictor for NestedRfPredictor {
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate {
        let features = encode_features(&snapshot.counters, cfg);
        PowerPerfEstimate {
            time_s: self.0.time_forest().predict(&features).exp().max(1e-9),
            gpu_power_w: self.0.power_forest().predict(&features).max(0.1),
        }
    }

    fn name(&self) -> &str {
        "random-forest"
    }
}

fn mpc_cfg() -> MpcConfig {
    MpcConfig {
        horizon_mode: HorizonMode::default(),
        overhead: OverheadModel::default(),
        store_truth: false,
        ..MpcConfig::default()
    }
}

#[test]
fn batched_mpc_decisions_are_byte_identical_to_seed_scalar_path() {
    let env = ExecEnv::new();
    for name in ["kmeans", "Spmv"] {
        let w = workload_by_name(name).unwrap();
        let (_, target) = env.baseline(ctx(), &w);
        let mut batched = MpcGovernor::new(ctx().rf.clone(), ctx().sim.params().clone(), mpc_cfg());
        let mut nested = MpcGovernor::new(
            NestedRfPredictor(ctx().rf.clone()),
            ctx().sim.params().clone(),
            mpc_cfg(),
        );
        let b = env.run(&ctx().sim, &w, &mut batched, target, 0, false);
        let n = env.run(&ctx().sim, &w, &mut nested, target, 0, false);
        assert_eq!(
            serde_json::to_string(&b).unwrap(),
            serde_json::to_string(&n).unwrap(),
            "{name}: MPC trajectory diverged between batched and seed scalar inference"
        );
        assert_eq!(
            serde_json::to_string(batched.stats()).unwrap(),
            serde_json::to_string(nested.stats()).unwrap(),
            "{name}: MPC stats (horizons / evaluation counts) diverged"
        );
    }
}

#[test]
fn batched_ppk_decisions_are_byte_identical_to_seed_scalar_path() {
    let env = ExecEnv::new();
    let w = workload_by_name("NBody").unwrap();
    let (_, target) = env.baseline(ctx(), &w);
    let mut batched = PpkGovernor::new(
        ctx().rf.clone(),
        ctx().sim.params().clone(),
        ConfigSpace::paper_campaign(),
        OverheadModel::default(),
    );
    let mut nested = PpkGovernor::new(
        NestedRfPredictor(ctx().rf.clone()),
        ctx().sim.params().clone(),
        ConfigSpace::paper_campaign(),
        OverheadModel::default(),
    );
    let b = env.run(&ctx().sim, &w, &mut batched, target, 0, false);
    let n = env.run(&ctx().sim, &w, &mut nested, target, 0, false);
    assert_eq!(
        serde_json::to_string(&b).unwrap(),
        serde_json::to_string(&n).unwrap(),
        "PPK trajectory diverged between batched and seed scalar inference"
    );
}

#[test]
fn batched_path_is_decision_identical_traced_and_faulted() {
    let w = workload_by_name("EigenValue").unwrap();
    for faulted in [false, true] {
        // The zero plan is a value-identical passthrough, so the first
        // iteration exercises the clean traced path through identical code.
        let plan = if faulted {
            FaultPlan::uniform(0xFEED_BEEF, 0.15)
        } else {
            FaultPlan::zero(1)
        };
        let (batched_run, batched_sum, nested_run, nested_sum) = {
            let run_variant = |nested: bool| {
                let agg = Arc::new(AggregateSink::new());
                let env = ExecEnv::new()
                    .with_trace(agg.clone())
                    .with_fault_plan(plan.clone());
                let (_, target) = env.baseline(ctx(), &w);
                let result = if nested {
                    let mut gov = MpcGovernor::new(
                        FaultyPredictor::new(NestedRfPredictor(ctx().rf.clone()), &plan),
                        ctx().sim.params().clone(),
                        mpc_cfg(),
                    );
                    env.run(&ctx().sim, &w, &mut gov, target, 0, false)
                } else {
                    let mut gov = MpcGovernor::new(
                        FaultyPredictor::new(ctx().rf.clone(), &plan),
                        ctx().sim.params().clone(),
                        mpc_cfg(),
                    );
                    env.run(&ctx().sim, &w, &mut gov, target, 0, false)
                };
                (result, agg.summary())
            };
            let (b, bs) = run_variant(false);
            let (n, ns) = run_variant(true);
            (b, bs, n, ns)
        };
        assert_eq!(
            serde_json::to_string(&batched_run).unwrap(),
            serde_json::to_string(&nested_run).unwrap(),
            "faulted={faulted}: trajectory diverged between batched and seed scalar paths"
        );
        assert_eq!(
            batched_sum.decisions, nested_sum.decisions,
            "faulted={faulted}: decision counts diverged"
        );
        assert_eq!(
            batched_sum.dispatches, nested_sum.dispatches,
            "faulted={faulted}: dispatch counts diverged"
        );
        assert_eq!(
            batched_sum.horizon_evaluations, nested_sum.horizon_evaluations,
            "faulted={faulted}: horizon evaluation counts diverged"
        );
    }
}

#[test]
fn baseline_resolutions_are_traced_with_cache_state() {
    let local = EvalContext::build(EvalOptions::fast());
    let ring = Arc::new(RingSink::new(64));
    let env = ExecEnv::new().with_trace(ring.clone());
    let w = workload_by_name("kmeans").unwrap();
    let _ = env.baseline(&local, &w);
    let _ = env.baseline(&local, &w);
    let cached_flags: Vec<bool> = ring
        .snapshot()
        .iter()
        .filter_map(|e| match e {
            gpm_trace::TraceEvent::BaselineResolved { cached, .. } => Some(*cached),
            _ => None,
        })
        .collect();
    assert_eq!(cached_flags, vec![false, true]);
}
