//! The parallel measurement campaign must be byte-identical regardless
//! of worker count or the order in which workers happen to finish.
//! Every artifact in `results/` descends from a campaign dataset, so
//! this is the root determinism guarantee behind the reproduction
//! pipeline's tolerance gates.

use gpm_harness::{parallel_campaign, parallel_campaign_auto, training_kernels, training_space};
use gpm_hw::HwConfig;
use gpm_model::Dataset;
use gpm_sim::ApuSimulator;

/// Serialized bytes of every sample, in dataset order. Comparing the
/// encoded form (rather than `PartialEq` on floats) pins the exact bit
/// patterns that end up in `results/campaign.json`.
fn campaign_bytes(ds: &Dataset) -> String {
    serde_json::to_string(&ds.samples().to_vec()).expect("samples serialize")
}

#[test]
fn campaign_is_byte_identical_across_thread_counts() {
    let sim = ApuSimulator::default();
    let kernels = training_kernels();
    let space = training_space(3);

    let sequential = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
    let expected = campaign_bytes(&sequential);

    for threads in [1usize, 2] {
        let par = parallel_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE, threads);
        assert_eq!(
            campaign_bytes(&par),
            expected,
            "campaign diverged at {threads} worker threads"
        );
    }

    let auto = parallel_campaign_auto(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
    assert_eq!(
        campaign_bytes(&auto),
        expected,
        "campaign diverged with auto-sized worker pool"
    );
}

#[test]
fn campaign_is_independent_of_worker_completion_order() {
    let sim = ApuSimulator::default();
    let kernels = training_kernels();
    let space = training_space(4);

    // More workers than kernels maximizes scheduling freedom: chunks are
    // single kernels and finish in whatever order the OS picks. Repeat
    // the run so a lucky in-order completion cannot mask a reassembly
    // bug.
    let reference = campaign_bytes(&parallel_campaign(
        &sim,
        &kernels,
        &space,
        HwConfig::FAIL_SAFE,
        1,
    ));
    for round in 0..4 {
        let par = parallel_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE, 64);
        assert_eq!(
            campaign_bytes(&par),
            reference,
            "round {round} produced a different byte stream"
        );
    }
}
