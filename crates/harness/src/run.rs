//! Replay result types: the per-kernel and per-invocation records every
//! run of the engine in [`crate::env`] produces.
//!
//! All replays go through [`ExecEnv`](crate::env::ExecEnv):
//!
//! ```
//! use gpm_harness::env::ExecEnv;
//! use gpm_governors::{PerfTarget, TurboCore};
//! use gpm_sim::ApuSimulator;
//! use gpm_workloads::workload_by_name;
//!
//! let sim = ApuSimulator::default();
//! let w = workload_by_name("Spmv").unwrap();
//! let mut tc = TurboCore::new(sim.params().tdp_w);
//! let run = ExecEnv::new().run(&sim, &w, &mut tc, PerfTarget::new(1.0, 1.0), 0, false);
//! assert!(run.total_energy_j() > 0.0);
//! ```

use gpm_hw::HwConfig;
use gpm_sim::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// Per-invocation record within a [`RunResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRun {
    /// Position within the application.
    pub position: usize,
    /// Kernel name.
    pub name: String,
    /// Configuration the governor chose.
    pub config: HwConfig,
    /// Measured execution time, seconds.
    pub time_s: f64,
    /// Kernel energy, joules.
    pub energy_j: f64,
    /// Instructions, giga-instructions.
    pub gi: f64,
    /// Optimizer overhead charged before this kernel, seconds.
    pub overhead_s: f64,
    /// Horizon used, for MPC-style governors.
    pub horizon: Option<usize>,
}

impl KernelRun {
    /// Kernel instruction throughput, giga-instructions per second.
    pub fn throughput(&self) -> f64 {
        self.gi / self.time_s.max(1e-12)
    }
}

/// Totals of one application invocation under one governor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Governor name.
    pub governor: String,
    /// Workload name.
    pub workload: String,
    /// Sum of kernel execution times, seconds (the `ΣT` of Eq. 1).
    pub kernel_time_s: f64,
    /// Sum of optimizer overheads, seconds.
    pub overhead_time_s: f64,
    /// Sum of DVFS state-transition stalls, seconds (0 unless the
    /// simulator's transition model is enabled).
    pub transition_time_s: f64,
    /// Kernel-phase energy breakdown.
    pub energy: EnergyBreakdown,
    /// Energy consumed while the optimizer ran between kernels.
    pub overhead_energy: EnergyBreakdown,
    /// Total instructions, giga-instructions.
    pub ginstructions: f64,
    /// Per-kernel details.
    pub per_kernel: Vec<KernelRun>,
}

impl RunResult {
    /// End-to-end wall time: kernels plus optimizer overheads plus any
    /// DVFS transition stalls (the paper's worst case of back-to-back
    /// kernels).
    pub fn wall_time_s(&self) -> f64 {
        self.kernel_time_s + self.overhead_time_s + self.transition_time_s
    }

    /// Total chip energy including optimizer overhead energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j() + self.overhead_energy.total_j()
    }

    /// GPU-domain energy including the GPU static energy burned during
    /// optimization (Figure 10's metric), joules.
    pub fn gpu_energy_j(&self) -> f64 {
        self.energy.gpu_j + self.overhead_energy.gpu_j
    }

    /// CPU-domain energy, joules.
    pub fn cpu_energy_j(&self) -> f64 {
        self.energy.cpu_j + self.overhead_energy.cpu_j
    }

    /// Application kernel throughput, giga-instructions per second over
    /// wall time.
    pub fn throughput(&self) -> f64 {
        self.ginstructions / self.wall_time_s().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ExecEnv;
    use gpm_governors::{FixedGovernor, PerfTarget, TurboCore};
    use gpm_sim::ApuSimulator;
    use gpm_workloads::workload_by_name;

    fn sim() -> ApuSimulator {
        ApuSimulator::noiseless()
    }

    #[test]
    fn totals_are_sums_of_per_kernel() {
        let sim = sim();
        let w = workload_by_name("Spmv").unwrap();
        let mut gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
        let res = ExecEnv::new().run(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false);
        assert_eq!(res.per_kernel.len(), 30);
        let t: f64 = res.per_kernel.iter().map(|k| k.time_s).sum();
        assert!((t - res.kernel_time_s).abs() < 1e-9);
        let gi: f64 = res.per_kernel.iter().map(|k| k.gi).sum();
        assert!((gi - res.ginstructions).abs() < 1e-9);
        assert_eq!(res.overhead_time_s, 0.0);
        assert_eq!(res.wall_time_s(), res.kernel_time_s);
    }

    #[test]
    fn turbo_core_run_is_deterministic() {
        let sim = ApuSimulator::default();
        let w = workload_by_name("kmeans").unwrap();
        let env = ExecEnv::new();
        let run = |i: usize| {
            let mut gov = TurboCore::new(95.0);
            let _ = i;
            env.run(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false)
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.kernel_time_s, b.kernel_time_s);
        assert_eq!(a.total_energy_j(), b.total_energy_j());
    }

    #[test]
    fn overhead_energy_accrues_for_optimizing_governors() {
        use gpm_governors::{OverheadModel, PpkGovernor};
        use gpm_hw::ConfigSpace;
        use gpm_sim::{OraclePredictor, SimParams};
        let sim = sim();
        let w = workload_by_name("EigenValue").unwrap();
        let env = ExecEnv::new();
        // Target from a fail-safe run.
        let mut fixed = FixedGovernor::new(HwConfig::FAIL_SAFE);
        let base = env.run(&sim, &w, &mut fixed, PerfTarget::new(1.0, 1.0), 0, false);
        let target = PerfTarget::new(base.ginstructions, base.kernel_time_s);
        let mut ppk = PpkGovernor::new(
            OraclePredictor::new(&sim),
            SimParams::noiseless(),
            ConfigSpace::paper_campaign(),
            OverheadModel::default(),
        )
        .with_truth_snapshots(true);
        let res = env.run(&sim, &w, &mut ppk, target, 0, true);
        assert!(res.overhead_time_s > 0.0);
        assert!(res.overhead_energy.total_j() > 0.0);
        assert!(res.total_energy_j() > res.energy.total_j());
    }

    #[test]
    fn per_kernel_throughput_positive() {
        let sim = sim();
        let w = workload_by_name("hybridsort").unwrap();
        let mut gov = FixedGovernor::new(HwConfig::MAX_PERF);
        let res = ExecEnv::new().run(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false);
        for k in &res.per_kernel {
            assert!(k.throughput() > 0.0, "{} throughput", k.name);
        }
    }
}
