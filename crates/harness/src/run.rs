//! The core replay loop: one application invocation under one governor.

use gpm_faults::{FaultInjector, FaultKey, NoFaults};
use gpm_governors::{Governor, KernelContext, PerfTarget};
use gpm_hw::HwConfig;
use gpm_sim::{EnergyBreakdown, KernelOutcome, Platform};
use gpm_trace::{FailSafeReason, FaultChannelKind, NoopSink, TraceEvent, TraceSink};
use gpm_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Per-invocation record within a [`RunResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelRun {
    /// Position within the application.
    pub position: usize,
    /// Kernel name.
    pub name: String,
    /// Configuration the governor chose.
    pub config: HwConfig,
    /// Measured execution time, seconds.
    pub time_s: f64,
    /// Kernel energy, joules.
    pub energy_j: f64,
    /// Instructions, giga-instructions.
    pub gi: f64,
    /// Optimizer overhead charged before this kernel, seconds.
    pub overhead_s: f64,
    /// Horizon used, for MPC-style governors.
    pub horizon: Option<usize>,
}

impl KernelRun {
    /// Kernel instruction throughput, giga-instructions per second.
    pub fn throughput(&self) -> f64 {
        self.gi / self.time_s.max(1e-12)
    }
}

/// Totals of one application invocation under one governor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Governor name.
    pub governor: String,
    /// Workload name.
    pub workload: String,
    /// Sum of kernel execution times, seconds (the `ΣT` of Eq. 1).
    pub kernel_time_s: f64,
    /// Sum of optimizer overheads, seconds.
    pub overhead_time_s: f64,
    /// Sum of DVFS state-transition stalls, seconds (0 unless the
    /// simulator's transition model is enabled).
    pub transition_time_s: f64,
    /// Kernel-phase energy breakdown.
    pub energy: EnergyBreakdown,
    /// Energy consumed while the optimizer ran between kernels.
    pub overhead_energy: EnergyBreakdown,
    /// Total instructions, giga-instructions.
    pub ginstructions: f64,
    /// Per-kernel details.
    pub per_kernel: Vec<KernelRun>,
}

impl RunResult {
    /// End-to-end wall time: kernels plus optimizer overheads plus any
    /// DVFS transition stalls (the paper's worst case of back-to-back
    /// kernels).
    pub fn wall_time_s(&self) -> f64 {
        self.kernel_time_s + self.overhead_time_s + self.transition_time_s
    }

    /// Total chip energy including optimizer overhead energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j() + self.overhead_energy.total_j()
    }

    /// GPU-domain energy including the GPU static energy burned during
    /// optimization (Figure 10's metric), joules.
    pub fn gpu_energy_j(&self) -> f64 {
        self.energy.gpu_j + self.overhead_energy.gpu_j
    }

    /// CPU-domain energy, joules.
    pub fn cpu_energy_j(&self) -> f64 {
        self.energy.cpu_j + self.overhead_energy.cpu_j
    }

    /// Application kernel throughput, giga-instructions per second over
    /// wall time.
    pub fn throughput(&self) -> f64 {
        self.ginstructions / self.wall_time_s().max(1e-12)
    }
}

/// Replays `workload` once under `governor`.
///
/// `run_index` distinguishes the profiling invocation (0) from later ones;
/// `provide_truth` hands the governor ground-truth kernel characteristics
/// (oracle-predictor studies only). Optimizer overhead is charged at the
/// paper's MPC host configuration (`[P5, NB0, DPM0, 2 CUs]`) with the GPU
/// idle, per Section V's worst-case assumption.
///
/// The governor's `end_run` is invoked before returning.
///
/// `sim` is any [`Platform`] — the live analytical simulator or a
/// recorded [`ReplayPlatform`](gpm_sim::ReplayPlatform) measurement table
/// (`&ApuSimulator` coerces automatically).
pub fn run_once(
    sim: &dyn Platform,
    workload: &Workload,
    governor: &mut dyn Governor,
    target: PerfTarget,
    run_index: usize,
    provide_truth: bool,
) -> RunResult {
    run_once_traced(
        sim,
        workload,
        governor,
        target,
        run_index,
        provide_truth,
        &NoopSink,
    )
}

/// [`run_once`] with decision-level observability: one [`TraceEvent`] per
/// dispatch, decision, outcome, and headroom check is emitted to `sink`.
///
/// Tracing is strictly read-only: with any sink installed the replay makes
/// byte-identical decisions to the untraced path (all event construction is
/// gated on [`TraceSink::enabled`] and consumes only values the replay
/// already computed). Governor-internal events (search statistics,
/// fail-safe triggers) are *not* emitted here — install the sink on the
/// governor too via [`Governor::set_trace_sink`] to capture those.
#[allow(clippy::too_many_arguments)]
pub fn run_once_traced(
    sim: &dyn Platform,
    workload: &Workload,
    governor: &mut dyn Governor,
    target: PerfTarget,
    run_index: usize,
    provide_truth: bool,
    sink: &dyn TraceSink,
) -> RunResult {
    run_once_faulted(
        sim,
        workload,
        governor,
        target,
        run_index,
        provide_truth,
        sink,
        &NoFaults,
    )
}

/// [`run_once_traced`] with deterministic fault injection on the dispatch
/// path: knob-transition failures (bounded retry, then a
/// `HwConfig::FAIL_SAFE` fallback), transient TDP-throttle events on the
/// physical outcome, and corruption of the *observation* handed to the
/// governor (the physical accounting stays truthful). Every firing and
/// every recovery is emitted through `sink`.
///
/// With an injector whose [`FaultInjector::enabled`] is `false` (e.g.
/// [`NoFaults`] or a zero [`FaultPlan`](gpm_faults::FaultPlan)) this is
/// byte-identical to [`run_once_traced`] — property-tested in
/// `tests/fault_invariance.rs`.
#[allow(clippy::too_many_arguments)]
pub fn run_once_faulted(
    sim: &dyn Platform,
    workload: &Workload,
    governor: &mut dyn Governor,
    target: PerfTarget,
    run_index: usize,
    provide_truth: bool,
    sink: &dyn TraceSink,
    faults: &dyn FaultInjector,
) -> RunResult {
    let tracing = sink.enabled();
    let injecting = faults.enabled();
    if tracing {
        sink.record(&TraceEvent::RunStart {
            workload: workload.name().to_string(),
            governor: governor.name().to_string(),
            run_index,
            total_kernels: workload.len(),
        });
    }
    let mut result = RunResult {
        governor: governor.name().to_string(),
        workload: workload.name().to_string(),
        kernel_time_s: 0.0,
        overhead_time_s: 0.0,
        transition_time_s: 0.0,
        energy: EnergyBreakdown::default(),
        overhead_energy: EnergyBreakdown::default(),
        ginstructions: 0.0,
        per_kernel: Vec::with_capacity(workload.len()),
    };

    let mut prev_config: Option<gpm_hw::HwConfig> = None;
    for (position, kernel) in workload.kernels().iter().enumerate() {
        let ctx = KernelContext {
            position,
            run_index,
            elapsed_kernel_s: result.kernel_time_s,
            elapsed_gi: result.ginstructions,
            target,
            total_kernels: Some(workload.len()),
        };
        if tracing {
            sink.record(&TraceEvent::Dispatch {
                run_index,
                position,
                kernel: kernel.name().to_string(),
            });
        }
        let decision = governor.select(&ctx);
        if tracing {
            sink.record(&TraceEvent::Decision {
                run_index,
                position,
                config: decision.config,
                horizon: decision.horizon,
                evaluations: decision.evaluations,
                overhead_s: decision.overhead_s,
                predicted_time_s: decision.predicted.map(|p| p.time_s),
                predicted_power_w: decision.predicted.map(|p| p.chip_power_w),
                predicted_energy_j: decision.predicted.map(|p| p.energy_j),
            });
        }
        if decision.overhead_s > 0.0 {
            // Optimizer time overlapping a host CPU phase is hidden: the
            // CPU was busy with application work anyway, so neither extra
            // wall time nor extra energy is charged for that portion
            // (Section VI-E). With no modelled CPU phases (the default)
            // this is the paper's worst case: everything is charged.
            let visible = (decision.overhead_s - workload.cpu_phase_s(position)).max(0.0);
            result.overhead_time_s += visible;
            if visible > 0.0 {
                let oh = sim.optimizer_energy(HwConfig::MPC_HOST, visible);
                result.overhead_energy.accumulate(&oh);
            }
        }

        // Route the knob-transition request through the fault injector:
        // failed attempts cost retry latency, and a transition that fails
        // its full retry budget leaves the chip at the fail-safe state.
        let fault_key = FaultKey {
            run_index,
            position,
        };
        let mut executed = decision.config;
        if injecting {
            if let Some(prev) = prev_config {
                if let Some(t) = faults.transition(fault_key, prev, decision.config) {
                    executed = t.config;
                    if t.penalty_s > 0.0 {
                        result.transition_time_s += t.penalty_s;
                        let te = sim.optimizer_energy(prev, t.penalty_s);
                        result.overhead_energy.accumulate(&te);
                    }
                    if tracing {
                        sink.record(&TraceEvent::FaultInjected {
                            run_index,
                            position,
                            channel: FaultChannelKind::TransitionFail,
                            magnitude: t.failed_attempts as f64,
                        });
                        if t.fell_back {
                            sink.record(&TraceEvent::FailSafe {
                                run_index,
                                position,
                                reason: FailSafeReason::TransitionFailed,
                            });
                        } else {
                            sink.record(&TraceEvent::Recovered {
                                run_index,
                                position,
                                channel: FaultChannelKind::TransitionFail,
                                retries: t.failed_attempts,
                            });
                        }
                    }
                }
            }
        }

        // DVFS transition stall between the previous kernel's state and
        // this decision (free unless the simulator's transition model is
        // enabled).
        if let Some(prev) = prev_config {
            let stall = gpm_sim::transition::transition_cost_s(sim.params(), prev, executed);
            if stall > 0.0 {
                result.transition_time_s += stall;
                let te = sim.optimizer_energy(executed, stall);
                result.overhead_energy.accumulate(&te);
            }
        }
        prev_config = Some(executed);

        let mut outcome = sim.evaluate(kernel, executed);
        if injecting {
            if let Some(f) = faults.throttle(fault_key, &mut outcome) {
                if tracing {
                    sink.record(&TraceEvent::FaultInjected {
                        run_index,
                        position,
                        channel: f.channel,
                        magnitude: f.magnitude,
                    });
                }
            }
        }
        result.kernel_time_s += outcome.time_s;
        result.ginstructions += outcome.ginstructions;
        result.energy.accumulate(&outcome.energy);
        result.per_kernel.push(KernelRun {
            position,
            name: kernel.name().to_string(),
            config: executed,
            time_s: outcome.time_s,
            energy_j: outcome.energy.total_j(),
            gi: outcome.ginstructions,
            overhead_s: decision.overhead_s,
            horizon: decision.horizon,
        });

        if tracing {
            let observed_power_w = if outcome.time_s > 0.0 {
                Some(outcome.energy.total_j() / outcome.time_s)
            } else {
                None
            };
            // Signed errors follow the convention predicted − observed:
            // positive means the predictor overestimated.
            sink.record(&TraceEvent::Outcome {
                run_index,
                position,
                config: executed,
                time_s: outcome.time_s,
                energy_j: outcome.energy.total_j(),
                gi: outcome.ginstructions,
                time_error_s: decision.predicted.map(|p| p.time_s - outcome.time_s),
                power_error_w: decision
                    .predicted
                    .and_then(|p| observed_power_w.map(|ow| p.chip_power_w - ow)),
                energy_error_j: decision
                    .predicted
                    .map(|p| p.energy_j - outcome.energy.total_j()),
            });
            // Eq. 5 slack after this kernel retired: how much longer the
            // run could afford to take while still meeting the target.
            sink.record(&TraceEvent::Headroom {
                run_index,
                position,
                slack_s: target.time_cap(result.ginstructions, result.kernel_time_s, 0.0),
            });
        }

        // Optionally corrupt the *observation* the governor learns from —
        // the physical accounting above stays truthful.
        let observed: Option<KernelOutcome> = if injecting {
            let mut obs = outcome.clone();
            faults.corrupt_observation(fault_key, &mut obs).map(|f| {
                if tracing {
                    sink.record(&TraceEvent::FaultInjected {
                        run_index,
                        position,
                        channel: f.channel,
                        magnitude: f.magnitude,
                    });
                }
                obs
            })
        } else {
            None
        };
        let truth = provide_truth.then_some(kernel);
        governor.observe(&ctx, executed, observed.as_ref().unwrap_or(&outcome), truth);
    }
    governor.end_run();
    if tracing {
        sink.record(&TraceEvent::RunEnd {
            run_index,
            kernel_time_s: result.kernel_time_s,
            overhead_time_s: result.overhead_time_s,
            transition_time_s: result.transition_time_s,
            energy_j: result.total_energy_j(),
            gi: result.ginstructions,
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_governors::{FixedGovernor, TurboCore};
    use gpm_sim::ApuSimulator;
    use gpm_workloads::workload_by_name;

    fn sim() -> ApuSimulator {
        ApuSimulator::noiseless()
    }

    #[test]
    fn totals_are_sums_of_per_kernel() {
        let sim = sim();
        let w = workload_by_name("Spmv").unwrap();
        let mut gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
        let res = run_once(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false);
        assert_eq!(res.per_kernel.len(), 30);
        let t: f64 = res.per_kernel.iter().map(|k| k.time_s).sum();
        assert!((t - res.kernel_time_s).abs() < 1e-9);
        let gi: f64 = res.per_kernel.iter().map(|k| k.gi).sum();
        assert!((gi - res.ginstructions).abs() < 1e-9);
        assert_eq!(res.overhead_time_s, 0.0);
        assert_eq!(res.wall_time_s(), res.kernel_time_s);
    }

    #[test]
    fn turbo_core_run_is_deterministic() {
        let sim = ApuSimulator::default();
        let w = workload_by_name("kmeans").unwrap();
        let run = |i: usize| {
            let mut gov = TurboCore::new(95.0);
            let _ = i;
            run_once(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false)
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.kernel_time_s, b.kernel_time_s);
        assert_eq!(a.total_energy_j(), b.total_energy_j());
    }

    #[test]
    fn overhead_energy_accrues_for_optimizing_governors() {
        use gpm_governors::{OverheadModel, PpkGovernor};
        use gpm_hw::ConfigSpace;
        use gpm_sim::{OraclePredictor, SimParams};
        let sim = sim();
        let w = workload_by_name("EigenValue").unwrap();
        // Target from a fail-safe run.
        let mut fixed = FixedGovernor::new(HwConfig::FAIL_SAFE);
        let base = run_once(&sim, &w, &mut fixed, PerfTarget::new(1.0, 1.0), 0, false);
        let target = PerfTarget::new(base.ginstructions, base.kernel_time_s);
        let mut ppk = PpkGovernor::new(
            OraclePredictor::new(&sim),
            SimParams::noiseless(),
            ConfigSpace::paper_campaign(),
            OverheadModel::default(),
        )
        .with_truth_snapshots(true);
        let res = run_once(&sim, &w, &mut ppk, target, 0, true);
        assert!(res.overhead_time_s > 0.0);
        assert!(res.overhead_energy.total_j() > 0.0);
        assert!(res.total_energy_j() > res.energy.total_j());
    }

    #[test]
    fn per_kernel_throughput_positive() {
        let sim = sim();
        let w = workload_by_name("hybridsort").unwrap();
        let mut gov = FixedGovernor::new(HwConfig::MAX_PERF);
        let res = run_once(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false);
        for k in &res.per_kernel {
            assert!(k.throughput() > 0.0, "{} throughput", k.name);
        }
    }
}
