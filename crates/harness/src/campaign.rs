//! Parallel measurement campaign.
//!
//! The paper's campaign measured every benchmark kernel at 336 hardware
//! configurations. On the simulator this is embarrassingly parallel:
//! kernels are partitioned across worker threads (crossbeam scoped
//! threads), each runs its share of the campaign, and results merge into
//! one [`Dataset`]. Sample order is normalized afterwards so the parallel
//! campaign is bit-identical to the sequential one.

use gpm_hw::{ConfigSpace, HwConfig};
use gpm_model::{Dataset, Sample};
use gpm_sim::{ApuSimulator, KernelCharacteristics};
use parking_lot::Mutex;

/// Runs the measurement campaign for `kernels` over `space` using
/// `threads` workers, profiling counters at `profile_cfg`.
///
/// Produces exactly the same dataset as
/// [`Dataset::from_campaign`] (kernel-major, configuration-minor order),
/// verified by tests.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn parallel_campaign(
    sim: &ApuSimulator,
    kernels: &[KernelCharacteristics],
    space: &ConfigSpace,
    profile_cfg: HwConfig,
    threads: usize,
) -> Dataset {
    assert!(threads > 0, "at least one worker thread is required");
    let results: Mutex<Vec<(usize, Vec<Sample>)>> = Mutex::new(Vec::with_capacity(threads));

    crossbeam::scope(|scope| {
        for (worker, chunk) in kernels
            .chunks(kernels.len().div_ceil(threads).max(1))
            .enumerate()
        {
            let results = &results;
            scope.spawn(move |_| {
                let part = Dataset::from_campaign(sim, chunk, space, profile_cfg);
                results.lock().push((worker, part.samples().to_vec()));
            });
        }
    })
    .expect("campaign worker panicked");

    let mut parts = results.into_inner();
    parts.sort_by_key(|(worker, _)| *worker);
    let samples: Vec<Sample> = parts.into_iter().flat_map(|(_, s)| s).collect();
    Dataset::from_samples(samples)
}

/// [`parallel_campaign`] sized to the host: worker count defaults to
/// [`std::thread::available_parallelism`] (1 if it cannot be queried).
/// The result is still bit-identical to the sequential campaign.
pub fn parallel_campaign_auto(
    sim: &ApuSimulator,
    kernels: &[KernelCharacteristics],
    space: &ConfigSpace,
    profile_cfg: HwConfig,
) -> Dataset {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    parallel_campaign(sim, kernels, space, profile_cfg, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::{CpuPState, GpuDpm};

    fn kernels() -> Vec<KernelCharacteristics> {
        vec![
            KernelCharacteristics::compute_bound("a", 10.0),
            KernelCharacteristics::memory_bound("b", 1.0),
            KernelCharacteristics::peak("c", 8.0),
            KernelCharacteristics::unscalable("d", 0.01),
            KernelCharacteristics::compute_bound("e", 20.0),
        ]
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        let space = ConfigSpace::nb_cu_sweep(CpuPState::P5, GpuDpm::Dpm4);
        let seq = Dataset::from_campaign(&sim, &ks, &space, HwConfig::FAIL_SAFE);
        for threads in [1, 2, 3, 8] {
            let par = parallel_campaign(&sim, &ks, &space, HwConfig::FAIL_SAFE, threads);
            assert_eq!(par.len(), seq.len(), "threads = {threads}");
            assert_eq!(par.samples(), seq.samples(), "threads = {threads}");
        }
    }

    #[test]
    fn more_threads_than_kernels_is_fine() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        let space = ConfigSpace::nb_cu_sweep(CpuPState::P5, GpuDpm::Dpm4);
        let par = parallel_campaign(&sim, &ks, &space, HwConfig::FAIL_SAFE, 64);
        assert_eq!(par.len(), ks.len() * space.len());
    }

    #[test]
    fn auto_worker_count_matches_sequential() {
        let sim = ApuSimulator::default();
        let ks = kernels();
        let space = ConfigSpace::nb_cu_sweep(CpuPState::P5, GpuDpm::Dpm4);
        let seq = Dataset::from_campaign(&sim, &ks, &space, HwConfig::FAIL_SAFE);
        let auto = parallel_campaign_auto(&sim, &ks, &space, HwConfig::FAIL_SAFE);
        assert_eq!(auto.samples(), seq.samples());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let sim = ApuSimulator::default();
        let space = ConfigSpace::nb_cu_sweep(CpuPState::P5, GpuDpm::Dpm4);
        let _ = parallel_campaign(&sim, &kernels(), &space, HwConfig::FAIL_SAFE, 0);
    }
}
