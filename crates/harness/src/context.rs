//! One-time experiment setup: the simulator plus the offline-trained
//! Random Forest predictor (Section IV-A3's "trained offline" step),
//! and the shared per-workload Turbo Core baseline cache.

use crate::run::RunResult;
use gpm_governors::PerfTarget;
use gpm_hw::{ConfigSpace, CuCount, GpuDpm, HwConfig, NbState};
use gpm_model::{ForestParams, RandomForestPredictor, TrainReport, TreeParams};
use gpm_sim::{ApuSimulator, KernelCharacteristics, SimParams};
use gpm_workloads::{suite, Workload};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs for building an [`EvalContext`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalOptions {
    /// Simulator calibration.
    pub sim_params: SimParams,
    /// Random-Forest hyper-parameters.
    pub forest: ForestParams,
    /// Keep every `stride`-th configuration of the 336-point campaign in
    /// the training set (1 = all).
    pub train_config_stride: usize,
    /// Held-out fraction for the accuracy report.
    pub test_fraction: f64,
    /// Seed for training and splits.
    pub seed: u64,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            sim_params: SimParams::default(),
            forest: ForestParams {
                num_trees: 24,
                tree: TreeParams {
                    max_depth: 11,
                    min_samples_leaf: 2,
                    feature_subsample: None,
                    threshold_candidates: 14,
                },
                bootstrap_fraction: 0.8,
            },
            train_config_stride: 2,
            test_fraction: 0.15,
            seed: 0xA10_7850,
        }
    }
}

impl EvalOptions {
    /// A deliberately small configuration for fast unit/integration tests.
    pub fn fast() -> EvalOptions {
        EvalOptions {
            forest: ForestParams {
                num_trees: 8,
                tree: TreeParams {
                    max_depth: 9,
                    min_samples_leaf: 3,
                    feature_subsample: None,
                    threshold_candidates: 8,
                },
                bootstrap_fraction: 0.6,
            },
            train_config_stride: 4,
            ..EvalOptions::default()
        }
    }
}

/// Serializable form of a trained context: everything needed to resume
/// experiments without re-running the campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedContext {
    options: EvalOptions,
    rf: RandomForestPredictor,
    rf_report: TrainReport,
}

/// Counters for the shared Turbo Core baseline cache of an
/// [`EvalContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BaselineCacheStats {
    /// Baselines actually simulated (cache misses).
    pub computed: u64,
    /// Baselines served from the cache.
    pub hits: u64,
}

/// The per-workload Turbo Core baseline store: one `(RunResult,
/// PerfTarget)` per workload name, computed on first use and shared by
/// every clone of the owning context (including across the threads of a
/// parallel campaign).
///
/// Keyed by workload name: the baseline depends only on the kernel
/// sequence, which the suite and the generator keep unique per name.
/// Workload mutations that leave the kernel sequence intact (e.g.
/// `with_cpu_phases`) share the baseline correctly — Turbo Core charges
/// no optimizer overhead, so CPU phases never enter its accounting.
struct BaselineCache {
    entries: Mutex<HashMap<String, (RunResult, PerfTarget)>>,
    computed: AtomicU64,
    hits: AtomicU64,
}

impl Default for BaselineCache {
    fn default() -> BaselineCache {
        BaselineCache {
            entries: Mutex::new(HashMap::new()),
            computed: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }
}

impl fmt::Debug for BaselineCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BaselineCache")
            .field("entries", &self.entries.lock().len())
            .field("computed", &self.computed.load(Ordering::Relaxed))
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .finish()
    }
}

impl BaselineCache {
    /// Returns the cached baseline for `workload`, computing it under the
    /// map lock on first use so concurrent resolvers simulate it exactly
    /// once. The boolean is `true` on a cache hit.
    fn resolve(
        &self,
        workload: &Workload,
        compute: impl FnOnce() -> (RunResult, PerfTarget),
    ) -> ((RunResult, PerfTarget), bool) {
        let mut entries = self.entries.lock();
        if let Some(found) = entries.get(workload.name()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (found.clone(), true);
        }
        let fresh = compute();
        entries.insert(workload.name().to_string(), fresh.clone());
        self.computed.fetch_add(1, Ordering::Relaxed);
        (fresh, false)
    }

    fn stats(&self) -> BaselineCacheStats {
        BaselineCacheStats {
            computed: self.computed.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }
}

/// Shared state for all experiments: the simulated APU and the trained
/// predictor, with its held-out accuracy (compare Section VI-D's 25%/12%
/// MAPE).
///
/// The context also owns two pieces of hot-path state that used to be
/// rebuilt per scheme evaluation: the 336-point paper campaign space
/// ([`EvalContext::campaign_space`]) and the per-workload Turbo Core
/// baseline cache ([`EvalContext::baseline_stats`]). Clones share both,
/// so a parallel campaign over one context simulates each workload's
/// baseline once.
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// The simulated APU ("the hardware").
    pub sim: ApuSimulator,
    /// The offline-trained Random Forest.
    pub rf: RandomForestPredictor,
    /// Held-out accuracy of `rf`.
    pub rf_report: TrainReport,
    /// Options the context was built with.
    pub options: EvalOptions,
    /// The paper's 336-point campaign space, built once per context.
    campaign_space: ConfigSpace,
    /// Per-workload Turbo Core baselines, shared across clones.
    baselines: Arc<BaselineCache>,
}

/// Every distinct kernel across the 15-benchmark suite — the training
/// corpus (the paper trains on "several benchmark suites").
pub fn training_kernels() -> Vec<KernelCharacteristics> {
    let mut kernels: Vec<KernelCharacteristics> = Vec::new();
    for w in suite() {
        for k in w.kernels() {
            if !kernels.iter().any(|have| have.name() == k.name()) {
                kernels.push(k.clone());
            }
        }
    }
    kernels
}

/// The (possibly strided) measurement-campaign space used for training.
pub fn training_space(stride: usize) -> ConfigSpace {
    let full = ConfigSpace::paper_campaign();
    if stride <= 1 {
        return full;
    }
    let cpus: Vec<_> = full.cpus().iter().copied().step_by(stride).collect();
    ConfigSpace::from_axes(
        cpus,
        NbState::ALL.to_vec(),
        GpuDpm::MEASURED.to_vec(),
        CuCount::ALL.to_vec(),
    )
}

impl EvalContext {
    /// Runs the measurement campaign (in parallel across the machine's
    /// cores; bit-identical to the sequential path) and trains the
    /// predictor.
    pub fn build(options: EvalOptions) -> EvalContext {
        let sim = ApuSimulator::new(options.sim_params.clone());
        let kernels = training_kernels();
        let space = training_space(options.train_config_stride);
        let dataset =
            crate::campaign::parallel_campaign_auto(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
        let (rf, rf_report) = RandomForestPredictor::train_and_evaluate(
            &dataset,
            &options.forest,
            options.test_fraction,
            options.seed,
        );
        EvalContext::assemble(sim, rf, rf_report, options)
    }

    /// Wires up the derived shared state (campaign space, baseline
    /// cache) around trained components.
    fn assemble(
        sim: ApuSimulator,
        rf: RandomForestPredictor,
        rf_report: TrainReport,
        options: EvalOptions,
    ) -> EvalContext {
        EvalContext {
            sim,
            rf,
            rf_report,
            options,
            campaign_space: ConfigSpace::paper_campaign(),
            baselines: Arc::new(BaselineCache::default()),
        }
    }

    /// The paper's 336-point measurement-campaign space, hoisted out of
    /// the per-evaluation hot path.
    pub fn campaign_space(&self) -> &ConfigSpace {
        &self.campaign_space
    }

    /// Resolves the Turbo Core baseline for `workload` through the
    /// shared cache; the boolean is `true` on a hit.
    pub(crate) fn resolve_baseline(&self, workload: &Workload) -> ((RunResult, PerfTarget), bool) {
        self.baselines.resolve(workload, || {
            crate::schemes::turbo_core_baseline(&self.sim, workload)
        })
    }

    /// Hit/miss counters of the shared baseline cache.
    pub fn baseline_stats(&self) -> BaselineCacheStats {
        self.baselines.stats()
    }
}

impl EvalContext {
    /// Persists the trained predictor (plus options and accuracy report)
    /// as JSON, so later sessions skip the campaign + training step.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let saved = SavedContext {
            options: self.options.clone(),
            rf: self.rf.clone(),
            rf_report: self.rf_report,
        };
        let json = serde_json::to_string(&saved).expect("context serializes");
        std::fs::write(path, json)
    }

    /// Restores a context saved with [`EvalContext::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed files yield
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<EvalContext> {
        let json = std::fs::read_to_string(path)?;
        let saved: SavedContext = serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(EvalContext::assemble(
            ApuSimulator::new(saved.options.sim_params.clone()),
            saved.rf,
            saved.rf_report,
            saved.options,
        ))
    }
}

impl Default for EvalContext {
    fn default() -> EvalContext {
        EvalContext::build(EvalOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_kernels_are_unique_and_plentiful() {
        let ks = training_kernels();
        assert!(ks.len() > 80, "only {} distinct kernels", ks.len());
        let mut names: Vec<&str> = ks.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ks.len());
    }

    #[test]
    fn strided_space_shrinks() {
        assert_eq!(training_space(1).len(), 336);
        let s2 = training_space(2);
        assert!(s2.len() < 336 && s2.len() >= 168);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
        let ctx = EvalContext::build(EvalOptions::fast());
        let dir = std::env::temp_dir().join("gpm_ctx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ctx.json");
        ctx.save(&path).unwrap();
        let loaded = EvalContext::load(&path).unwrap();
        let k = gpm_sim::KernelCharacteristics::compute_bound("probe", 12.0);
        let out = ctx.sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let snap = KernelSnapshot::counters_only(out.counters, HwConfig::FAIL_SAFE, 1.0);
        let a = ctx.rf.predict(&snap, HwConfig::MAX_PERF);
        let b = loaded.rf.predict(&snap, HwConfig::MAX_PERF);
        assert_eq!(a, b);
        assert_eq!(ctx.rf_report.time_mape, loaded.rf_report.time_mape);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("gpm_ctx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = EvalContext::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn baseline_cache_computes_once_and_shares_across_clones() {
        let ctx = EvalContext::build(EvalOptions::fast());
        let w = gpm_workloads::workload_by_name("Spmv").unwrap();
        let ((a, ta), hit0) = ctx.resolve_baseline(&w);
        let clone = ctx.clone();
        let ((b, tb), hit1) = clone.resolve_baseline(&w);
        assert!(!hit0 && hit1);
        assert_eq!(a, b);
        assert_eq!(ta.total_time_s(), tb.total_time_s());
        assert_eq!(ta.total_ginstructions(), tb.total_ginstructions());
        let stats = ctx.baseline_stats();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn campaign_space_is_the_paper_campaign() {
        let ctx = EvalContext::build(EvalOptions::fast());
        assert_eq!(ctx.campaign_space().len(), 336);
    }

    #[test]
    fn fast_context_trains_with_usable_accuracy() {
        let ctx = EvalContext::build(EvalOptions::fast());
        // The paper reports 25% performance and 12% power MAPE; our fast
        // configuration should land in the same regime (not wildly worse).
        assert!(
            ctx.rf_report.time_mape < 0.6,
            "time MAPE {}",
            ctx.rf_report.time_mape
        );
        assert!(
            ctx.rf_report.power_mape < 0.3,
            "power MAPE {}",
            ctx.rf_report.power_mape
        );
        assert!(ctx.rf_report.test_samples > 100);
    }
}
