//! One-time experiment setup: the simulator plus the offline-trained
//! Random Forest predictor (Section IV-A3's "trained offline" step).

use gpm_hw::{ConfigSpace, CuCount, GpuDpm, HwConfig, NbState};
use gpm_model::{ForestParams, RandomForestPredictor, TrainReport, TreeParams};
use gpm_sim::{ApuSimulator, KernelCharacteristics, SimParams};
use gpm_workloads::suite;
use serde::{Deserialize, Serialize};

/// Knobs for building an [`EvalContext`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalOptions {
    /// Simulator calibration.
    pub sim_params: SimParams,
    /// Random-Forest hyper-parameters.
    pub forest: ForestParams,
    /// Keep every `stride`-th configuration of the 336-point campaign in
    /// the training set (1 = all).
    pub train_config_stride: usize,
    /// Held-out fraction for the accuracy report.
    pub test_fraction: f64,
    /// Seed for training and splits.
    pub seed: u64,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            sim_params: SimParams::default(),
            forest: ForestParams {
                num_trees: 24,
                tree: TreeParams {
                    max_depth: 11,
                    min_samples_leaf: 2,
                    feature_subsample: None,
                    threshold_candidates: 14,
                },
                bootstrap_fraction: 0.8,
            },
            train_config_stride: 2,
            test_fraction: 0.15,
            seed: 0xA10_7850,
        }
    }
}

impl EvalOptions {
    /// A deliberately small configuration for fast unit/integration tests.
    pub fn fast() -> EvalOptions {
        EvalOptions {
            forest: ForestParams {
                num_trees: 8,
                tree: TreeParams {
                    max_depth: 9,
                    min_samples_leaf: 3,
                    feature_subsample: None,
                    threshold_candidates: 8,
                },
                bootstrap_fraction: 0.6,
            },
            train_config_stride: 4,
            ..EvalOptions::default()
        }
    }
}

/// Serializable form of a trained context: everything needed to resume
/// experiments without re-running the campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SavedContext {
    options: EvalOptions,
    rf: RandomForestPredictor,
    rf_report: TrainReport,
}

/// Shared state for all experiments: the simulated APU and the trained
/// predictor, with its held-out accuracy (compare Section VI-D's 25%/12%
/// MAPE).
#[derive(Debug, Clone)]
pub struct EvalContext {
    /// The simulated APU ("the hardware").
    pub sim: ApuSimulator,
    /// The offline-trained Random Forest.
    pub rf: RandomForestPredictor,
    /// Held-out accuracy of `rf`.
    pub rf_report: TrainReport,
    /// Options the context was built with.
    pub options: EvalOptions,
}

/// Every distinct kernel across the 15-benchmark suite — the training
/// corpus (the paper trains on "several benchmark suites").
pub fn training_kernels() -> Vec<KernelCharacteristics> {
    let mut kernels: Vec<KernelCharacteristics> = Vec::new();
    for w in suite() {
        for k in w.kernels() {
            if !kernels.iter().any(|have| have.name() == k.name()) {
                kernels.push(k.clone());
            }
        }
    }
    kernels
}

/// The (possibly strided) measurement-campaign space used for training.
pub fn training_space(stride: usize) -> ConfigSpace {
    let full = ConfigSpace::paper_campaign();
    if stride <= 1 {
        return full;
    }
    let cpus: Vec<_> = full.cpus().iter().copied().step_by(stride).collect();
    ConfigSpace::from_axes(
        cpus,
        NbState::ALL.to_vec(),
        GpuDpm::MEASURED.to_vec(),
        CuCount::ALL.to_vec(),
    )
}

impl EvalContext {
    /// Runs the measurement campaign (in parallel across the machine's
    /// cores; bit-identical to the sequential path) and trains the
    /// predictor.
    pub fn build(options: EvalOptions) -> EvalContext {
        let sim = ApuSimulator::new(options.sim_params.clone());
        let kernels = training_kernels();
        let space = training_space(options.train_config_stride);
        let dataset =
            crate::campaign::parallel_campaign_auto(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
        let (rf, rf_report) = RandomForestPredictor::train_and_evaluate(
            &dataset,
            &options.forest,
            options.test_fraction,
            options.seed,
        );
        EvalContext {
            sim,
            rf,
            rf_report,
            options,
        }
    }
}

impl EvalContext {
    /// Persists the trained predictor (plus options and accuracy report)
    /// as JSON, so later sessions skip the campaign + training step.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let saved = SavedContext {
            options: self.options.clone(),
            rf: self.rf.clone(),
            rf_report: self.rf_report,
        };
        let json = serde_json::to_string(&saved).expect("context serializes");
        std::fs::write(path, json)
    }

    /// Restores a context saved with [`EvalContext::save`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed files yield
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<EvalContext> {
        let json = std::fs::read_to_string(path)?;
        let saved: SavedContext = serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        Ok(EvalContext {
            sim: ApuSimulator::new(saved.options.sim_params.clone()),
            rf: saved.rf,
            rf_report: saved.rf_report,
            options: saved.options,
        })
    }
}

impl Default for EvalContext {
    fn default() -> EvalContext {
        EvalContext::build(EvalOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_kernels_are_unique_and_plentiful() {
        let ks = training_kernels();
        assert!(ks.len() > 80, "only {} distinct kernels", ks.len());
        let mut names: Vec<&str> = ks.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ks.len());
    }

    #[test]
    fn strided_space_shrinks() {
        assert_eq!(training_space(1).len(), 336);
        let s2 = training_space(2);
        assert!(s2.len() < 336 && s2.len() >= 168);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
        let ctx = EvalContext::build(EvalOptions::fast());
        let dir = std::env::temp_dir().join("gpm_ctx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ctx.json");
        ctx.save(&path).unwrap();
        let loaded = EvalContext::load(&path).unwrap();
        let k = gpm_sim::KernelCharacteristics::compute_bound("probe", 12.0);
        let out = ctx.sim.evaluate(&k, HwConfig::FAIL_SAFE);
        let snap = KernelSnapshot::counters_only(out.counters, HwConfig::FAIL_SAFE, 1.0);
        let a = ctx.rf.predict(&snap, HwConfig::MAX_PERF);
        let b = loaded.rf.predict(&snap, HwConfig::MAX_PERF);
        assert_eq!(a, b);
        assert_eq!(ctx.rf_report.time_mape, loaded.rf_report.time_mape);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("gpm_ctx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        let err = EvalContext::load(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fast_context_trains_with_usable_accuracy() {
        let ctx = EvalContext::build(EvalOptions::fast());
        // The paper reports 25% performance and 12% power MAPE; our fast
        // configuration should land in the same regime (not wildly worse).
        assert!(
            ctx.rf_report.time_mape < 0.6,
            "time MAPE {}",
            ctx.rf_report.time_mape
        );
        assert!(
            ctx.rf_report.power_mape < 0.3,
            "power MAPE {}",
            ctx.rf_report.power_mape
        );
        assert!(ctx.rf_report.test_samples > 100);
    }
}
