//! Plain-text table and CSV rendering for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use gpm_harness::report::Table;
///
/// let mut t = Table::new(vec!["benchmark", "savings (%)"]);
/// t.row(vec!["kmeans".into(), "24.8".into()]);
/// let text = t.render();
/// assert!(text.contains("kmeans"));
/// assert!(text.contains("benchmark"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's arity differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&"-".repeat(*w));
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        let _ = cols;
        out
    }

    /// Renders as RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.headers);
        for row in &self.rows {
            write_row(row);
        }
        out
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a percentage with sign, one decimal.
pub fn pct(value: f64) -> String {
    format!("{value:+.1}%")
}

/// Renders a [`gpm_trace::TraceSummary`] as a metric/value table — the
/// trace-summary section appended to scheme reports and printed by the
/// `trace_report` binary.
pub fn trace_summary_table(s: &gpm_trace::TraceSummary) -> Table {
    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["runs".into(), s.runs.to_string()]);
    t.row(vec![
        "baseline simulations".into(),
        s.baseline_simulations.to_string(),
    ]);
    t.row(vec![
        "baseline cache hits".into(),
        s.baseline_cache_hits.to_string(),
    ]);
    t.row(vec!["dispatches".into(), s.dispatches.to_string()]);
    t.row(vec!["decisions".into(), s.decisions.to_string()]);
    t.row(vec![
        "horizon decisions".into(),
        s.horizon_decisions.to_string(),
    ]);
    t.row(vec!["mean horizon".into(), fmt(s.mean_horizon, 3)]);
    t.row(vec![
        "overhead per decision (us)".into(),
        fmt(s.overhead_per_decision_s * 1e6, 2),
    ]);
    t.row(vec![
        "horizon evaluations".into(),
        s.horizon_evaluations.to_string(),
    ]);
    t.row(vec![
        "total evaluations".into(),
        s.total_evaluations.to_string(),
    ]);
    t.row(vec!["searches".into(), s.searches.to_string()]);
    t.row(vec![
        "knob visits (cpu pstate)".into(),
        s.knob_visits.cpu_pstate.to_string(),
    ]);
    t.row(vec![
        "knob visits (nb state)".into(),
        s.knob_visits.nb_state.to_string(),
    ]);
    t.row(vec![
        "knob visits (gpu dpm)".into(),
        s.knob_visits.gpu_dpm.to_string(),
    ]);
    t.row(vec![
        "knob visits (cu count)".into(),
        s.knob_visits.cu_count.to_string(),
    ]);
    t.row(vec![
        "pruned candidates".into(),
        s.pruned_candidates.to_string(),
    ]);
    t.row(vec![
        "fail-safe events".into(),
        s.fail_safe_events.to_string(),
    ]);
    t.row(vec!["pattern misses".into(), s.pattern_misses.to_string()]);
    t.row(vec![
        "fault injections".into(),
        s.fault_injections.to_string(),
    ]);
    t.row(vec!["recoveries".into(), s.recoveries.to_string()]);
    t.row(vec!["outcomes".into(), s.outcomes.to_string()]);
    t.row(vec![
        "mean |time error| (ms)".into(),
        fmt(s.mean_abs_time_error_s * 1e3, 4),
    ]);
    t.row(vec![
        "mean signed energy error (J)".into(),
        fmt(s.mean_signed_energy_error_j, 4),
    ]);
    t.row(vec!["min headroom (s)".into(), fmt(s.min_headroom_s, 4)]);
    t.row(vec!["mean headroom (s)".into(), fmt(s.mean_headroom_s, 4)]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1.5".into()]);
        t.row(vec!["b".into(), "22".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-' || c == ' '));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(24.81), "+24.8%");
        assert_eq!(pct(-1.84), "-1.8%");
    }

    #[test]
    fn len_and_empty() {
        assert!(Table::new(vec!["x"]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}
