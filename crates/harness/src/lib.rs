//! Experiment harness: replays workloads under governors and produces the
//! paper's comparisons.
//!
//! The harness mirrors the paper's methodology (Section V): a workload's
//! kernel sequence is replayed on the simulated APU under a governor; the
//! governor's per-decision overheads are charged as CPU time/energy between
//! kernels (worst case: kernels back-to-back, no idle CPU to hide them);
//! energy, kernel time, and wall time are accumulated; and schemes are
//! compared against the AMD Turbo Core baseline run that also defines the
//! performance target of Eq. 1.
//!
//! Layers:
//!
//! * [`run`] — the core replay loop ([`run::run_once`]); its traced twin
//!   ([`run::run_once_traced`]) streams one decision-level
//!   [`gpm_trace::TraceEvent`] per governor action into a pluggable sink,
//!   and [`run::run_once_faulted`] adds deterministic fault injection
//!   (robustness studies; a disabled injector is the identity).
//! * [`campaign`] — the measurement campaign, parallelized across worker
//!   threads (bit-identical to the sequential path).
//! * [`context`] — one-time setup shared by experiments: the simulator and
//!   the offline-trained Random Forest ([`context::EvalContext`]).
//! * [`schemes`] — named scheme constructors (PPK/MPC × oracle/RF/error
//!   models, TO) and end-to-end evaluation
//!   ([`schemes::evaluate_scheme`]).
//! * [`metrics`] — energy-savings / speedup arithmetic and geometric means.
//! * [`amortize`] — Figure 11's re-execution amortization study.
//! * [`traces`] — Figure 2 sweeps and Figure 3 throughput traces.
//! * [`report`] — plain-text table and CSV rendering for the `fig*`
//!   binaries; [`svg`] — standalone SVG bar/line charts for the same.

pub mod amortize;
pub mod campaign;
pub mod context;
pub mod metrics;
pub mod report;
pub mod run;
pub mod schemes;
pub mod svg;
pub mod traces;

pub use campaign::{parallel_campaign, parallel_campaign_auto};
pub use context::{EvalContext, EvalOptions};
pub use metrics::{energy_savings_pct, geo_mean, speedup, Comparison};
pub use run::{run_once, run_once_faulted, run_once_traced, KernelRun, RunResult};
pub use schemes::{
    evaluate_scheme, evaluate_scheme_faulted, evaluate_scheme_traced, turbo_core_baseline, Scheme,
    SchemeOutcome,
};
