//! Experiment harness: replays workloads under governors and produces the
//! paper's comparisons.
//!
//! The harness mirrors the paper's methodology (Section V): a workload's
//! kernel sequence is replayed on the simulated APU under a governor; the
//! governor's per-decision overheads are charged as CPU time/energy between
//! kernels (worst case: kernels back-to-back, no idle CPU to hide them);
//! energy, kernel time, and wall time are accumulated; and schemes are
//! compared against the AMD Turbo Core baseline run that also defines the
//! performance target of Eq. 1.
//!
//! Layers:
//!
//! * [`mod@env`] — the unified execution environment
//!   ([`env::ExecEnv`]): *the* dispatch path. One replay engine with
//!   layered middleware — a decision-level trace sink and a
//!   deterministic fault injector, both disabled no-ops by default —
//!   plus the cached Turbo Core baseline resolution and end-to-end
//!   scheme evaluation ([`env::ExecEnv::evaluate`]).
//! * [`run`] — the replay result types ([`run::RunResult`]).
//! * [`campaign`] — the measurement campaign, parallelized across worker
//!   threads (bit-identical to the sequential path).
//! * [`context`] — one-time setup shared by experiments: the simulator,
//!   the offline-trained Random Forest, the hoisted campaign space, and
//!   the per-workload baseline cache ([`context::EvalContext`]).
//! * [`schemes`] — named scheme constructors (PPK/MPC × oracle/RF/error
//!   models, TO) evaluated through [`env::ExecEnv::evaluate`].
//! * [`metrics`] — energy-savings / speedup arithmetic and geometric means.
//! * [`amortize`] — Figure 11's re-execution amortization study.
//! * [`traces`] — Figure 2 sweeps and Figure 3 throughput traces.
//! * [`report`] — plain-text table and CSV rendering for the `fig*`
//!   binaries; [`svg`] — standalone SVG bar/line charts for the same.

pub mod amortize;
pub mod campaign;
pub mod context;
pub mod env;
pub mod metrics;
pub mod report;
pub mod run;
pub mod schemes;
pub mod svg;
pub mod traces;

pub use campaign::{parallel_campaign, parallel_campaign_auto};
pub use context::{training_kernels, training_space, BaselineCacheStats, EvalContext, EvalOptions};
pub use env::ExecEnv;
pub use metrics::{energy_savings_pct, geo_mean, speedup, Comparison};
pub use run::{KernelRun, RunResult};
pub use schemes::{turbo_core_baseline, Scheme, SchemeOutcome};
