//! Comparison arithmetic used throughout the figures.

use crate::run::RunResult;
use serde::{Deserialize, Serialize};

/// Energy savings of `scheme` relative to `baseline`, in percent
/// (positive = scheme consumes less).
pub fn energy_savings_pct(baseline_j: f64, scheme_j: f64) -> f64 {
    (1.0 - scheme_j / baseline_j) * 100.0
}

/// Speedup of `scheme` over `baseline` (>1 = scheme is faster).
pub fn speedup(baseline_s: f64, scheme_s: f64) -> f64 {
    baseline_s / scheme_s
}

/// Geometric mean; returns 0 for empty input.
///
/// # Panics
///
/// Panics if any value is non-positive.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// A scheme-vs-baseline comparison for one workload — one bar of
/// Figures 4, 8, 9, 10, or 12.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Chip-wide energy savings over the baseline, percent.
    pub energy_savings_pct: f64,
    /// GPU-domain energy savings over the baseline, percent (Figure 10).
    pub gpu_energy_savings_pct: f64,
    /// CPU-domain energy savings over the baseline, percent.
    pub cpu_energy_savings_pct: f64,
    /// Wall-clock speedup over the baseline (includes optimizer
    /// overheads).
    pub speedup: f64,
}

impl Comparison {
    /// Compares a scheme's measured run against a baseline run.
    pub fn between(baseline: &RunResult, scheme: &RunResult) -> Comparison {
        Comparison {
            energy_savings_pct: energy_savings_pct(
                baseline.total_energy_j(),
                scheme.total_energy_j(),
            ),
            gpu_energy_savings_pct: energy_savings_pct(
                baseline.gpu_energy_j(),
                scheme.gpu_energy_j(),
            ),
            cpu_energy_savings_pct: energy_savings_pct(
                baseline.cpu_energy_j(),
                scheme.cpu_energy_j(),
            ),
            speedup: speedup(baseline.wall_time_s(), scheme.wall_time_s()),
        }
    }

    /// Performance loss in percent (positive = scheme slower than
    /// baseline); the paper's "1.8% performance loss" form.
    pub fn perf_loss_pct(&self) -> f64 {
        (1.0 - self.speedup) * 100.0
    }
}

/// Averages a set of per-workload comparisons the way the paper reports
/// suite-wide numbers: arithmetic mean of savings, geometric mean of
/// speedups.
pub fn summarize(comparisons: &[Comparison]) -> Comparison {
    if comparisons.is_empty() {
        return Comparison {
            energy_savings_pct: 0.0,
            gpu_energy_savings_pct: 0.0,
            cpu_energy_savings_pct: 0.0,
            speedup: 1.0,
        };
    }
    let n = comparisons.len() as f64;
    let speedups: Vec<f64> = comparisons.iter().map(|c| c.speedup).collect();
    Comparison {
        energy_savings_pct: comparisons
            .iter()
            .map(|c| c.energy_savings_pct)
            .sum::<f64>()
            / n,
        gpu_energy_savings_pct: comparisons
            .iter()
            .map(|c| c.gpu_energy_savings_pct)
            .sum::<f64>()
            / n,
        cpu_energy_savings_pct: comparisons
            .iter()
            .map(|c| c.cpu_energy_savings_pct)
            .sum::<f64>()
            / n,
        speedup: geo_mean(&speedups),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_sim::EnergyBreakdown;

    fn run(kernel_time_s: f64, overhead_s: f64, cpu_j: f64, gpu_j: f64) -> RunResult {
        RunResult {
            governor: "x".into(),
            workload: "w".into(),
            kernel_time_s,
            overhead_time_s: overhead_s,
            transition_time_s: 0.0,
            energy: EnergyBreakdown {
                cpu_j,
                gpu_j,
                dram_j: 1.0,
                other_j: 1.0,
            },
            overhead_energy: EnergyBreakdown::default(),
            ginstructions: 10.0,
            per_kernel: Vec::new(),
        }
    }

    #[test]
    fn savings_and_speedup_signs() {
        assert!((energy_savings_pct(100.0, 75.0) - 25.0).abs() < 1e-12);
        assert!(energy_savings_pct(100.0, 120.0) < 0.0);
        assert!((speedup(2.0, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), 0.0);
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geo_mean_rejects_nonpositive() {
        let _ = geo_mean(&[1.0, 0.0]);
    }

    #[test]
    fn comparison_between_runs() {
        let base = run(10.0, 0.0, 50.0, 48.0);
        let scheme = run(10.5, 0.5, 20.0, 40.0);
        let c = Comparison::between(&base, &scheme);
        assert!(c.energy_savings_pct > 0.0);
        assert!(c.gpu_energy_savings_pct > 0.0);
        assert!(c.cpu_energy_savings_pct > 50.0);
        assert!((c.speedup - 10.0 / 11.0).abs() < 1e-12);
        assert!((c.perf_loss_pct() - (1.0 - 10.0 / 11.0) * 100.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_averages() {
        let a = Comparison {
            energy_savings_pct: 10.0,
            gpu_energy_savings_pct: 4.0,
            cpu_energy_savings_pct: 20.0,
            speedup: 1.0,
        };
        let b = Comparison {
            energy_savings_pct: 30.0,
            gpu_energy_savings_pct: 8.0,
            cpu_energy_savings_pct: 40.0,
            speedup: 4.0,
        };
        let s = summarize(&[a, b]);
        assert!((s.energy_savings_pct - 20.0).abs() < 1e-12);
        assert!((s.gpu_energy_savings_pct - 6.0).abs() < 1e-12);
        assert!((s.speedup - 2.0).abs() < 1e-12);
        let empty = summarize(&[]);
        assert_eq!(empty.speedup, 1.0);
    }
}
