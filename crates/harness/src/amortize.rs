//! Figure 11: amortization of initial profiling losses over repeated
//! application executions.
//!
//! MPC pays a tax on the first invocation (it runs PPK while profiling);
//! the paper shows the tax amortizes quickly: "most of the full gains are
//! observed after only ten re-executions". This module re-executes both
//! MPC and PPK `k` times after the initial run and compares *cumulative*
//! energy and wall time, plus the steady-state (no-initial-loss) limit.

use crate::context::EvalContext;
use crate::env::ExecEnv;
use crate::metrics::{energy_savings_pct, speedup};
use gpm_governors::{OverheadModel, PpkGovernor};
use gpm_mpc::{MpcConfig, MpcGovernor};
use gpm_workloads::Workload;
use serde::{Deserialize, Serialize};

/// One row of Figure 11 for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmortizationPoint {
    /// Re-executions after the initial run; `None` = steady state.
    pub re_executions: Option<usize>,
    /// Cumulative energy savings of MPC relative to PPK, percent.
    pub energy_savings_pct: f64,
    /// Cumulative speedup of MPC relative to PPK.
    pub speedup: f64,
}

/// Runs the Figure 11 protocol on one workload for the given re-execution
/// counts (the paper uses 1, 10, 100, and steady state).
///
/// Cumulative totals *include* each scheme's initial run; the steady-state
/// point compares single post-profiling runs only.
pub fn amortization(
    ctx: &EvalContext,
    workload: &Workload,
    re_executions: &[usize],
) -> Vec<AmortizationPoint> {
    let sim = &ctx.sim;
    let env = ExecEnv::new();
    let (_, target) = env.baseline(ctx, workload);
    let space = ctx.campaign_space().clone();
    let max_runs = re_executions.iter().copied().max().unwrap_or(0) + 1;

    // Collect per-run (energy, wall) sequences for both schemes.
    let mut mpc_gov = MpcGovernor::new(ctx.rf.clone(), sim.params().clone(), MpcConfig::default());
    let mut ppk_gov = PpkGovernor::new(
        ctx.rf.clone(),
        sim.params().clone(),
        space,
        OverheadModel::default(),
    );
    let mut mpc_runs = Vec::with_capacity(max_runs);
    let mut ppk_runs = Vec::with_capacity(max_runs);
    for run in 0..max_runs {
        mpc_runs.push(env.run(sim, workload, &mut mpc_gov, target, run, false));
        ppk_runs.push(env.run(sim, workload, &mut ppk_gov, target, run, false));
    }

    let cum = |runs: &[crate::run::RunResult], upto: usize| -> (f64, f64) {
        runs[..=upto].iter().fold((0.0, 0.0), |(e, t), r| {
            (e + r.total_energy_j(), t + r.wall_time_s())
        })
    };

    let mut points: Vec<AmortizationPoint> = re_executions
        .iter()
        .map(|&k| {
            let (me, mt) = cum(&mpc_runs, k.min(max_runs - 1));
            let (pe, pt) = cum(&ppk_runs, k.min(max_runs - 1));
            AmortizationPoint {
                re_executions: Some(k),
                energy_savings_pct: energy_savings_pct(pe, me),
                speedup: speedup(pt, mt),
            }
        })
        .collect();

    // Steady state: ignore run 0 entirely, compare one steady run each.
    let m = &mpc_runs[max_runs - 1];
    let p = &ppk_runs[max_runs - 1];
    points.push(AmortizationPoint {
        re_executions: None,
        energy_savings_pct: energy_savings_pct(p.total_energy_j(), m.total_energy_j()),
        speedup: speedup(p.wall_time_s(), m.wall_time_s()),
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalOptions;
    use gpm_workloads::workload_by_name;
    use std::sync::OnceLock;

    fn ctx() -> &'static EvalContext {
        static CTX: OnceLock<EvalContext> = OnceLock::new();
        CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
    }

    #[test]
    fn amortization_produces_requested_points_plus_steady_state() {
        let w = workload_by_name("kmeans").unwrap();
        let points = amortization(ctx(), &w, &[1, 4]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].re_executions, Some(1));
        assert_eq!(points[1].re_executions, Some(4));
        assert_eq!(points[2].re_executions, None);
    }

    #[test]
    fn gains_converge_toward_steady_state() {
        let w = workload_by_name("Spmv").unwrap();
        let points = amortization(ctx(), &w, &[1, 8]);
        let steady = points.last().unwrap();
        let at_1 = &points[0];
        let at_8 = &points[1];
        // More re-executions bring the cumulative savings closer to the
        // steady-state value.
        let d1 = (at_1.energy_savings_pct - steady.energy_savings_pct).abs();
        let d8 = (at_8.energy_savings_pct - steady.energy_savings_pct).abs();
        assert!(d8 <= d1 + 1.0, "d1 {d1} vs d8 {d8}");
    }
}
