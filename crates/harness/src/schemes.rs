//! Named power-management schemes and end-to-end evaluation.
//!
//! A [`Scheme`] identifies one of the paper's evaluated policies —
//! Turbo Core, PPK or MPC with a given predictor, or Theoretically
//! Optimal. [`ExecEnv::evaluate`](crate::env::ExecEnv::evaluate) runs
//! the full protocol for one workload: resolve the Turbo Core baseline
//! (which defines the Eq. 1 performance target) through the context's
//! shared cache, run the scheme's profiling invocation where applicable,
//! then measure its steady-state invocation including optimizer
//! overheads.

use crate::context::EvalContext;
use crate::env::ExecEnv;
use crate::run::RunResult;
use gpm_faults::FaultyPredictor;
use gpm_governors::{
    to, Governor, OverheadModel, PerfTarget, PlannedGovernor, PpkGovernor, TurboCore,
};
use gpm_model::{ErrorInjectedPredictor, ErrorSpec};
use gpm_mpc::{HorizonMode, MpcConfig, MpcGovernor, MpcStats};
use gpm_sim::{ApuSimulator, OraclePredictor};
use gpm_workloads::Workload;
use std::borrow::Cow;

/// The evaluated power-management schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// The shipping Turbo Core policy (also the baseline).
    TurboCore,
    /// PPK with perfect prediction and zero overheads — the Section II-E
    /// limit study (Figure 4).
    PpkOracle,
    /// PPK with the trained Random Forest and overheads — the realistic
    /// history-based scheme of Figures 8–11.
    PpkRf,
    /// MPC with the Random Forest, adaptive horizon, and overheads — the
    /// paper's full system (Figures 8–11, 14, 15).
    MpcRf {
        /// Horizon policy (the evaluation default is adaptive, α = 0.05).
        horizon: HorizonMode,
    },
    /// MPC with the Random Forest and an explicit overhead cost model —
    /// used by the Section VI-E ablation to study regimes where optimizer
    /// time is large relative to kernel time (the paper's millisecond-scale
    /// kernels).
    MpcRfOverhead {
        /// Horizon policy.
        horizon: HorizonMode,
        /// Optimizer cost accounting.
        overhead: OverheadModel,
    },
    /// MPC with the Random Forest, full horizon, no overheads —
    /// Figure 13's "RF" configuration.
    MpcRfIdealized,
    /// MPC with perfect prediction, full horizon, no overheads —
    /// Figure 12's near-limit configuration.
    MpcOracle,
    /// MPC with half-normal prediction error, full horizon, no overheads —
    /// Figure 13's Err_* configurations.
    MpcError {
        /// Mean-absolute-error specification.
        spec: ErrorSpec,
    },
    /// The Theoretically Optimal offline solution (Figures 4 and 12).
    TheoreticallyOptimal,
    /// An Equalizer-style reactive counter-driven tuner (related work the
    /// paper contrasts with; Sethia & Mahlke).
    Equalizer {
        /// Performance- or efficiency-chasing objective.
        mode: gpm_governors::EqualizerMode,
    },
}

impl Scheme {
    /// Short display name used in tables. Borrowed for every fixed
    /// scheme; only parameterized variants (fixed horizons, error specs)
    /// allocate.
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            Scheme::TurboCore => Cow::Borrowed("TurboCore"),
            Scheme::PpkOracle => Cow::Borrowed("PPK(oracle)"),
            Scheme::PpkRf => Cow::Borrowed("PPK(RF)"),
            Scheme::MpcRf {
                horizon: HorizonMode::Adaptive { .. },
            } => Cow::Borrowed("MPC(RF,adaptive)"),
            Scheme::MpcRf {
                horizon: HorizonMode::Full,
            } => Cow::Borrowed("MPC(RF,full)"),
            Scheme::MpcRf {
                horizon: HorizonMode::Fixed(h),
            } => Cow::Owned(format!("MPC(RF,H={h})")),
            Scheme::MpcRfOverhead {
                horizon: HorizonMode::Full,
                ..
            } => Cow::Borrowed("MPC(RF,full,custom-oh)"),
            Scheme::MpcRfOverhead { .. } => Cow::Borrowed("MPC(RF,adaptive,custom-oh)"),
            Scheme::MpcRfIdealized => Cow::Borrowed("MPC(RF,ideal)"),
            Scheme::MpcOracle => Cow::Borrowed("MPC(oracle)"),
            Scheme::MpcError { spec } => Cow::Owned(format!(
                "MPC(Err_{:.0}%_{:.0}%)",
                spec.time_mae * 100.0,
                spec.power_mae * 100.0
            )),
            Scheme::TheoreticallyOptimal => Cow::Borrowed("TO"),
            Scheme::Equalizer {
                mode: gpm_governors::EqualizerMode::Performance,
            } => Cow::Borrowed("Equalizer(perf)"),
            Scheme::Equalizer {
                mode: gpm_governors::EqualizerMode::Efficiency,
            } => Cow::Borrowed("Equalizer(eff)"),
        }
    }
}

/// Everything measured for one (workload, scheme) pair.
#[derive(Debug, Clone)]
pub struct SchemeOutcome {
    /// Scheme display label (borrowed for fixed schemes — no per-run
    /// allocation on hot paths).
    pub label: Cow<'static, str>,
    /// The Turbo Core baseline run.
    pub baseline: RunResult,
    /// The performance target derived from the baseline.
    pub target: PerfTarget,
    /// The scheme's profiling (first) invocation, when it has one.
    pub profiling: Option<RunResult>,
    /// The steady-state measured invocation.
    pub measured: RunResult,
    /// MPC decision statistics, for MPC schemes.
    pub mpc_stats: Option<MpcStats>,
}

/// Runs Turbo Core once and derives the Eq. 1 performance target from its
/// kernel-time totals.
///
/// This is the raw, uncached primitive; scheme evaluation goes through
/// the per-workload cache via
/// [`ExecEnv::baseline`](crate::env::ExecEnv::baseline).
pub fn turbo_core_baseline(sim: &ApuSimulator, workload: &Workload) -> (RunResult, PerfTarget) {
    let mut tc = TurboCore::new(sim.params().tdp_w);
    // Target placeholder: Turbo Core ignores it.
    let result = ExecEnv::new().run(sim, workload, &mut tc, PerfTarget::new(1.0, 1.0), 0, false);
    let target = PerfTarget::new(result.ginstructions, result.kernel_time_s);
    (result, target)
}

impl ExecEnv {
    /// Evaluates `scheme` on `workload` under the shared context, with
    /// this environment's middleware installed on the scheme's governor
    /// (capturing internal search / fail-safe telemetry) and threaded
    /// through every profiling and measured replay.
    ///
    /// The Turbo Core baseline that defines the performance target stays
    /// clean — untraced and unfaulted — and is resolved through the
    /// context's per-workload cache; with fault injection active, the
    /// scheme's predictor is additionally wrapped in a
    /// [`FaultyPredictor`] driven by the environment's plan.
    pub fn evaluate(
        &self,
        ctx: &EvalContext,
        workload: &Workload,
        scheme: Scheme,
    ) -> SchemeOutcome {
        let sim = &ctx.sim;
        let plan = self.fault_plan();
        let (baseline, target) = self.baseline(ctx, workload);
        let space = ctx.campaign_space().clone();

        let outcome = |profiling, measured, mpc_stats| SchemeOutcome {
            label: scheme.label(),
            baseline: baseline.clone(),
            target,
            profiling,
            measured,
            mpc_stats,
        };

        // The standard two-invocation protocol: profile on run 0, measure
        // on run 1, with the environment's middleware installed once.
        let profile_and_measure =
            |gov: &mut dyn Governor, provide_truth: bool| -> (RunResult, RunResult) {
                self.install(gov);
                let profiling = self.run(sim, workload, gov, target, 0, provide_truth);
                let measured = self.run(sim, workload, gov, target, 1, provide_truth);
                (profiling, measured)
            };

        match scheme {
            Scheme::TurboCore => {
                let mut tc = TurboCore::new(sim.params().tdp_w);
                self.install(&mut tc);
                let measured = self.run(sim, workload, &mut tc, target, 0, false);
                outcome(None, measured, None)
            }
            Scheme::PpkOracle => {
                let mut gov = PpkGovernor::new(
                    FaultyPredictor::new(OraclePredictor::new(sim), plan),
                    sim.params().clone(),
                    space,
                    OverheadModel::free(),
                )
                .with_truth_snapshots(true);
                let (profiling, measured) = profile_and_measure(&mut gov, true);
                outcome(Some(profiling), measured, None)
            }
            Scheme::PpkRf => {
                let mut gov = PpkGovernor::new(
                    FaultyPredictor::new(ctx.rf.clone(), plan),
                    sim.params().clone(),
                    space,
                    OverheadModel::default(),
                );
                let (profiling, measured) = profile_and_measure(&mut gov, false);
                outcome(Some(profiling), measured, None)
            }
            Scheme::MpcRf { horizon } => {
                let cfg = MpcConfig {
                    horizon_mode: horizon,
                    overhead: OverheadModel::default(),
                    store_truth: false,
                    ..MpcConfig::default()
                };
                let mut gov = MpcGovernor::new(
                    FaultyPredictor::new(ctx.rf.clone(), plan),
                    sim.params().clone(),
                    cfg,
                );
                let (profiling, measured) = profile_and_measure(&mut gov, false);
                let stats = gov.stats().clone();
                outcome(Some(profiling), measured, Some(stats))
            }
            Scheme::MpcRfOverhead { horizon, overhead } => {
                let cfg = MpcConfig {
                    horizon_mode: horizon,
                    overhead,
                    store_truth: false,
                    ..MpcConfig::default()
                };
                let mut gov = MpcGovernor::new(
                    FaultyPredictor::new(ctx.rf.clone(), plan),
                    sim.params().clone(),
                    cfg,
                );
                let (profiling, measured) = profile_and_measure(&mut gov, false);
                let stats = gov.stats().clone();
                outcome(Some(profiling), measured, Some(stats))
            }
            Scheme::MpcRfIdealized => {
                let cfg = MpcConfig {
                    horizon_mode: HorizonMode::Full,
                    overhead: OverheadModel::free(),
                    store_truth: false,
                    ..MpcConfig::default()
                };
                let mut gov = MpcGovernor::new(
                    FaultyPredictor::new(ctx.rf.clone(), plan),
                    sim.params().clone(),
                    cfg,
                );
                let (profiling, measured) = profile_and_measure(&mut gov, false);
                let stats = gov.stats().clone();
                outcome(Some(profiling), measured, Some(stats))
            }
            Scheme::MpcOracle => {
                let cfg = MpcConfig {
                    horizon_mode: HorizonMode::Full,
                    overhead: OverheadModel::free(),
                    store_truth: true,
                    ..MpcConfig::default()
                };
                let mut gov = MpcGovernor::new(
                    FaultyPredictor::new(OraclePredictor::new(sim), plan),
                    sim.params().clone(),
                    cfg,
                );
                let (profiling, measured) = profile_and_measure(&mut gov, true);
                let stats = gov.stats().clone();
                outcome(Some(profiling), measured, Some(stats))
            }
            Scheme::MpcError { spec } => {
                let cfg = MpcConfig {
                    horizon_mode: HorizonMode::Full,
                    overhead: OverheadModel::free(),
                    store_truth: true,
                    ..MpcConfig::default()
                };
                let predictor = ErrorInjectedPredictor::new(sim, spec, ctx.options.seed);
                let mut gov = MpcGovernor::new(
                    FaultyPredictor::new(predictor, plan),
                    sim.params().clone(),
                    cfg,
                );
                let (profiling, measured) = profile_and_measure(&mut gov, true);
                let stats = gov.stats().clone();
                outcome(Some(profiling), measured, Some(stats))
            }
            Scheme::Equalizer { mode } => {
                let mut gov = gpm_governors::Equalizer::new(mode);
                let (profiling, measured) = profile_and_measure(&mut gov, false);
                outcome(Some(profiling), measured, None)
            }
            Scheme::TheoreticallyOptimal => {
                let to_plan =
                    to::plan_optimal(sim, workload.kernels(), &space, target.total_time_s());
                let mut gov = PlannedGovernor::new("theoretically-optimal", to_plan.configs);
                self.install(&mut gov);
                let measured = self.run(sim, workload, &mut gov, target, 0, false);
                outcome(None, measured, None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalOptions;
    use crate::metrics::Comparison;
    use gpm_workloads::workload_by_name;
    use std::sync::OnceLock;

    fn ctx() -> &'static EvalContext {
        static CTX: OnceLock<EvalContext> = OnceLock::new();
        CTX.get_or_init(|| EvalContext::build(EvalOptions::fast()))
    }

    #[test]
    fn baseline_defines_target_from_kernel_time() {
        let w = workload_by_name("NBody").unwrap();
        let (base, target) = turbo_core_baseline(&ctx().sim, &w);
        assert!((target.total_time_s() - base.kernel_time_s).abs() < 1e-12);
        assert!((target.total_ginstructions() - base.ginstructions).abs() < 1e-12);
    }

    #[test]
    fn to_beats_turbo_core_on_energy_without_perf_loss() {
        let w = workload_by_name("Spmv").unwrap();
        let out = ExecEnv::new().evaluate(ctx(), &w, Scheme::TheoreticallyOptimal);
        let c = Comparison::between(&out.baseline, &out.measured);
        assert!(
            c.energy_savings_pct > 5.0,
            "TO savings {}",
            c.energy_savings_pct
        );
        // TO plans against the noiseless model; allow small noise-induced
        // slack on the realized time.
        assert!(c.speedup > 0.93, "TO speedup {}", c.speedup);
    }

    #[test]
    fn ppk_oracle_saves_energy_on_regular_benchmark() {
        let w = workload_by_name("mandelbulbGPU").unwrap();
        let out = ExecEnv::new().evaluate(ctx(), &w, Scheme::PpkOracle);
        let c = Comparison::between(&out.baseline, &out.measured);
        assert!(
            c.energy_savings_pct > 10.0,
            "PPK savings {}",
            c.energy_savings_pct
        );
        assert!(c.speedup > 0.9, "PPK speedup {}", c.speedup);
    }

    #[test]
    fn mpc_oracle_tracks_to_on_irregular_benchmark() {
        let w = workload_by_name("kmeans").unwrap();
        let env = ExecEnv::new();
        let to_out = env.evaluate(ctx(), &w, Scheme::TheoreticallyOptimal);
        let mpc_out = env.evaluate(ctx(), &w, Scheme::MpcOracle);
        let to_c = Comparison::between(&to_out.baseline, &to_out.measured);
        let mpc_c = Comparison::between(&mpc_out.baseline, &mpc_out.measured);
        // MPC should capture a large share of TO's savings (92% suite-wide
        // in the paper; be generous per-benchmark).
        assert!(
            mpc_c.energy_savings_pct > 0.5 * to_c.energy_savings_pct,
            "MPC {} vs TO {}",
            mpc_c.energy_savings_pct,
            to_c.energy_savings_pct
        );
    }

    #[test]
    fn mpc_rf_scheme_produces_stats() {
        let w = workload_by_name("EigenValue").unwrap();
        let out = ExecEnv::new().evaluate(
            ctx(),
            &w,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
        );
        let stats = out.mpc_stats.unwrap();
        assert!(!stats.horizons.is_empty());
        assert!(out.profiling.is_some());
        assert!(out.measured.overhead_time_s >= 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let schemes = [
            Scheme::TurboCore,
            Scheme::PpkOracle,
            Scheme::PpkRf,
            Scheme::MpcRf {
                horizon: HorizonMode::default(),
            },
            Scheme::MpcRf {
                horizon: HorizonMode::Full,
            },
            Scheme::MpcRfIdealized,
            Scheme::MpcOracle,
            Scheme::MpcError {
                spec: ErrorSpec::ERR_5,
            },
            Scheme::TheoreticallyOptimal,
        ];
        let mut labels: Vec<Cow<'static, str>> = schemes.iter().map(|s| s.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), schemes.len());
    }

    #[test]
    fn fixed_scheme_labels_do_not_allocate() {
        assert!(matches!(Scheme::TurboCore.label(), Cow::Borrowed(_)));
        assert!(matches!(
            Scheme::MpcRf {
                horizon: HorizonMode::default()
            }
            .label(),
            Cow::Borrowed(_)
        ));
        assert!(matches!(
            Scheme::MpcRf {
                horizon: HorizonMode::Fixed(4)
            }
            .label(),
            Cow::Owned(_)
        ));
    }
}
