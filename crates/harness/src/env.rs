//! The unified execution environment: one replay engine with layered,
//! opt-in middleware.
//!
//! [`ExecEnv`] bundles the cross-cutting concerns that used to be
//! threaded through parallel function families (`run_once` /
//! `run_once_traced` / `run_once_faulted` and the `evaluate_scheme`
//! ladder): a decision-level [`TraceSink`] and a deterministic
//! [`FaultInjector`]. Both default to disabled no-ops that the replay
//! loop skips entirely, so the clean path pays nothing — an `ExecEnv`
//! built with [`ExecEnv::new`] is byte-identical to the historical
//! untraced, unfaulted functions (property-tested in
//! `tests/execenv_equivalence.rs`).
//!
//! ```
//! use gpm_harness::env::ExecEnv;
//! use gpm_governors::{PerfTarget, TurboCore};
//! use gpm_sim::ApuSimulator;
//! use gpm_workloads::workload_by_name;
//!
//! let sim = ApuSimulator::default();
//! let w = workload_by_name("Spmv").unwrap();
//! let mut tc = TurboCore::new(sim.params().tdp_w);
//! let env = ExecEnv::new();
//! let run = env.run(&sim, &w, &mut tc, PerfTarget::new(1.0, 1.0), 0, false);
//! assert_eq!(run.per_kernel.len(), w.len());
//! ```
//!
//! Layering a concern is one builder call — the engine and every caller
//! stay unchanged:
//!
//! ```
//! use gpm_faults::FaultPlan;
//! use gpm_harness::env::ExecEnv;
//! use gpm_trace::{AggregateSink, TraceSink};
//! use std::sync::Arc;
//!
//! let agg = Arc::new(AggregateSink::new());
//! let env = ExecEnv::new()
//!     .with_trace(agg.clone() as Arc<dyn TraceSink>)
//!     .with_fault_plan(FaultPlan::uniform(7, 0.05));
//! assert!(env.sink().enabled() && env.faults().enabled());
//! ```

use crate::context::EvalContext;
use crate::run::{KernelRun, RunResult};
use gpm_faults::{no_faults, FaultInjector, FaultKey, FaultPlan};
use gpm_governors::{Governor, KernelContext, PerfTarget};
use gpm_hw::HwConfig;
use gpm_sim::{EnergyBreakdown, KernelOutcome, Platform};
use gpm_telemetry::{Counter, Histo, Telemetry};
use gpm_trace::{noop_sink, FailSafeReason, FaultChannelKind, TraceEvent, TraceSink};
use gpm_workloads::Workload;
use std::sync::Arc;

/// Bucket boundaries for the `gpm_decision_seconds` latency histogram:
/// the simulated optimizer overhead per decision, 1 µs … 10 ms decades
/// (the same decades as `TraceSummary::decision_latency`).
pub const DECISION_LATENCY_BOUNDS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2];

/// A builder-constructed execution environment: the single dispatch path
/// for replaying workloads under governors.
///
/// The environment owns the middleware stack — trace sink and fault
/// injector — and installs it on governors once ([`ExecEnv::install`])
/// instead of threading `&dyn` references through every call. See the
/// [module docs](self) for construction examples.
#[derive(Debug, Clone)]
pub struct ExecEnv {
    sink: Arc<dyn TraceSink>,
    faults: Arc<dyn FaultInjector>,
    /// The concrete plan backing `faults` when one was supplied — needed
    /// by [`ExecEnv::evaluate`] to wrap scheme predictors in
    /// [`FaultyPredictor`](gpm_faults::FaultyPredictor), which clones a
    /// plan rather than sharing a trait object.
    plan: FaultPlan,
    /// Metrics/span registry entered for the duration of each replay,
    /// when installed via [`ExecEnv::with_telemetry`].
    telemetry: Option<Telemetry>,
}

impl Default for ExecEnv {
    fn default() -> ExecEnv {
        ExecEnv::new()
    }
}

impl ExecEnv {
    /// A clean environment: no tracing, no fault injection. Replays are
    /// byte-identical to the historical plain `run_once` path.
    pub fn new() -> ExecEnv {
        ExecEnv {
            sink: noop_sink(),
            faults: no_faults(),
            plan: FaultPlan::zero(0),
            telemetry: None,
        }
    }

    /// Installs a decision-level trace sink. Tracing is strictly
    /// read-only: any sink observes byte-identical decisions to the
    /// untraced environment.
    #[must_use]
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> ExecEnv {
        self.sink = sink;
        self
    }

    /// Installs a deterministic fault plan on the dispatch path *and*
    /// keeps the concrete plan for predictor wrapping in
    /// [`ExecEnv::evaluate`]. A zero plan is the identity.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ExecEnv {
        self.faults = Arc::new(plan.clone());
        self.plan = plan;
        self
    }

    /// Installs a custom fault injector on the dispatch path only.
    /// Prefer [`ExecEnv::with_fault_plan`] for plan-driven studies —
    /// with a bare injector, scheme predictors stay clean because there
    /// is no concrete plan to wrap them with.
    #[must_use]
    pub fn with_fault_injector(mut self, faults: Arc<dyn FaultInjector>) -> ExecEnv {
        self.faults = faults;
        self
    }

    /// Installs a telemetry registry as replay middleware. For the
    /// duration of every [`ExecEnv::run`] and [`ExecEnv::baseline`] the
    /// registry is the thread-current one, so phase spans emitted by
    /// deeper layers (`rf.fit`, `flat.specialize`, `search.*`) land in
    /// it, and the replay loop records dispatch/decision metrics into
    /// it. Telemetry is strictly read-only observability: an
    /// environment with a registry produces byte-identical results to
    /// one without (pinned by `tests/execenv_equivalence.rs`).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ExecEnv {
        self.telemetry = Some(telemetry);
        self
    }

    /// The installed telemetry registry, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_ref()
    }

    /// The installed trace sink.
    pub fn sink(&self) -> &Arc<dyn TraceSink> {
        &self.sink
    }

    /// The installed fault injector.
    pub fn faults(&self) -> &Arc<dyn FaultInjector> {
        &self.faults
    }

    /// The concrete fault plan (zero unless set via
    /// [`ExecEnv::with_fault_plan`]).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Installs the environment's middleware on a governor: the trace
    /// sink (internal search / fail-safe telemetry) and the fault
    /// injector (pattern-store read path). Governors without the
    /// corresponding internals ignore either.
    pub fn install(&self, governor: &mut dyn Governor) {
        governor.set_trace_sink(Arc::clone(&self.sink));
        governor.set_fault_injector(Arc::clone(&self.faults));
    }

    /// Replays `workload` once under `governor` with this environment's
    /// middleware on the dispatch path.
    ///
    /// `run_index` distinguishes the profiling invocation (0) from later
    /// ones; `provide_truth` hands the governor ground-truth kernel
    /// characteristics (oracle-predictor studies only). Optimizer
    /// overhead is charged at the paper's MPC host configuration
    /// (`[P5, NB0, DPM0, 2 CUs]`) with the GPU idle, per Section V's
    /// worst-case assumption. The governor's `end_run` is invoked before
    /// returning.
    ///
    /// `sim` is any [`Platform`] — the live analytical simulator or a
    /// recorded [`ReplayPlatform`](gpm_sim::ReplayPlatform) measurement
    /// table (`&ApuSimulator` coerces automatically).
    ///
    /// Governor-*internal* events (search statistics, fail-safe
    /// triggers) are only captured if the sink is also installed on the
    /// governor — call [`ExecEnv::install`] first, or use
    /// [`ExecEnv::evaluate`] which does so automatically.
    pub fn run(
        &self,
        sim: &dyn Platform,
        workload: &Workload,
        governor: &mut dyn Governor,
        target: PerfTarget,
        run_index: usize,
        provide_truth: bool,
    ) -> RunResult {
        replay(
            sim,
            workload,
            governor,
            target,
            run_index,
            provide_truth,
            Middleware {
                sink: self.sink.as_ref(),
                faults: self.faults.as_ref(),
                telemetry: self.telemetry.as_ref(),
            },
        )
    }

    /// Resolves the Turbo Core baseline (run + Eq. 1 performance target)
    /// for `workload` through the context's shared cache: the first
    /// resolution per workload simulates Turbo Core, every later one is
    /// a lock-protected map lookup. Emits a
    /// [`TraceEvent::BaselineResolved`] marking whether the cache hit.
    ///
    /// The baseline always runs clean — untraced and unfaulted — because
    /// it defines the target that (possibly degraded) schemes are judged
    /// against.
    pub fn baseline(&self, ctx: &EvalContext, workload: &Workload) -> (RunResult, PerfTarget) {
        let _enter = self.telemetry.as_ref().map(|t| t.enter());
        let _span = gpm_telemetry::span("baseline.resolve");
        let ((result, target), cached) = ctx.resolve_baseline(workload);
        if let Some(t) = Telemetry::current() {
            let label = if cached { "hit" } else { "miss" };
            t.counter_with("gpm_baseline_resolutions_total", &[("cache", label)])
                .inc();
        }
        if self.sink.enabled() {
            self.sink.record(&TraceEvent::BaselineResolved {
                run_index: 0,
                workload: workload.name().to_string(),
                cached,
            });
        }
        (result, target)
    }
}

/// Borrowed middleware views for one replay.
struct Middleware<'a> {
    sink: &'a dyn TraceSink,
    faults: &'a dyn FaultInjector,
    telemetry: Option<&'a Telemetry>,
}

/// Metric handles resolved once per replay (registration is the only
/// locking step; per-kernel writes are striped atomics).
struct ReplayMetrics {
    dispatches: Counter,
    decision_latency: Histo,
}

/// The core replay loop. Every replay — [`ExecEnv::run`] and everything
/// built on it — funnels through here.
fn replay(
    sim: &dyn Platform,
    workload: &Workload,
    governor: &mut dyn Governor,
    target: PerfTarget,
    run_index: usize,
    provide_truth: bool,
    mw: Middleware<'_>,
) -> RunResult {
    let Middleware {
        sink,
        faults,
        telemetry,
    } = mw;
    // Make the environment's registry current for the whole replay so
    // library spans (search, specialization, fit) nest under
    // `env.dispatch`. Without one, spans route to whatever registry the
    // caller entered (e.g. the xp runner's), or nowhere.
    let _enter = telemetry.map(|t| t.enter());
    let metrics = Telemetry::current().map(|t| {
        t.counter("gpm_runs_total").inc();
        ReplayMetrics {
            dispatches: t.counter("gpm_dispatches_total"),
            decision_latency: t.histogram("gpm_decision_seconds", DECISION_LATENCY_BOUNDS),
        }
    });
    let tracing = sink.enabled();
    let injecting = faults.enabled();
    if tracing {
        sink.record(&TraceEvent::RunStart {
            workload: workload.name().to_string(),
            governor: governor.name().to_string(),
            run_index,
            total_kernels: workload.len(),
        });
    }
    let mut result = RunResult {
        governor: governor.name().to_string(),
        workload: workload.name().to_string(),
        kernel_time_s: 0.0,
        overhead_time_s: 0.0,
        transition_time_s: 0.0,
        energy: EnergyBreakdown::default(),
        overhead_energy: EnergyBreakdown::default(),
        ginstructions: 0.0,
        per_kernel: Vec::with_capacity(workload.len()),
    };

    let mut prev_config: Option<HwConfig> = None;
    for (position, kernel) in workload.kernels().iter().enumerate() {
        let _dispatch_span = gpm_telemetry::span("env.dispatch");
        let ctx = KernelContext {
            position,
            run_index,
            elapsed_kernel_s: result.kernel_time_s,
            elapsed_gi: result.ginstructions,
            target,
            total_kernels: Some(workload.len()),
        };
        if tracing {
            sink.record(&TraceEvent::Dispatch {
                run_index,
                position,
                kernel: kernel.name().to_string(),
            });
        }
        let decision = governor.select(&ctx);
        if let Some(m) = &metrics {
            m.dispatches.inc();
            m.decision_latency.record(decision.overhead_s);
        }
        if tracing {
            sink.record(&TraceEvent::Decision {
                run_index,
                position,
                config: decision.config,
                horizon: decision.horizon,
                evaluations: decision.evaluations,
                overhead_s: decision.overhead_s,
                predicted_time_s: decision.predicted.map(|p| p.time_s),
                predicted_power_w: decision.predicted.map(|p| p.chip_power_w),
                predicted_energy_j: decision.predicted.map(|p| p.energy_j),
            });
        }
        if decision.overhead_s > 0.0 {
            // Optimizer time overlapping a host CPU phase is hidden: the
            // CPU was busy with application work anyway, so neither extra
            // wall time nor extra energy is charged for that portion
            // (Section VI-E). With no modelled CPU phases (the default)
            // this is the paper's worst case: everything is charged.
            let visible = (decision.overhead_s - workload.cpu_phase_s(position)).max(0.0);
            result.overhead_time_s += visible;
            if visible > 0.0 {
                let oh = sim.optimizer_energy(HwConfig::MPC_HOST, visible);
                result.overhead_energy.accumulate(&oh);
            }
        }

        // Route the knob-transition request through the fault injector:
        // failed attempts cost retry latency, and a transition that fails
        // its full retry budget leaves the chip at the fail-safe state.
        let fault_key = FaultKey {
            run_index,
            position,
        };
        let mut executed = decision.config;
        if injecting {
            if let Some(prev) = prev_config {
                if let Some(t) = faults.transition(fault_key, prev, decision.config) {
                    executed = t.config;
                    if t.penalty_s > 0.0 {
                        result.transition_time_s += t.penalty_s;
                        let te = sim.optimizer_energy(prev, t.penalty_s);
                        result.overhead_energy.accumulate(&te);
                    }
                    if tracing {
                        sink.record(&TraceEvent::FaultInjected {
                            run_index,
                            position,
                            channel: FaultChannelKind::TransitionFail,
                            magnitude: t.failed_attempts as f64,
                        });
                        if t.fell_back {
                            sink.record(&TraceEvent::FailSafe {
                                run_index,
                                position,
                                reason: FailSafeReason::TransitionFailed,
                            });
                        } else {
                            sink.record(&TraceEvent::Recovered {
                                run_index,
                                position,
                                channel: FaultChannelKind::TransitionFail,
                                retries: t.failed_attempts,
                            });
                        }
                    }
                }
            }
        }

        // DVFS transition stall between the previous kernel's state and
        // this decision (free unless the simulator's transition model is
        // enabled).
        if let Some(prev) = prev_config {
            let stall = gpm_sim::transition::transition_cost_s(sim.params(), prev, executed);
            if stall > 0.0 {
                result.transition_time_s += stall;
                let te = sim.optimizer_energy(executed, stall);
                result.overhead_energy.accumulate(&te);
            }
        }
        prev_config = Some(executed);

        let mut outcome = sim.evaluate(kernel, executed);
        if injecting {
            if let Some(f) = faults.throttle(fault_key, &mut outcome) {
                if tracing {
                    sink.record(&TraceEvent::FaultInjected {
                        run_index,
                        position,
                        channel: f.channel,
                        magnitude: f.magnitude,
                    });
                }
            }
        }
        result.kernel_time_s += outcome.time_s;
        result.ginstructions += outcome.ginstructions;
        result.energy.accumulate(&outcome.energy);
        result.per_kernel.push(KernelRun {
            position,
            name: kernel.name().to_string(),
            config: executed,
            time_s: outcome.time_s,
            energy_j: outcome.energy.total_j(),
            gi: outcome.ginstructions,
            overhead_s: decision.overhead_s,
            horizon: decision.horizon,
        });

        if tracing {
            let observed_power_w = if outcome.time_s > 0.0 {
                Some(outcome.energy.total_j() / outcome.time_s)
            } else {
                None
            };
            // Signed errors follow the convention predicted − observed:
            // positive means the predictor overestimated.
            sink.record(&TraceEvent::Outcome {
                run_index,
                position,
                config: executed,
                time_s: outcome.time_s,
                energy_j: outcome.energy.total_j(),
                gi: outcome.ginstructions,
                time_error_s: decision.predicted.map(|p| p.time_s - outcome.time_s),
                power_error_w: decision
                    .predicted
                    .and_then(|p| observed_power_w.map(|ow| p.chip_power_w - ow)),
                energy_error_j: decision
                    .predicted
                    .map(|p| p.energy_j - outcome.energy.total_j()),
            });
            // Eq. 5 slack after this kernel retired: how much longer the
            // run could afford to take while still meeting the target.
            sink.record(&TraceEvent::Headroom {
                run_index,
                position,
                slack_s: target.time_cap(result.ginstructions, result.kernel_time_s, 0.0),
            });
        }

        // Optionally corrupt the *observation* the governor learns from —
        // the physical accounting above stays truthful.
        let observed: Option<KernelOutcome> = if injecting {
            let mut obs = outcome.clone();
            faults.corrupt_observation(fault_key, &mut obs).map(|f| {
                if tracing {
                    sink.record(&TraceEvent::FaultInjected {
                        run_index,
                        position,
                        channel: f.channel,
                        magnitude: f.magnitude,
                    });
                }
                obs
            })
        } else {
            None
        };
        let truth = provide_truth.then_some(kernel);
        governor.observe(&ctx, executed, observed.as_ref().unwrap_or(&outcome), truth);
    }
    governor.end_run();
    if tracing {
        sink.record(&TraceEvent::RunEnd {
            run_index,
            kernel_time_s: result.kernel_time_s,
            overhead_time_s: result.overhead_time_s,
            transition_time_s: result.transition_time_s,
            energy_j: result.total_energy_j(),
            gi: result.ginstructions,
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_governors::{FixedGovernor, TurboCore};
    use gpm_sim::ApuSimulator;
    use gpm_trace::RingSink;
    use gpm_workloads::workload_by_name;

    #[test]
    fn clean_env_is_disabled_on_both_channels() {
        let env = ExecEnv::new();
        assert!(!env.sink().enabled());
        assert!(!env.faults().enabled());
        assert!(!env.fault_plan().enabled());
    }

    #[test]
    fn fault_plan_enables_injector_and_keeps_plan() {
        let plan = FaultPlan::uniform(3, 0.5);
        let env = ExecEnv::new().with_fault_plan(plan.clone());
        assert!(env.faults().enabled());
        assert_eq!(env.fault_plan(), &plan);
    }

    #[test]
    fn traced_env_emits_lifecycle_events() {
        let sim = ApuSimulator::noiseless();
        let w = workload_by_name("Spmv").unwrap();
        let ring = Arc::new(RingSink::new(4096));
        let env = ExecEnv::new().with_trace(ring.clone());
        let mut gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
        let res = env.run(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false);
        let events = ring.snapshot();
        assert_eq!(res.per_kernel.len(), w.len());
        assert!(events.iter().any(|e| e.kind() == "RunStart"));
        assert_eq!(
            events.iter().filter(|e| e.kind() == "Decision").count(),
            w.len()
        );
        assert!(events.iter().any(|e| e.kind() == "RunEnd"));
    }

    #[test]
    fn telemetry_env_records_dispatch_metrics_and_spans() {
        let sim = ApuSimulator::noiseless();
        let w = workload_by_name("Spmv").unwrap();
        let tel = Telemetry::new();
        let env = ExecEnv::new().with_telemetry(tel.clone());
        assert!(env.telemetry().unwrap().same_registry(&tel));
        let mut gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
        let res = env.run(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("gpm_runs_total"), Some(1));
        assert_eq!(
            snap.counter("gpm_dispatches_total"),
            Some(res.per_kernel.len() as u64)
        );
        let dispatch = snap.span("env.dispatch").unwrap();
        assert_eq!(dispatch.count, res.per_kernel.len() as u64);
        // The replay un-enters its registry on return.
        assert!(Telemetry::current().is_none());
    }

    #[test]
    fn install_is_safe_on_internals_free_governors() {
        let sim = ApuSimulator::noiseless();
        let w = workload_by_name("kmeans").unwrap();
        let env = ExecEnv::new().with_fault_plan(FaultPlan::uniform(11, 0.2));
        let mut tc = TurboCore::new(sim.params().tdp_w);
        env.install(&mut tc);
        let res = env.run(&sim, &w, &mut tc, PerfTarget::new(1.0, 1.0), 0, false);
        assert_eq!(res.per_kernel.len(), w.len());
    }
}
