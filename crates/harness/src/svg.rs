//! Minimal SVG chart rendering for the figure binaries.
//!
//! Hand-rolled (no plotting dependency): grouped bar charts in the style
//! of the paper's Figures 4/8/9/12 and line charts for traces. Output is
//! deterministic, standalone SVG suitable for embedding in reports.

use std::fmt::Write as _;

/// One named series of a grouped bar chart.
#[derive(Debug, Clone)]
pub struct BarSeries {
    /// Legend label.
    pub name: String,
    /// One value per category (benchmark).
    pub values: Vec<f64>,
}

/// Distinct fill colors assigned to series in order.
const PALETTE: [&str; 6] = [
    "#4878a8", "#e49444", "#6a9f58", "#d1615d", "#85629c", "#918f8b",
];

/// Geometry constants.
const WIDTH: f64 = 960.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 48.0;
const MARGIN_B: f64 = 110.0;

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a grouped bar chart.
///
/// `categories` label the x-axis groups; every series must supply one
/// value per category. A horizontal reference line is drawn at
/// `reference` when given (e.g. speedup = 1.0).
///
/// # Panics
///
/// Panics if a series' length differs from the category count, or no
/// categories are given.
pub fn bar_chart(
    title: &str,
    categories: &[String],
    series: &[BarSeries],
    y_label: &str,
    reference: Option<f64>,
) -> String {
    assert!(
        !categories.is_empty(),
        "bar chart needs at least one category"
    );
    for s in series {
        assert_eq!(
            s.values.len(),
            categories.len(),
            "series `{}` arity",
            s.name
        );
    }

    let all: Vec<f64> = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .collect();
    let mut lo = all.iter().copied().fold(0.0f64, f64::min);
    let mut hi = all.iter().copied().fold(0.0f64, f64::max);
    if let Some(r) = reference {
        lo = lo.min(r);
        hi = hi.max(r);
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }
    let pad = 0.08 * (hi - lo);
    let (lo, hi) = (lo - pad, hi + pad);

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let y_of = |v: f64| MARGIN_T + plot_h * (1.0 - (v - lo) / (hi - lo));
    let group_w = plot_w / categories.len() as f64;
    let bar_w = (group_w * 0.8) / series.len().max(1) as f64;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" text-anchor="middle" font-size="16">{}</text>"#,
        WIDTH / 2.0,
        esc(title)
    );
    // y axis + gridlines.
    for i in 0..=5 {
        let v = lo + (hi - lo) * i as f64 / 5.0;
        let y = y_of(v);
        let _ = write!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            WIDTH - MARGIN_R
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{v:.1}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0
        );
    }
    let _ = write!(
        svg,
        r#"<text x="16" y="{:.1}" transform="rotate(-90 16 {:.1})" text-anchor="middle">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        esc(y_label)
    );
    // Reference line.
    if let Some(r) = reference {
        let y = y_of(r);
        let _ = write!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#333" stroke-dasharray="5,4"/>"##,
            WIDTH - MARGIN_R
        );
    }
    // Bars.
    let zero_y = y_of(0.0f64.clamp(lo, hi));
    for (ci, _) in categories.iter().enumerate() {
        let gx = MARGIN_L + group_w * ci as f64 + group_w * 0.1;
        for (si, s) in series.iter().enumerate() {
            let v = s.values[ci];
            let y = y_of(v);
            let (top, h) = if y <= zero_y {
                (y, zero_y - y)
            } else {
                (zero_y, y - zero_y)
            };
            let _ = write!(
                svg,
                r#"<rect x="{:.1}" y="{top:.1}" width="{:.1}" height="{:.2}" fill="{}"/>"#,
                gx + bar_w * si as f64,
                bar_w * 0.92,
                h.max(0.5),
                PALETTE[si % PALETTE.len()]
            );
        }
        // Rotated category label.
        let lx = gx + group_w * 0.4;
        let ly = HEIGHT - MARGIN_B + 14.0;
        let _ = write!(
            svg,
            r#"<text x="{lx:.1}" y="{ly:.1}" transform="rotate(-40 {lx:.1} {ly:.1})" text-anchor="end">{}</text>"#,
            esc(&categories[ci])
        );
    }
    // Legend.
    for (si, s) in series.iter().enumerate() {
        let lx = MARGIN_L + 140.0 * si as f64;
        let ly = HEIGHT - 18.0;
        let _ = write!(
            svg,
            r#"<rect x="{lx:.1}" y="{:.1}" width="12" height="12" fill="{}"/><text x="{:.1}" y="{ly:.1}">{}</text>"#,
            ly - 11.0,
            PALETTE[si % PALETTE.len()],
            lx + 16.0,
            esc(&s.name)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders a simple multi-series line chart (e.g. Figure 3 traces).
///
/// # Panics
///
/// Panics if no series or an empty series is given.
pub fn line_chart(title: &str, series: &[BarSeries], y_label: &str) -> String {
    assert!(!series.is_empty(), "line chart needs at least one series");
    assert!(series.iter().all(|s| !s.values.is_empty()), "empty series");

    let all: Vec<f64> = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .collect();
    let lo = all.iter().copied().fold(f64::MAX, f64::min).min(0.0);
    let hi = all.iter().copied().fold(f64::MIN, f64::max);
    let hi = if (hi - lo).abs() < 1e-12 {
        lo + 1.0
    } else {
        hi
    };
    let max_len = series.iter().map(|s| s.values.len()).max().unwrap_or(1);

    let plot_w = WIDTH - MARGIN_L - MARGIN_R;
    let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
    let y_of = |v: f64| MARGIN_T + plot_h * (1.0 - (v - lo) / (hi - lo));
    let x_of = |i: usize| MARGIN_L + plot_w * i as f64 / (max_len.max(2) - 1) as f64;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="12">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="24" text-anchor="middle" font-size="16">{}</text>"#,
        WIDTH / 2.0,
        esc(title)
    );
    for i in 0..=5 {
        let v = lo + (hi - lo) * i as f64 / 5.0;
        let y = y_of(v);
        let _ = write!(
            svg,
            r##"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            WIDTH - MARGIN_R
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{v:.2}</text>"#,
            MARGIN_L - 6.0,
            y + 4.0
        );
    }
    let _ = write!(
        svg,
        r#"<text x="16" y="{:.1}" transform="rotate(-90 16 {:.1})" text-anchor="middle">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        esc(y_label)
    );
    for (si, s) in series.iter().enumerate() {
        let pts: Vec<String> = s
            .values
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("{:.1},{:.1}", x_of(i), y_of(v)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{}" stroke-width="2"/>"#,
            pts.join(" "),
            PALETTE[si % PALETTE.len()]
        );
        let lx = MARGIN_L + 180.0 * si as f64;
        let ly = HEIGHT - 18.0;
        let _ = write!(
            svg,
            r#"<rect x="{lx:.1}" y="{:.1}" width="12" height="12" fill="{}"/><text x="{:.1}" y="{ly:.1}">{}</text>"#,
            ly - 11.0,
            PALETTE[si % PALETTE.len()],
            lx + 16.0,
            esc(&s.name)
        );
    }
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Vec<BarSeries> {
        vec![
            BarSeries {
                name: "PPK".into(),
                values: vec![10.0, -5.0, 30.0],
            },
            BarSeries {
                name: "MPC".into(),
                values: vec![25.0, 20.0, 45.0],
            },
        ]
    }

    fn cats() -> Vec<String> {
        vec!["a".into(), "b".into(), "c".into()]
    }

    #[test]
    fn bar_chart_is_wellformed_svg() {
        let svg = bar_chart("Energy savings", &cats(), &series(), "%", Some(0.0));
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + 6 + 2); // bg + bars + legend
        assert!(svg.contains("Energy savings"));
        assert!(svg.contains("PPK") && svg.contains("MPC"));
        // One dashed reference line.
        assert_eq!(svg.matches("stroke-dasharray").count(), 1);
    }

    #[test]
    fn bar_chart_escapes_labels() {
        let cats = vec!["a<b&c".to_string()];
        let s = vec![BarSeries {
            name: "x>y".into(),
            values: vec![1.0],
        }];
        let svg = bar_chart("t", &cats, &s, "y", None);
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(svg.contains("x&gt;y"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn line_chart_has_one_polyline_per_series() {
        let svg = line_chart("trace", &series(), "throughput");
        assert_eq!(svg.matches("<polyline").count(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_series_panics() {
        let bad = vec![BarSeries {
            name: "x".into(),
            values: vec![1.0],
        }];
        let _ = bar_chart("t", &cats(), &bad, "y", None);
    }

    #[test]
    fn deterministic_output() {
        let a = bar_chart("t", &cats(), &series(), "y", Some(1.0));
        let b = bar_chart("t", &cats(), &series(), "y", Some(1.0));
        assert_eq!(a, b);
    }
}
