//! Characterization traces: the Figure 2 sweeps and Figure 3 throughput
//! traces.

use crate::run::RunResult;
use gpm_hw::{CpuPState, CuCount, GpuDpm, HwConfig, NbState};
use gpm_sim::sampling::PowerSegment;
use gpm_sim::{ApuSimulator, KernelCharacteristics};
use gpm_workloads::Workload;
use serde::{Deserialize, Serialize};

/// One point of a Figure 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Northbridge state of the point.
    pub nb: NbState,
    /// Active compute units.
    pub cu: u32,
    /// Speedup relative to the (NB3, 2 CU) corner.
    pub speedup: f64,
    /// Kernel energy at this point, joules.
    pub energy_j: f64,
    /// Whether this is the energy-optimal point of the sweep (the mark in
    /// each Figure 2 panel).
    pub energy_optimal: bool,
}

/// Sweeps NB states × CU counts for one kernel at fixed CPU/GPU settings,
/// reproducing one panel of Figure 2.
///
/// The paper's panels fix the GPU DPM state high and scan the other two
/// GPU-side knobs; speedups are normalized to the slowest corner
/// (NB3, 2 CUs).
pub fn fig2_sweep(sim: &ApuSimulator, kernel: &KernelCharacteristics) -> Vec<SweepPoint> {
    let cfg_at = |nb: NbState, cu: CuCount| HwConfig::new(CpuPState::P5, nb, GpuDpm::Dpm4, cu);
    let base_time = sim
        .evaluate(kernel, cfg_at(NbState::Nb3, CuCount::MIN))
        .time_s;

    let mut points = Vec::with_capacity(16);
    for &nb in &NbState::ALL {
        for &cu in &CuCount::ALL {
            let out = sim.evaluate(kernel, cfg_at(nb, cu));
            points.push(SweepPoint {
                nb,
                cu: cu.get(),
                speedup: base_time / out.time_s,
                energy_j: out.energy.total_j(),
                energy_optimal: false,
            });
        }
    }
    if let Some(best) = points
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.energy_j.total_cmp(&b.1.energy_j))
        .map(|(i, _)| i)
    {
        points[best].energy_optimal = true;
    }
    points
}

/// Per-invocation kernel throughput normalized to the application's
/// overall throughput (the y-axis of Figure 3), measured at the Turbo Core
/// boost configuration.
pub fn fig3_trace(sim: &ApuSimulator, workload: &Workload) -> Vec<f64> {
    let outs: Vec<_> = workload
        .kernels()
        .iter()
        .map(|k| sim.evaluate(k, HwConfig::MAX_PERF))
        .collect();
    let total_gi: f64 = outs.iter().map(|o| o.ginstructions).sum();
    let total_t: f64 = outs.iter().map(|o| o.time_s).sum();
    let overall = total_gi / total_t.max(1e-12);
    outs.iter().map(|o| o.throughput() / overall).collect()
}

/// Reconstructs the piecewise-constant power timeline of a completed run,
/// ready for [`gpm_sim::sampling::sample_trace`] — the 1 ms power traces
/// the paper's measurement controller captures. Optimizer gaps appear as
/// `mpc-optimizer` segments at the MPC host configuration's power.
pub fn power_segments(
    sim: &ApuSimulator,
    workload: &Workload,
    result: &RunResult,
) -> Vec<PowerSegment> {
    let mut segments = Vec::with_capacity(result.per_kernel.len() * 2);
    for (kernel, run) in workload.kernels().iter().zip(&result.per_kernel) {
        if run.overhead_s > 0.0 {
            let opt = gpm_sim::power::optimizer_power(sim.params(), HwConfig::MPC_HOST);
            segments.push(PowerSegment {
                label: "mpc-optimizer".into(),
                duration_s: run.overhead_s,
                power: opt,
            });
        }
        let out = sim.evaluate(kernel, run.config);
        segments.push(PowerSegment {
            label: run.name.clone(),
            duration_s: run.time_s,
            power: out.power,
        });
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_workloads::{microkernels, workload_by_name};

    #[test]
    fn sweep_has_sixteen_points_and_one_optimum() {
        let sim = ApuSimulator::noiseless();
        let points = fig2_sweep(&sim, &microkernels::max_flops());
        assert_eq!(points.len(), 16);
        assert_eq!(points.iter().filter(|p| p.energy_optimal).count(), 1);
        // Normalization corner has speedup 1.
        let corner = points
            .iter()
            .find(|p| p.nb == NbState::Nb3 && p.cu == 2)
            .unwrap();
        assert!((corner.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_sweep_grows_with_cus() {
        let sim = ApuSimulator::noiseless();
        let points = fig2_sweep(&sim, &microkernels::max_flops());
        let at = |nb: NbState, cu: u32| {
            points
                .iter()
                .find(|p| p.nb == nb && p.cu == cu)
                .unwrap()
                .speedup
        };
        assert!(at(NbState::Nb0, 8) > 2.5 * at(NbState::Nb0, 2));
    }

    #[test]
    fn memory_bound_sweep_plateaus_from_nb2() {
        let sim = ApuSimulator::noiseless();
        let points = fig2_sweep(&sim, &microkernels::read_global_memory_coalesced());
        let at = |nb: NbState, cu: u32| {
            points
                .iter()
                .find(|p| p.nb == nb && p.cu == cu)
                .unwrap()
                .speedup
        };
        assert!((at(NbState::Nb2, 8) / at(NbState::Nb0, 8) - 1.0).abs() < 0.05);
        assert!(at(NbState::Nb3, 8) < 0.7 * at(NbState::Nb2, 8));
    }

    #[test]
    fn fig3_traces_have_expected_shapes() {
        let sim = ApuSimulator::noiseless();
        let spmv = fig3_trace(&sim, &workload_by_name("Spmv").unwrap());
        assert_eq!(spmv.len(), 30);
        assert!(spmv[0] > 1.0 && spmv[29] < 1.0, "Spmv high→low");
        let kmeans = fig3_trace(&sim, &workload_by_name("kmeans").unwrap());
        assert!(kmeans[0] < 1.0 && kmeans[5] > 1.0, "kmeans low→high");
    }

    #[test]
    fn power_segments_reconstruct_run_energy() {
        use crate::env::ExecEnv;
        use gpm_governors::{FixedGovernor, PerfTarget};
        use gpm_sim::sampling::{sample_trace, trace_energy_j};
        let sim = ApuSimulator::noiseless();
        let w = workload_by_name("EigenValue").unwrap();
        let mut gov = FixedGovernor::new(HwConfig::FAIL_SAFE);
        let res = ExecEnv::new().run(&sim, &w, &mut gov, PerfTarget::new(1.0, 1.0), 0, false);
        let segments = power_segments(&sim, &w, &res);
        assert_eq!(segments.len(), w.len());
        let total_seg: f64 = segments.iter().map(|s| s.duration_s).sum();
        assert!((total_seg - res.wall_time_s()).abs() < 1e-9);
        // A 1 ms-sampled trace integrates to within a few percent of the
        // true energy.
        let trace = sample_trace(&segments, 1e-3);
        let measured = trace_energy_j(&trace, 1e-3);
        assert!(
            (measured / res.total_energy_j() - 1.0).abs() < 0.05,
            "sampled {measured} vs true {}",
            res.total_energy_j()
        );
    }

    #[test]
    fn fig3_normalization_is_consistent() {
        // The time-weighted harmonic structure: overall throughput equals
        // total gi over total time, so normalized values straddle 1.
        let sim = ApuSimulator::noiseless();
        let t = fig3_trace(&sim, &workload_by_name("hybridsort").unwrap());
        assert!(t.iter().any(|&v| v > 1.0));
        assert!(t.iter().any(|&v| v < 1.0));
    }
}
