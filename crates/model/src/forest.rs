//! Random Forest regression: bagged CART trees with feature subsampling
//! (Breiman 2001, the algorithm the paper selected for its predictor).

use crate::tree::{RegressionTree, TreeParams};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees in the ensemble.
    pub num_trees: usize,
    /// Parameters of each tree. `feature_subsample: None` here means
    /// "use ⌈√d⌉ features per split", the usual forest default.
    pub tree: TreeParams,
    /// Bootstrap sample size as a fraction of the training set.
    pub bootstrap_fraction: f64,
}

impl Default for ForestParams {
    fn default() -> ForestParams {
        ForestParams {
            num_trees: 48,
            tree: TreeParams::default(),
            bootstrap_fraction: 1.0,
        }
    }
}

/// A fitted Random Forest: the mean of its trees' predictions.
///
/// # Examples
///
/// ```
/// use gpm_model::{RandomForest, ForestParams};
///
/// let xs: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64, (80 - i) as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
/// let forest = RandomForest::fit(&xs, &ys, &ForestParams::default(), 42);
/// let err = (forest.predict(&[40.0, 40.0]) - 80.0).abs();
/// assert!(err < 20.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    /// For each tree, the training-sample indices it saw (bootstrap
    /// membership), kept for out-of-bag evaluation.
    in_bag: Vec<Vec<bool>>,
}

impl RandomForest {
    /// Fits a forest to `(xs, ys)` with deterministic randomness from
    /// `seed`, fitting trees in parallel across all available cores.
    ///
    /// Equivalent to [`fit_with_threads`](RandomForest::fit_with_threads)
    /// with `threads = 0` (auto); the result is bit-identical regardless
    /// of thread count.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or `ys.len() != xs.len()` (propagated from
    /// tree fitting).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &ForestParams, seed: u64) -> RandomForest {
        RandomForest::fit_with_threads(xs, ys, params, seed, 0)
    }

    /// Fits a forest on an explicit number of worker threads (`0` means
    /// "one per available core").
    ///
    /// Determinism is preserved by construction: every bootstrap bag is
    /// drawn **sequentially** from the single seeded stream before any
    /// tree is fitted, and each tree then derives its own split/subsample
    /// RNG from `seed ^ t·0x9e37` — so the fitted forest is bit-identical
    /// for every `threads` value (pinned by a unit test).
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or `ys.len() != xs.len()` (propagated from
    /// tree fitting).
    pub fn fit_with_threads(
        xs: &[Vec<f64>],
        ys: &[f64],
        params: &ForestParams,
        seed: u64,
        threads: usize,
    ) -> RandomForest {
        let _span = gpm_telemetry::span("rf.fit");
        assert!(!xs.is_empty(), "cannot fit a forest to zero samples");
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        let num_features = xs[0].len();
        let mut tree_params = params.tree.clone();
        if tree_params.feature_subsample.is_none() {
            let k = (num_features as f64).sqrt().ceil() as usize;
            tree_params.feature_subsample = Some(k.max(1));
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let sample_n =
            ((xs.len() as f64 * params.bootstrap_fraction).round() as usize).clamp(1, xs.len() * 4);
        let num_trees = params.num_trees.max(1);
        // Bags come from the shared stream, in tree order, before any
        // fitting starts — the part that must stay sequential.
        let mut bags = Vec::with_capacity(num_trees);
        for _ in 0..num_trees {
            let mut bx = Vec::with_capacity(sample_n);
            let mut by = Vec::with_capacity(sample_n);
            let mut bag = vec![false; xs.len()];
            for _ in 0..sample_n {
                let i = rng.gen_range(0..xs.len());
                bag[i] = true;
                bx.push(xs[i].clone());
                by.push(ys[i]);
            }
            bags.push((bx, by, bag));
        }

        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        }
        .clamp(1, num_trees);
        let tree_seed = |t: usize| seed ^ (t as u64).wrapping_mul(0x9e37);
        let mut slots: Vec<Option<RegressionTree>> = vec![None; num_trees];
        if threads == 1 {
            for (t, slot) in slots.iter_mut().enumerate() {
                let (bx, by, _) = &bags[t];
                *slot = Some(RegressionTree::fit(bx, by, &tree_params, tree_seed(t)));
            }
        } else {
            let chunk = num_trees.div_ceil(threads);
            let bags_ref = &bags;
            let tree_params_ref = &tree_params;
            std::thread::scope(|scope| {
                for (w, slot_chunk) in slots.chunks_mut(chunk).enumerate() {
                    scope.spawn(move || {
                        for (off, slot) in slot_chunk.iter_mut().enumerate() {
                            let t = w * chunk + off;
                            let (bx, by, _) = &bags_ref[t];
                            *slot =
                                Some(RegressionTree::fit(bx, by, tree_params_ref, tree_seed(t)));
                        }
                    });
                }
            });
        }
        let trees = slots
            .into_iter()
            .map(|slot| slot.expect("every tree fitted"))
            .collect();
        let in_bag = bags.into_iter().map(|(_, _, bag)| bag).collect();
        RandomForest { trees, in_bag }
    }

    /// Mean prediction over all trees.
    ///
    /// Dimensionality checking follows [`RegressionTree::predict`]'s
    /// contract: debug builds assert, release builds rely on callers
    /// validating the row width at the batch boundary.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Per-tree predictions written into `out` (cleared and refilled, so
    /// the allocation is reused across calls); exposes ensemble spread for
    /// diagnostics without a per-call allocation.
    pub fn predict_all_into(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.trees.iter().map(|t| t.predict(x)));
    }

    /// Allocating convenience wrapper around
    /// [`predict_all_into`](RandomForest::predict_all_into) for one-shot
    /// diagnostics callers.
    pub fn predict_all(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.trees.len());
        self.predict_all_into(x, &mut out);
        out
    }

    /// The fitted trees, for flattening into a
    /// [`FlatForest`](crate::FlatForest).
    pub(crate) fn trees(&self) -> &[RegressionTree] {
        &self.trees
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Out-of-bag prediction for training sample `i` of the fit: the mean
    /// over the trees whose bootstrap did *not* contain `i`. `None` when
    /// every tree saw the sample (possible for small ensembles).
    pub fn oob_predict(&self, i: usize, x: &[f64]) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (tree, bag) in self.trees.iter().zip(&self.in_bag) {
            if !bag.get(i).copied().unwrap_or(false) {
                sum += tree.predict(x);
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Out-of-bag RMSE over the training set — the free generalization
    /// estimate classic Random Forests report (Breiman 2001). Samples seen
    /// by every tree are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `xs`/`ys` differ in length from the training set.
    pub fn oob_rmse(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        assert_eq!(
            xs.len(),
            self.in_bag.first().map_or(xs.len(), Vec::len),
            "out-of-bag evaluation needs the original training set"
        );
        let mut sse = 0.0;
        let mut n = 0usize;
        for (i, (x, &y)) in xs.iter().zip(ys).enumerate() {
            if let Some(pred) = self.oob_predict(i, x) {
                sse += (pred - y) * (pred - y);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            (sse / n as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_linear(seed_like: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![i as f64, ((i * 31 + seed_like) % 13) as f64])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 0.5 * x[0] + ((x[1] as i64 % 3) as f64) * 0.1)
            .collect();
        (xs, ys)
    }

    #[test]
    fn forest_fits_linear_trend() {
        let (xs, ys) = noisy_linear(0);
        let forest = RandomForest::fit(&xs, &ys, &ForestParams::default(), 7);
        for probe in [10.0, 75.0, 140.0] {
            let pred = forest.predict(&[probe, 1.0]);
            assert!(
                (pred - 0.5 * probe).abs() < 8.0,
                "probe {probe} pred {pred}"
            );
        }
    }

    #[test]
    fn fit_is_deterministic_per_seed() {
        let (xs, ys) = noisy_linear(0);
        let a = RandomForest::fit(&xs, &ys, &ForestParams::default(), 7);
        let b = RandomForest::fit(&xs, &ys, &ForestParams::default(), 7);
        assert_eq!(a.predict(&[42.0, 3.0]), b.predict(&[42.0, 3.0]));
    }

    #[test]
    fn different_seeds_differ() {
        let (xs, ys) = noisy_linear(0);
        let a = RandomForest::fit(&xs, &ys, &ForestParams::default(), 7);
        let b = RandomForest::fit(&xs, &ys, &ForestParams::default(), 8);
        // Overwhelmingly likely to differ somewhere.
        let differs = (0..150).any(|i| a.predict(&[i as f64, 1.0]) != b.predict(&[i as f64, 1.0]));
        assert!(differs);
    }

    #[test]
    fn predict_all_has_num_trees_entries() {
        let (xs, ys) = noisy_linear(0);
        let params = ForestParams {
            num_trees: 12,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&xs, &ys, &params, 7);
        assert_eq!(forest.num_trees(), 12);
        assert_eq!(forest.predict_all(&[1.0, 1.0]).len(), 12);
    }

    #[test]
    fn mean_of_predict_all_is_predict() {
        let (xs, ys) = noisy_linear(1);
        let forest = RandomForest::fit(&xs, &ys, &ForestParams::default(), 3);
        let x = [55.0, 2.0];
        let all = forest.predict_all(&x);
        let mean = all.iter().sum::<f64>() / all.len() as f64;
        assert!((mean - forest.predict(&x)).abs() < 1e-12);
    }

    #[test]
    fn fit_is_bit_identical_across_thread_counts() {
        let (xs, ys) = noisy_linear(4);
        let params = ForestParams {
            num_trees: 10,
            ..ForestParams::default()
        };
        let auto = RandomForest::fit(&xs, &ys, &params, 11);
        for threads in [1, 2, 3, 8, 64] {
            let forest = RandomForest::fit_with_threads(&xs, &ys, &params, 11, threads);
            assert_eq!(forest, auto, "{threads} threads diverged from auto fit");
        }
    }

    #[test]
    fn predict_all_into_reuses_allocation_and_matches_wrapper() {
        let (xs, ys) = noisy_linear(1);
        let forest = RandomForest::fit(&xs, &ys, &ForestParams::default(), 3);
        let mut out = Vec::new();
        forest.predict_all_into(&[55.0, 2.0], &mut out);
        assert_eq!(out, forest.predict_all(&[55.0, 2.0]));
        let cap = out.capacity();
        forest.predict_all_into(&[10.0, 1.0], &mut out);
        assert_eq!(out.capacity(), cap, "refill must not reallocate");
        assert_eq!(out.len(), forest.num_trees());
    }

    #[test]
    fn single_tree_forest_works() {
        let (xs, ys) = noisy_linear(0);
        let params = ForestParams {
            num_trees: 1,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&xs, &ys, &params, 7);
        assert_eq!(forest.num_trees(), 1);
        assert!(forest.predict(&[10.0, 0.0]).is_finite());
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_fit_panics() {
        let _ = RandomForest::fit(&[], &[], &ForestParams::default(), 1);
    }

    #[test]
    fn oob_error_approximates_held_out_error() {
        // OOB RMSE should be in the same ballpark as RMSE on a fresh
        // held-out set drawn from the same process.
        let (xs, ys) = noisy_linear(0);
        let (train_x, test_x) = xs.split_at(100);
        let (train_y, test_y) = ys.split_at(100);
        let forest = RandomForest::fit(train_x, train_y, &ForestParams::default(), 7);
        let oob = forest.oob_rmse(train_x, train_y);
        let held_sse: f64 = test_x
            .iter()
            .zip(test_y)
            .map(|(x, &y)| (forest.predict(x) - y) * (forest.predict(x) - y))
            .sum();
        let held = (held_sse / test_x.len() as f64).sqrt();
        assert!(oob > 0.0);
        assert!(oob < held * 3.0 + 1.0, "OOB {oob} vs held-out {held}");
    }

    #[test]
    fn oob_predict_excludes_in_bag_trees() {
        let (xs, ys) = noisy_linear(2);
        let params = ForestParams {
            num_trees: 16,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&xs, &ys, &params, 3);
        // Some sample must be out-of-bag for at least one tree.
        let any_oob = (0..xs.len()).any(|i| forest.oob_predict(i, &xs[i]).is_some());
        assert!(any_oob);
    }
}
