//! Feature encoding shared by training and prediction.
//!
//! Each sample is the concatenation of the kernel's eight Table III
//! counters (log-scaled, since they span many orders of magnitude) and six
//! features describing the *target* hardware configuration. Keeping the
//! encoding in one place guarantees that the predictor sees exactly the
//! layout the forest was trained on.

use gpm_hw::HwConfig;
use gpm_sim::{CounterSet, NUM_COUNTERS};

/// Total feature dimensionality: 8 counters + 6 configuration features.
pub const NUM_FEATURES: usize = NUM_COUNTERS + 6;

/// Human-readable feature names, index-aligned with [`encode_features`].
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "log_GlobalWorkSize",
    "MemUnitStalled",
    "CacheHit",
    "log_VFetchInsts",
    "ScratchRegs",
    "LDSBankConflict",
    "log_VALUInsts",
    "log_FetchSize",
    "cpu_freq_ghz",
    "nb_freq_ghz",
    "mem_freq_ghz",
    "gpu_freq_ghz",
    "cu_count",
    "rail_voltage",
];

/// Encodes a (counters, configuration) pair into the model feature vector.
///
/// Counter magnitudes with wide dynamic range (`GlobalWorkSize`,
/// `VFetchInsts`, `VALUInsts`, `FetchSize`) are `ln(1+x)`-scaled;
/// percentage counters are kept linear. Configuration features are
/// physical quantities (clocks in GHz, the shared rail voltage) rather
/// than opaque state indices so trees can split on meaningful thresholds.
///
/// # Examples
///
/// ```
/// use gpm_hw::HwConfig;
/// use gpm_model::{encode_features, NUM_FEATURES};
/// use gpm_sim::CounterSet;
///
/// let f = encode_features(&CounterSet::default(), HwConfig::FAIL_SAFE);
/// assert_eq!(f.len(), NUM_FEATURES);
/// ```
pub fn encode_features(counters: &CounterSet, cfg: HwConfig) -> Vec<f64> {
    let v = counters.values();
    vec![
        (v[0] + 1.0).ln(),
        v[1],
        v[2],
        (v[3] + 1.0).ln(),
        v[4],
        v[5],
        (v[6] + 1.0).ln(),
        (v[7] + 1.0).ln(),
        cfg.cpu.freq_ghz(),
        cfg.nb.freq_ghz(),
        cfg.nb.mem_freq_mhz() / 1000.0,
        cfg.gpu.freq_mhz() / 1000.0,
        f64::from(cfg.cu.get()),
        cfg.rail_voltage(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::{CpuPState, CuCount, GpuDpm, NbState};

    #[test]
    fn feature_count_and_names_agree() {
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
        let f = encode_features(&CounterSet::default(), HwConfig::FAIL_SAFE);
        assert_eq!(f.len(), NUM_FEATURES);
    }

    #[test]
    fn config_features_vary_with_config() {
        let c = CounterSet::default();
        let a = encode_features(&c, HwConfig::MAX_PERF);
        let b = encode_features(
            &c,
            HwConfig::new(CpuPState::P7, NbState::Nb3, GpuDpm::Dpm0, CuCount::MIN),
        );
        // Counter features identical, config features all different.
        assert_eq!(a[..8], b[..8]);
        for i in 8..NUM_FEATURES {
            assert_ne!(a[i], b[i], "feature {} should differ", FEATURE_NAMES[i]);
        }
    }

    #[test]
    fn log_scaling_compresses_large_counters() {
        let big = CounterSet::from_values([1e9, 50.0, 50.0, 1e6, 8.0, 5.0, 1e4, 1e7]);
        let f = encode_features(&big, HwConfig::FAIL_SAFE);
        assert!(f[0] < 25.0);
        assert!(f[3] < 16.0);
        assert!(f[7] < 18.0);
        // Percent counters stay linear.
        assert_eq!(f[1], 50.0);
    }

    #[test]
    fn features_are_finite() {
        let c = CounterSet::from_values([0.0; 8]);
        for v in encode_features(&c, HwConfig::FAIL_SAFE) {
            assert!(v.is_finite());
        }
    }
}
