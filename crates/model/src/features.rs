//! Feature encoding shared by training and prediction.
//!
//! Each sample is the concatenation of the kernel's eight Table III
//! counters (log-scaled, since they span many orders of magnitude) and six
//! features describing the *target* hardware configuration. Keeping the
//! encoding in one place guarantees that the predictor sees exactly the
//! layout the forest was trained on.
//!
//! The encoding is split into two halves so the optimizer hot path can
//! amortize work across a candidate sweep:
//!
//! * [`encode_counter_features`] — the snapshot-dependent prefix (four
//!   `ln(1+x)` calls), computed **once per snapshot**;
//! * [`encode_config_features`] — the six-element configuration suffix,
//!   computed **once per candidate**;
//! * [`FeatureBuffer`] — a reusable row-major [`FeatureMatrix`] writer
//!   that stitches the two together with zero per-candidate allocation.
//!
//! [`encode_features`] remains the one-shot reference composition of the
//! two halves and is bit-identical to the split encoding.

use gpm_hw::HwConfig;
use gpm_sim::{CounterSet, NUM_COUNTERS};

/// Number of configuration features appended to the counter prefix.
pub const NUM_CONFIG_FEATURES: usize = 6;

/// Total feature dimensionality: 8 counters + 6 configuration features.
pub const NUM_FEATURES: usize = NUM_COUNTERS + NUM_CONFIG_FEATURES;

/// Human-readable feature names, index-aligned with [`encode_features`].
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "log_GlobalWorkSize",
    "MemUnitStalled",
    "CacheHit",
    "log_VFetchInsts",
    "ScratchRegs",
    "LDSBankConflict",
    "log_VALUInsts",
    "log_FetchSize",
    "cpu_freq_ghz",
    "nb_freq_ghz",
    "mem_freq_ghz",
    "gpu_freq_ghz",
    "cu_count",
    "rail_voltage",
];

/// Encodes the snapshot-dependent feature prefix: the eight Table III
/// counters with wide-dynamic-range entries (`GlobalWorkSize`,
/// `VFetchInsts`, `VALUInsts`, `FetchSize`) `ln(1+x)`-scaled and
/// percentage counters kept linear.
///
/// This half depends only on the kernel snapshot, so optimizers pricing
/// hundreds of candidate configurations against one snapshot compute it
/// exactly once.
pub fn encode_counter_features(counters: &CounterSet) -> [f64; NUM_COUNTERS] {
    let v = counters.values();
    [
        (v[0] + 1.0).ln(),
        v[1],
        v[2],
        (v[3] + 1.0).ln(),
        v[4],
        v[5],
        (v[6] + 1.0).ln(),
        (v[7] + 1.0).ln(),
    ]
}

/// Encodes the six-element configuration suffix: physical quantities
/// (clocks in GHz, the shared rail voltage) rather than opaque state
/// indices, so trees can split on meaningful thresholds.
pub fn encode_config_features(cfg: HwConfig) -> [f64; NUM_CONFIG_FEATURES] {
    [
        cfg.cpu.freq_ghz(),
        cfg.nb.freq_ghz(),
        cfg.nb.mem_freq_mhz() / 1000.0,
        cfg.gpu.freq_mhz() / 1000.0,
        f64::from(cfg.cu.get()),
        cfg.rail_voltage(),
    ]
}

/// Encodes a (counters, configuration) pair into the model feature vector.
///
/// The composition of [`encode_counter_features`] and
/// [`encode_config_features`]; bit-identical to writing the same pair
/// through a [`FeatureBuffer`].
///
/// # Examples
///
/// ```
/// use gpm_hw::HwConfig;
/// use gpm_model::{encode_features, NUM_FEATURES};
/// use gpm_sim::CounterSet;
///
/// let f = encode_features(&CounterSet::default(), HwConfig::FAIL_SAFE);
/// assert_eq!(f.len(), NUM_FEATURES);
/// ```
pub fn encode_features(counters: &CounterSet, cfg: HwConfig) -> Vec<f64> {
    let mut out = Vec::with_capacity(NUM_FEATURES);
    out.extend_from_slice(&encode_counter_features(counters));
    out.extend_from_slice(&encode_config_features(cfg));
    out
}

/// A row-major matrix of encoded feature rows, each [`NUM_FEATURES`] wide.
///
/// The backing storage is reused across [`clear`](FeatureMatrix::clear)
/// cycles, so steady-state refills allocate nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// An empty matrix.
    pub fn new() -> FeatureMatrix {
        FeatureMatrix::default()
    }

    /// Number of rows currently stored.
    pub fn rows(&self) -> usize {
        self.data.len() / NUM_FEATURES
    }

    /// Whether the matrix holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a [`NUM_FEATURES`]-element slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * NUM_FEATURES..(i + 1) * NUM_FEATURES]
    }

    /// Iterates over the rows in insertion order.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(NUM_FEATURES)
    }

    /// Drops all rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends one row assembled from a counter prefix and a config
    /// suffix.
    pub fn push_split_row(
        &mut self,
        prefix: &[f64; NUM_COUNTERS],
        suffix: &[f64; NUM_CONFIG_FEATURES],
    ) {
        self.data.reserve(NUM_FEATURES);
        self.data.extend_from_slice(prefix);
        self.data.extend_from_slice(suffix);
    }
}

/// Reusable writer that encodes one snapshot prefix followed by any
/// number of per-candidate configuration rows — the allocation-free front
/// end of the batched inference engine.
///
/// # Examples
///
/// ```
/// use gpm_hw::HwConfig;
/// use gpm_model::{encode_features, FeatureBuffer};
/// use gpm_sim::CounterSet;
///
/// let counters = CounterSet::default();
/// let mut buf = FeatureBuffer::new();
/// buf.begin_snapshot(&counters);
/// buf.push_config(HwConfig::FAIL_SAFE);
/// buf.push_config(HwConfig::MAX_PERF);
/// assert_eq!(buf.matrix().rows(), 2);
/// // Bit-identical to the one-shot encoding.
/// assert_eq!(
///     buf.matrix().row(1),
///     encode_features(&counters, HwConfig::MAX_PERF).as_slice()
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureBuffer {
    prefix: [f64; NUM_COUNTERS],
    matrix: FeatureMatrix,
}

impl FeatureBuffer {
    /// An empty buffer.
    pub fn new() -> FeatureBuffer {
        FeatureBuffer::default()
    }

    /// Starts a new snapshot: computes the counter prefix once and drops
    /// any previously written rows (the allocation is kept).
    pub fn begin_snapshot(&mut self, counters: &CounterSet) {
        self.prefix = encode_counter_features(counters);
        self.matrix.clear();
    }

    /// Appends the feature row for one candidate configuration.
    pub fn push_config(&mut self, cfg: HwConfig) {
        self.matrix
            .push_split_row(&self.prefix, &encode_config_features(cfg));
    }

    /// The rows written since the last
    /// [`begin_snapshot`](FeatureBuffer::begin_snapshot).
    pub fn matrix(&self) -> &FeatureMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::{ConfigSpace, CpuPState, CuCount, GpuDpm, NbState};

    #[test]
    fn feature_count_and_names_agree() {
        assert_eq!(FEATURE_NAMES.len(), NUM_FEATURES);
        let f = encode_features(&CounterSet::default(), HwConfig::FAIL_SAFE);
        assert_eq!(f.len(), NUM_FEATURES);
    }

    #[test]
    fn config_features_vary_with_config() {
        let c = CounterSet::default();
        let a = encode_features(&c, HwConfig::MAX_PERF);
        let b = encode_features(
            &c,
            HwConfig::new(CpuPState::P7, NbState::Nb3, GpuDpm::Dpm0, CuCount::MIN),
        );
        // Counter features identical, config features all different.
        assert_eq!(a[..8], b[..8]);
        for i in 8..NUM_FEATURES {
            assert_ne!(a[i], b[i], "feature {} should differ", FEATURE_NAMES[i]);
        }
    }

    #[test]
    fn log_scaling_compresses_large_counters() {
        let big = CounterSet::from_values([1e9, 50.0, 50.0, 1e6, 8.0, 5.0, 1e4, 1e7]);
        let f = encode_features(&big, HwConfig::FAIL_SAFE);
        assert!(f[0] < 25.0);
        assert!(f[3] < 16.0);
        assert!(f[7] < 18.0);
        // Percent counters stay linear.
        assert_eq!(f[1], 50.0);
    }

    #[test]
    fn features_are_finite() {
        let c = CounterSet::from_values([0.0; 8]);
        for v in encode_features(&c, HwConfig::FAIL_SAFE) {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn split_encoding_is_bit_identical_to_one_shot() {
        let counters = CounterSet::from_values([1e9, 50.0, 33.0, 1e6, 8.0, 5.0, 1e4, 1e7]);
        let mut buf = FeatureBuffer::new();
        buf.begin_snapshot(&counters);
        for cfg in &ConfigSpace::full() {
            buf.push_config(cfg);
        }
        for (row, cfg) in buf.matrix().iter_rows().zip(&ConfigSpace::full()) {
            let reference = encode_features(&counters, cfg);
            assert_eq!(row.len(), NUM_FEATURES);
            for (a, b) in row.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "{cfg} row differs");
            }
        }
    }

    #[test]
    fn buffer_reuse_keeps_rows_consistent_across_snapshots() {
        let first = CounterSet::from_values([10.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let second = CounterSet::from_values([99.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0]);
        let mut buf = FeatureBuffer::new();
        buf.begin_snapshot(&first);
        buf.push_config(HwConfig::MAX_PERF);
        buf.begin_snapshot(&second);
        buf.push_config(HwConfig::MAX_PERF);
        assert_eq!(buf.matrix().rows(), 1);
        assert_eq!(
            buf.matrix().row(0),
            encode_features(&second, HwConfig::MAX_PERF).as_slice()
        );
    }

    #[test]
    fn matrix_row_iteration_matches_indexing() {
        let counters = CounterSet::default();
        let mut buf = FeatureBuffer::new();
        buf.begin_snapshot(&counters);
        buf.push_config(HwConfig::FAIL_SAFE);
        buf.push_config(HwConfig::MAX_PERF);
        let m = buf.matrix();
        let collected: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(collected.len(), m.rows());
        for (i, row) in collected.iter().enumerate() {
            assert_eq!(*row, m.row(i));
        }
    }
}
