//! CART regression trees with variance-reduction splitting.
//!
//! Each tree greedily chooses, at every node, the (feature, threshold) pair
//! that minimizes the summed squared error of the two children. Thresholds
//! are drawn from up to [`TreeParams::threshold_candidates`] quantiles of
//! the feature values at the node, which keeps fitting `O(n)` per candidate
//! instead of `O(n log n)` full sorts per feature.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a single regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth; the root is depth 0.
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Number of features examined per split (`None` = all). Random
    /// forests set this to roughly √d to decorrelate trees.
    pub feature_subsample: Option<usize>,
    /// Candidate split thresholds examined per feature.
    pub threshold_candidates: usize,
}

impl Default for TreeParams {
    fn default() -> TreeParams {
        TreeParams {
            max_depth: 12,
            min_samples_leaf: 2,
            feature_subsample: None,
            threshold_candidates: 24,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART regression tree.
///
/// # Examples
///
/// ```
/// use gpm_model::{RegressionTree, TreeParams};
///
/// let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| if x[0] < 20.0 { 1.0 } else { 5.0 }).collect();
/// let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 1);
/// assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
/// assert!((tree.predict(&[33.0]) - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

impl RegressionTree {
    /// Fits a tree to `(xs, ys)`.
    ///
    /// `seed` drives feature subsampling; trees with
    /// `feature_subsample: None` are deterministic regardless of seed.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty, `ys.len() != xs.len()`, or feature vectors
    /// have inconsistent lengths.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], params: &TreeParams, seed: u64) -> RegressionTree {
        assert!(!xs.is_empty(), "cannot fit a tree to zero samples");
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        let num_features = xs[0].len();
        assert!(
            xs.iter().all(|x| x.len() == num_features),
            "inconsistent feature dimensionality"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            num_features,
        };
        let idx: Vec<usize> = (0..xs.len()).collect();
        tree.build(xs, ys, idx, 0, params, &mut rng);
        tree
    }

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// The dimensionality check is a `debug_assert!`: callers must pass a
    /// vector of exactly the training dimensionality
    /// ([`num_features`](RegressionTree::num_features)). Debug builds panic
    /// on a mismatch; release builds skip the per-call check (this sits on
    /// the optimizer's innermost loop) and a *shorter* vector then panics
    /// on the out-of-bounds feature access, while a longer one silently
    /// ignores the extra entries. Batch callers should validate once at
    /// the batch boundary instead.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(
            x.len(),
            self.num_features,
            "feature dimensionality mismatch"
        );
        let mut node = 0usize;
        loop {
            match self.nodes[node] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Number of nodes in the fitted tree.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Dimensionality of the feature vectors the tree was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// The fitted node array (crate-internal; consumed by the flat
    /// inference engine).
    pub(crate) fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Maximum depth actually reached.
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], at: usize) -> usize {
            match nodes[at] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, left).max(walk(nodes, right)),
            }
        }
        walk(&self.nodes, 0)
    }

    fn build(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: Vec<usize>,
        depth: usize,
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> usize {
        let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
        let stop = depth >= params.max_depth
            || idx.len() < 2 * params.min_samples_leaf
            || idx.iter().all(|&i| (ys[i] - mean).abs() < 1e-15);
        if stop {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        }

        let split = self.best_split(xs, ys, &idx, params, rng);
        let Some((feature, threshold)) = split else {
            self.nodes.push(Node::Leaf { value: mean });
            return self.nodes.len() - 1;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.into_iter().partition(|&i| xs[i][feature] <= threshold);
        // Reserve this node's slot before recursing.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { value: mean });
        let left = self.build(xs, ys, left_idx, depth + 1, params, rng);
        let right = self.build(xs, ys, right_idx, depth + 1, params, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    fn best_split(
        &self,
        xs: &[Vec<f64>],
        ys: &[f64],
        idx: &[usize],
        params: &TreeParams,
        rng: &mut StdRng,
    ) -> Option<(usize, f64)> {
        let mut features: Vec<usize> = (0..self.num_features).collect();
        if let Some(k) = params.feature_subsample {
            features.shuffle(rng);
            features.truncate(k.max(1).min(self.num_features));
        }

        let n = idx.len() as f64;
        let sum: f64 = idx.iter().map(|&i| ys[i]).sum();
        let sum_sq: f64 = idx.iter().map(|&i| ys[i] * ys[i]).sum();
        let parent_sse_base = sum_sq - sum * sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        for &f in &features {
            let mut vals: Vec<f64> = idx.iter().map(|&i| xs[i][f]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let step = (vals.len() - 1).max(1) as f64 / params.threshold_candidates as f64;
            let mut thresholds: Vec<f64> = Vec::new();
            let mut t = step;
            while t < (vals.len() - 1) as f64 + 1e-9
                && thresholds.len() < params.threshold_candidates
            {
                let k = (t as usize).min(vals.len() - 2);
                thresholds.push((vals[k] + vals[k + 1]) / 2.0);
                t += step.max(1e-9);
            }
            thresholds.dedup();

            for &thr in &thresholds {
                let mut nl = 0.0f64;
                let mut sl = 0.0f64;
                let mut ql = 0.0f64;
                for &i in idx {
                    if xs[i][f] <= thr {
                        nl += 1.0;
                        sl += ys[i];
                        ql += ys[i] * ys[i];
                    }
                }
                let nr = n - nl;
                if (nl as usize) < params.min_samples_leaf
                    || (nr as usize) < params.min_samples_leaf
                {
                    continue;
                }
                let sr = sum - sl;
                let qr = sum_sq - ql;
                let sse = (ql - sl * sl / nl) + (qr - sr * sr / nr);
                if sse < parent_sse_base - 1e-12 && best.is_none_or(|(_, _, b)| sse < b) {
                    best = Some((f, thr, sse));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 50.0 { -2.0 } else { 4.0 })
            .collect();
        (xs, ys)
    }

    #[test]
    fn learns_step_function_exactly() {
        let (xs, ys) = step_data();
        let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 1);
        assert!((tree.predict(&[10.0, 0.0]) + 2.0).abs() < 1e-9);
        assert!((tree.predict(&[80.0, 0.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![7.5; 20];
        let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 1);
        assert!(tree.is_empty());
        assert_eq!(tree.predict(&[123.0]), 7.5);
    }

    #[test]
    fn depth_zero_is_mean_predictor() {
        let (xs, ys) = step_data();
        let params = TreeParams {
            max_depth: 0,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&xs, &ys, &params, 1);
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((tree.predict(&[0.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let (xs, ys) = step_data();
        let params = TreeParams {
            min_samples_leaf: 60,
            ..TreeParams::default()
        };
        let tree = RegressionTree::fit(&xs, &ys, &params, 1);
        // 100 samples cannot split into two leaves of ≥60.
        assert!(tree.is_empty());
    }

    #[test]
    fn deeper_trees_fit_finer_structure() {
        let xs: Vec<Vec<f64>> = (0..128).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] / 16.0).floor()).collect();
        let shallow = RegressionTree::fit(
            &xs,
            &ys,
            &TreeParams {
                max_depth: 1,
                ..TreeParams::default()
            },
            1,
        );
        let deep = RegressionTree::fit(
            &xs,
            &ys,
            &TreeParams {
                max_depth: 8,
                ..TreeParams::default()
            },
            1,
        );
        let sse = |t: &RegressionTree| -> f64 {
            xs.iter()
                .zip(&ys)
                .map(|(x, y)| (t.predict(x) - y).powi(2))
                .sum()
        };
        assert!(sse(&deep) < sse(&shallow) * 0.2);
        assert!(deep.depth() > shallow.depth());
    }

    #[test]
    fn multifeature_splits_pick_informative_feature() {
        // Feature 1 is pure noise; feature 0 carries the signal.
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i / 2) as f64, (i * 37 % 11) as f64])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| if x[0] < 50.0 { 0.0 } else { 10.0 })
            .collect();
        let tree = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 1);
        assert!((tree.predict(&[10.0, 5.0]) - 0.0).abs() < 1e-9);
        assert!((tree.predict(&[90.0, 5.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_fit_panics() {
        let _ = RegressionTree::fit(&[], &[], &TreeParams::default(), 1);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = RegressionTree::fit(&[vec![1.0]], &[1.0, 2.0], &TreeParams::default(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dimensionality mismatch")]
    fn predict_wrong_arity_panics() {
        let tree = RegressionTree::fit(
            &[vec![1.0], vec![2.0], vec![3.0], vec![4.0]],
            &[1.0, 2.0, 3.0, 4.0],
            &TreeParams::default(),
            1,
        );
        let _ = tree.predict(&[1.0, 2.0]);
    }

    #[test]
    fn fit_is_deterministic_without_subsampling() {
        let (xs, ys) = step_data();
        let a = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 1);
        let b = RegressionTree::fit(&xs, &ys, &TreeParams::default(), 999);
        for x in &xs {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }
}
