//! Training-set construction from a simulated measurement campaign.
//!
//! Mirrors the paper's methodology (Section V): every training kernel is
//! "executed" at each configuration of the campaign space while CodeXL-style
//! counters and power are captured. One training sample pairs the kernel's
//! profiling counters with a target configuration and the measured
//! time/power at that configuration.
//!
//! Counters are captured once per kernel at a fixed profiling configuration
//! (the fail-safe state). At *prediction* time the stored counters may come
//! from whatever configuration the kernel last executed at — a realistic
//! train/serve mismatch that, together with measurement noise, produces
//! model error comparable to the paper's reported MAPE.

use crate::features::encode_features;
use gpm_hw::{ConfigSpace, HwConfig};
use gpm_sim::{ApuSimulator, KernelCharacteristics};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One training sample: features plus measured targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Encoded feature vector (see [`crate::features`]).
    pub features: Vec<f64>,
    /// Measured kernel execution time, seconds.
    pub time_s: f64,
    /// Measured GPU-domain power, watts.
    pub gpu_power_w: f64,
    /// Name of the kernel the sample came from (for leave-one-out splits).
    pub kernel: String,
}

/// A collection of training samples.
///
/// # Examples
///
/// ```
/// use gpm_hw::{ConfigSpace, HwConfig};
/// use gpm_model::Dataset;
/// use gpm_sim::{ApuSimulator, KernelCharacteristics};
///
/// let sim = ApuSimulator::default();
/// let kernels = vec![KernelCharacteristics::compute_bound("k", 10.0)];
/// let space = ConfigSpace::nb_cu_sweep(gpm_hw::CpuPState::P5, gpm_hw::GpuDpm::Dpm4);
/// let ds = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
/// assert_eq!(ds.len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Runs the measurement campaign: profiles each kernel at
    /// `profile_cfg`, then measures it at every configuration in `space`.
    pub fn from_campaign(
        sim: &ApuSimulator,
        kernels: &[KernelCharacteristics],
        space: &ConfigSpace,
        profile_cfg: HwConfig,
    ) -> Dataset {
        let mut samples = Vec::with_capacity(kernels.len() * space.len());
        for kernel in kernels {
            let profile = sim.evaluate(kernel, profile_cfg);
            for cfg in space {
                let out = sim.evaluate(kernel, cfg);
                samples.push(Sample {
                    features: encode_features(&profile.counters, cfg),
                    time_s: out.time_s,
                    gpu_power_w: out.power.gpu_domain_w(),
                    kernel: kernel.name().to_string(),
                });
            }
        }
        Dataset { samples }
    }

    /// Builds a dataset directly from samples.
    pub fn from_samples(samples: Vec<Sample>) -> Dataset {
        Dataset { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Feature matrix.
    pub fn xs(&self) -> Vec<Vec<f64>> {
        self.samples.iter().map(|s| s.features.clone()).collect()
    }

    /// `ln(time)` target vector — time spans orders of magnitude across
    /// kernels, so the forest regresses its logarithm.
    pub fn ys_log_time(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|s| s.time_s.max(1e-12).ln())
            .collect()
    }

    /// GPU power target vector, watts.
    pub fn ys_power(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.gpu_power_w).collect()
    }

    /// Random split into (train, test) with the given test fraction.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let mut idx: Vec<usize> = (0..self.samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        let n_test = ((self.samples.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
        let (test_idx, train_idx) = idx.split_at(n_test.min(self.samples.len()));
        let pick = |ids: &[usize]| Dataset {
            samples: ids.iter().map(|&i| self.samples[i].clone()).collect(),
        };
        (pick(train_idx), pick(test_idx))
    }

    /// Leave-one-kernel-out split: samples of `kernel_name` become the test
    /// set. This is the honest evaluation for a predictor that will face
    /// kernels it never trained on.
    pub fn split_leave_kernel_out(&self, kernel_name: &str) -> (Dataset, Dataset) {
        let (test, train): (Vec<Sample>, Vec<Sample>) = self
            .samples
            .iter()
            .cloned()
            .partition(|s| s.kernel == kernel_name);
        (Dataset { samples: train }, Dataset { samples: test })
    }

    /// Merges another dataset into this one.
    pub fn extend(&mut self, other: Dataset) {
        self.samples.extend(other.samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::NUM_FEATURES;
    use gpm_hw::{CpuPState, GpuDpm};

    fn tiny_dataset() -> Dataset {
        let sim = ApuSimulator::default();
        let kernels = vec![
            KernelCharacteristics::compute_bound("cb", 10.0),
            KernelCharacteristics::memory_bound("mb", 1.0),
        ];
        let space = ConfigSpace::nb_cu_sweep(CpuPState::P5, GpuDpm::Dpm4);
        Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE)
    }

    #[test]
    fn campaign_size_is_kernels_times_configs() {
        let ds = tiny_dataset();
        assert_eq!(ds.len(), 2 * 16);
        assert!(!ds.is_empty());
    }

    #[test]
    fn samples_have_full_feature_vectors_and_positive_targets() {
        let ds = tiny_dataset();
        for s in ds.samples() {
            assert_eq!(s.features.len(), NUM_FEATURES);
            assert!(s.time_s > 0.0);
            assert!(s.gpu_power_w > 0.0);
        }
    }

    #[test]
    fn log_time_targets_are_finite() {
        let ds = tiny_dataset();
        for y in ds.ys_log_time() {
            assert!(y.is_finite());
        }
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = tiny_dataset();
        let (train, test) = ds.split(0.25, 3);
        assert_eq!(train.len() + test.len(), ds.len());
        assert_eq!(test.len(), 8);
    }

    #[test]
    fn split_is_deterministic() {
        let ds = tiny_dataset();
        let (a, _) = ds.split(0.25, 3);
        let (b, _) = ds.split(0.25, 3);
        assert_eq!(a.samples()[0], b.samples()[0]);
    }

    #[test]
    fn leave_kernel_out_isolates_kernel() {
        let ds = tiny_dataset();
        let (train, test) = ds.split_leave_kernel_out("cb");
        assert_eq!(test.len(), 16);
        assert!(test.samples().iter().all(|s| s.kernel == "cb"));
        assert!(train.samples().iter().all(|s| s.kernel != "cb"));
    }

    #[test]
    fn extend_concatenates() {
        let mut ds = tiny_dataset();
        let n = ds.len();
        ds.extend(tiny_dataset());
        assert_eq!(ds.len(), 2 * n);
    }
}
