//! The trained Random-Forest predictor behind the
//! [`PowerPerfPredictor`] interface.

use crate::dataset::Dataset;
use crate::features::encode_features;
use crate::forest::{ForestParams, RandomForest};
use crate::metrics;
use gpm_hw::HwConfig;
use gpm_sim::predictor::{KernelSnapshot, PowerPerfEstimate, PowerPerfPredictor};
use serde::{Deserialize, Serialize};

/// Held-out accuracy of a trained predictor, in the units the paper
/// reports (MAPE fractions; Section VI-D quotes 25% performance and 12%
/// power).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// MAPE of execution-time predictions on the held-out set.
    pub time_mape: f64,
    /// MAPE of GPU-power predictions on the held-out set.
    pub power_mape: f64,
    /// R² of log-time predictions.
    pub time_r2: f64,
    /// R² of power predictions.
    pub power_r2: f64,
    /// Training samples used.
    pub train_samples: usize,
    /// Held-out samples evaluated.
    pub test_samples: usize,
}

/// Random-Forest power/performance predictor (Section IV-A3).
///
/// Two forests: one regressing `ln(time)`, one regressing GPU power.
///
/// # Examples
///
/// ```
/// use gpm_hw::{ConfigSpace, HwConfig, CpuPState, GpuDpm};
/// use gpm_model::{Dataset, ForestParams, RandomForestPredictor};
/// use gpm_sim::{ApuSimulator, KernelCharacteristics};
///
/// let sim = ApuSimulator::default();
/// let kernels = vec![KernelCharacteristics::compute_bound("k", 10.0)];
/// let space = ConfigSpace::nb_cu_sweep(CpuPState::P5, GpuDpm::Dpm4);
/// let ds = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
/// let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 1);
/// # let _ = rf;
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestPredictor {
    time_forest: RandomForest,
    power_forest: RandomForest,
}

impl RandomForestPredictor {
    /// Trains both forests on `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(dataset: &Dataset, params: &ForestParams, seed: u64) -> RandomForestPredictor {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let xs = dataset.xs();
        let time_forest = RandomForest::fit(&xs, &dataset.ys_log_time(), params, seed);
        let power_forest =
            RandomForest::fit(&xs, &dataset.ys_power(), params, seed.wrapping_add(1));
        RandomForestPredictor {
            time_forest,
            power_forest,
        }
    }

    /// Evaluates held-out accuracy on `test`.
    pub fn evaluate(&self, test: &Dataset, train_samples: usize) -> TrainReport {
        let mut time_pred = Vec::with_capacity(test.len());
        let mut power_pred = Vec::with_capacity(test.len());
        let mut time_truth = Vec::with_capacity(test.len());
        let mut power_truth = Vec::with_capacity(test.len());
        let mut log_time_pred = Vec::with_capacity(test.len());
        let mut log_time_truth = Vec::with_capacity(test.len());
        for s in test.samples() {
            let lt = self.time_forest.predict(&s.features);
            log_time_pred.push(lt);
            log_time_truth.push(s.time_s.max(1e-12).ln());
            time_pred.push(lt.exp());
            time_truth.push(s.time_s);
            power_pred.push(self.power_forest.predict(&s.features));
            power_truth.push(s.gpu_power_w);
        }
        TrainReport {
            time_mape: metrics::mape(&time_pred, &time_truth),
            power_mape: metrics::mape(&power_pred, &power_truth),
            time_r2: metrics::r2(&log_time_pred, &log_time_truth),
            power_r2: metrics::r2(&power_pred, &power_truth),
            train_samples,
            test_samples: test.len(),
        }
    }

    /// The fitted `ln(time)` forest (for diagnostics such as permutation
    /// importance).
    pub fn time_forest(&self) -> &RandomForest {
        &self.time_forest
    }

    /// The fitted GPU-power forest.
    pub fn power_forest(&self) -> &RandomForest {
        &self.power_forest
    }

    /// Convenience: split, train, and report in one call.
    pub fn train_and_evaluate(
        dataset: &Dataset,
        params: &ForestParams,
        test_fraction: f64,
        seed: u64,
    ) -> (RandomForestPredictor, TrainReport) {
        let (train, test) = dataset.split(test_fraction, seed);
        let rf = RandomForestPredictor::train(&train, params, seed);
        let report = rf.evaluate(&test, train.len());
        (rf, report)
    }
}

impl PowerPerfPredictor for RandomForestPredictor {
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate {
        let features = encode_features(&snapshot.counters, cfg);
        let time_s = self.time_forest.predict(&features).exp().max(1e-9);
        let gpu_power_w = self.power_forest.predict(&features).max(0.1);
        PowerPerfEstimate {
            time_s,
            gpu_power_w,
        }
    }

    fn name(&self) -> &str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::{ConfigSpace, CpuPState, GpuDpm};
    use gpm_sim::{ApuSimulator, KernelCharacteristics};

    fn campaign() -> (ApuSimulator, Vec<KernelCharacteristics>, Dataset) {
        let sim = ApuSimulator::default();
        let kernels = vec![
            KernelCharacteristics::compute_bound("cb", 15.0),
            KernelCharacteristics::memory_bound("mb", 1.5),
            KernelCharacteristics::peak("pk", 8.0),
            KernelCharacteristics::unscalable("us", 0.01),
        ];
        let space = ConfigSpace::paper_campaign();
        let ds = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
        (sim, kernels, ds)
    }

    #[test]
    fn training_produces_usable_accuracy() {
        let (_, _, ds) = campaign();
        let (_, report) =
            RandomForestPredictor::train_and_evaluate(&ds, &ForestParams::default(), 0.2, 11);
        // In-distribution accuracy should beat the paper's out-of-sample
        // 25%/12% MAPE comfortably.
        assert!(report.time_mape < 0.25, "time MAPE {}", report.time_mape);
        assert!(report.power_mape < 0.15, "power MAPE {}", report.power_mape);
        assert!(report.time_r2 > 0.8, "time R² {}", report.time_r2);
        assert_eq!(report.train_samples + report.test_samples, ds.len());
    }

    #[test]
    fn predictor_tracks_config_trends() {
        let (sim, kernels, ds) = campaign();
        let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let cb = &kernels[0];
        let out = sim.evaluate(cb, HwConfig::FAIL_SAFE);
        let snap = gpm_sim::predictor::KernelSnapshot::counters_only(
            out.counters,
            HwConfig::FAIL_SAFE,
            cb.ginstructions(),
        );
        // Compute-bound kernel: 8 CUs at DPM4 must be predicted faster than
        // 2 CUs at DPM0.
        let fast = rf.predict(&snap, HwConfig::MAX_PERF);
        let slow_cfg = HwConfig::new(
            CpuPState::P7,
            gpm_hw::NbState::Nb3,
            GpuDpm::Dpm0,
            gpm_hw::CuCount::MIN,
        );
        let slow = rf.predict(&snap, slow_cfg);
        assert!(
            fast.time_s < slow.time_s,
            "fast {} slow {}",
            fast.time_s,
            slow.time_s
        );
        assert!(fast.gpu_power_w > slow.gpu_power_w);
    }

    #[test]
    fn prediction_is_deterministic() {
        let (_, _, ds) = campaign();
        let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let snap = gpm_sim::predictor::KernelSnapshot::counters_only(
            gpm_sim::CounterSet::default(),
            HwConfig::FAIL_SAFE,
            1.0,
        );
        let a = rf.predict(&snap, HwConfig::MAX_PERF);
        let b = rf.predict(&snap, HwConfig::MAX_PERF);
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_are_positive_even_on_garbage() {
        let (_, _, ds) = campaign();
        let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let snap = gpm_sim::predictor::KernelSnapshot::counters_only(
            gpm_sim::CounterSet::from_values([0.0; 8]),
            HwConfig::FAIL_SAFE,
            1.0,
        );
        let est = rf.predict(&snap, HwConfig::FAIL_SAFE);
        assert!(est.time_s > 0.0);
        assert!(est.gpu_power_w > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let _ = RandomForestPredictor::train(&Dataset::default(), &ForestParams::default(), 1);
    }
}
