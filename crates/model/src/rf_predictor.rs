//! The trained Random-Forest predictor behind the
//! [`PowerPerfPredictor`] interface.

use crate::dataset::Dataset;
use crate::features::{
    encode_config_features, encode_counter_features, FeatureBuffer, NUM_CONFIG_FEATURES,
};
use crate::flat::{FlatForest, PrunedForest};
use crate::forest::{ForestParams, RandomForest};
use crate::metrics;
use gpm_hw::HwConfig;
use gpm_sim::predictor::{KernelSnapshot, PowerPerfEstimate, PowerPerfPredictor};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Held-out accuracy of a trained predictor, in the units the paper
/// reports (MAPE fractions; Section VI-D quotes 25% performance and 12%
/// power).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// MAPE of execution-time predictions on the held-out set.
    pub time_mape: f64,
    /// MAPE of GPU-power predictions on the held-out set.
    pub power_mape: f64,
    /// R² of log-time predictions.
    pub time_r2: f64,
    /// R² of power predictions.
    pub power_r2: f64,
    /// Training samples used.
    pub train_samples: usize,
    /// Held-out samples evaluated.
    pub test_samples: usize,
}

/// Random-Forest power/performance predictor (Section IV-A3).
///
/// Two forests: one regressing `ln(time)`, one regressing GPU power.
///
/// # Examples
///
/// ```
/// use gpm_hw::{ConfigSpace, HwConfig, CpuPState, GpuDpm};
/// use gpm_model::{Dataset, ForestParams, RandomForestPredictor};
/// use gpm_sim::{ApuSimulator, KernelCharacteristics};
///
/// let sim = ApuSimulator::default();
/// let kernels = vec![KernelCharacteristics::compute_bound("k", 10.0)];
/// let space = ConfigSpace::nb_cu_sweep(CpuPState::P5, GpuDpm::Dpm4);
/// let ds = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
/// let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 1);
/// # let _ = rf;
/// ```
/// Inference happens on flattened [`FlatForest`] copies of the fitted
/// forests (bit-identical to the nested traversal; see the [`crate::flat`]
/// module). The serialized format carries only the two nested forests —
/// the flat engines are deterministic re-encodings rebuilt on
/// deserialization, so saved contexts stay compatible.
#[derive(Debug, Clone)]
pub struct RandomForestPredictor {
    time_forest: RandomForest,
    power_forest: RandomForest,
    time_flat: FlatForest,
    power_flat: FlatForest,
    /// Process-unique tag for the thread-local specialization cache; never
    /// reused across predictor constructions, so a stale cache entry can
    /// only ever match the forests it was built from. Clones share the tag
    /// — their forests are identical, so cache hits stay correct.
    generation: u64,
}

/// Source of [`RandomForestPredictor::generation`] tags; starts at 1 so 0
/// can mean "nothing cached".
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

impl PartialEq for RandomForestPredictor {
    fn eq(&self, other: &Self) -> bool {
        // The flat engines are deterministic re-encodings and the
        // generation is cache identity, not model state: the fitted
        // forests are the whole comparison.
        self.time_forest == other.time_forest && self.power_forest == other.power_forest
    }
}

/// Serialized form of [`RandomForestPredictor`]: the fitted forests only,
/// field-compatible with predictors saved before the flat engine existed.
#[derive(Serialize, Deserialize)]
struct SavedForests {
    time_forest: RandomForest,
    power_forest: RandomForest,
}

// Hand-written so the wire format stays exactly `SavedForests` while the
// in-memory type also carries the derived flat engines.
impl Serialize for RandomForestPredictor {
    fn serialize_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            (
                serde::Content::Str("time_forest".to_owned()),
                self.time_forest.serialize_content(),
            ),
            (
                serde::Content::Str("power_forest".to_owned()),
                self.power_forest.serialize_content(),
            ),
        ])
    }
}

impl Deserialize for RandomForestPredictor {
    fn deserialize_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let saved = SavedForests::deserialize_content(content)?;
        Ok(RandomForestPredictor::from_forests(
            saved.time_forest,
            saved.power_forest,
        ))
    }
}

thread_local! {
    /// Per-thread scratch for the hot path: feature rows and per-forest
    /// outputs live here so `predict`/`predict_batch` allocate nothing in
    /// steady state while staying `&self`.
    static SCRATCH: RefCell<PredictScratch> = RefCell::new(PredictScratch::default());
}

#[derive(Default)]
struct PredictScratch {
    buf: FeatureBuffer,
    time_pruned: PrunedForest,
    power_pruned: PrunedForest,
    /// Compact row-major config suffixes (6 values per candidate) — the
    /// only per-row data the pruned walks read.
    suffix: Vec<f64>,
    time_out: Vec<f64>,
    power_out: Vec<f64>,
    /// Generation of the predictor the pruned forests were specialized
    /// for (0 = nothing cached), plus the exact bit pattern of the
    /// counter prefix they were specialized against. Governor searches
    /// sweep candidates for one snapshot over several `predict_batch`
    /// calls, so the specialization is re-derived only when the snapshot
    /// (or the predictor) actually changes.
    cached_generation: u64,
    cached_prefix: Vec<u64>,
    /// Per-snapshot value memo: for a fixed (predictor, snapshot) pair
    /// the estimate for a config is a pure function of the config, so
    /// each of the [`HwConfig::DENSE_COUNT`] lattice points is walked at
    /// most once per snapshot. `memo_epoch[dense_index] == epoch` marks a
    /// live entry; bumping `epoch` on re-specialization invalidates the
    /// whole table in O(1).
    memo: Vec<PowerPerfEstimate>,
    memo_epoch: Vec<u64>,
    epoch: u64,
    /// Dense indices of batch rows missing from the memo, in walk order.
    pending: Vec<u32>,
}

impl RandomForestPredictor {
    /// Trains both forests on `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(dataset: &Dataset, params: &ForestParams, seed: u64) -> RandomForestPredictor {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let xs = dataset.xs();
        let time_forest = RandomForest::fit(&xs, &dataset.ys_log_time(), params, seed);
        let power_forest =
            RandomForest::fit(&xs, &dataset.ys_power(), params, seed.wrapping_add(1));
        RandomForestPredictor::from_forests(time_forest, power_forest)
    }

    /// Assembles a predictor from fitted forests, building the flat
    /// inference engines. Each assembly gets a fresh
    /// [`generation`](RandomForestPredictor::generation) tag, so
    /// retraining (e.g. via [`RandomForest::fit_with_threads`]) can never
    /// be served stale per-thread specialization state.
    pub fn from_forests(
        time_forest: RandomForest,
        power_forest: RandomForest,
    ) -> RandomForestPredictor {
        let time_flat = FlatForest::from_forest(&time_forest);
        let power_flat = FlatForest::from_forest(&power_forest);
        RandomForestPredictor {
            time_forest,
            power_forest,
            time_flat,
            power_flat,
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Evaluates held-out accuracy on `test`.
    pub fn evaluate(&self, test: &Dataset, train_samples: usize) -> TrainReport {
        let mut time_pred = Vec::with_capacity(test.len());
        let mut power_pred = Vec::with_capacity(test.len());
        let mut time_truth = Vec::with_capacity(test.len());
        let mut power_truth = Vec::with_capacity(test.len());
        let mut log_time_pred = Vec::with_capacity(test.len());
        let mut log_time_truth = Vec::with_capacity(test.len());
        for s in test.samples() {
            let lt = self.time_forest.predict(&s.features);
            log_time_pred.push(lt);
            log_time_truth.push(s.time_s.max(1e-12).ln());
            time_pred.push(lt.exp());
            time_truth.push(s.time_s);
            power_pred.push(self.power_forest.predict(&s.features));
            power_truth.push(s.gpu_power_w);
        }
        TrainReport {
            time_mape: metrics::mape(&time_pred, &time_truth),
            power_mape: metrics::mape(&power_pred, &power_truth),
            time_r2: metrics::r2(&log_time_pred, &log_time_truth),
            power_r2: metrics::r2(&power_pred, &power_truth),
            train_samples,
            test_samples: test.len(),
        }
    }

    /// The fitted `ln(time)` forest (for diagnostics such as permutation
    /// importance).
    pub fn time_forest(&self) -> &RandomForest {
        &self.time_forest
    }

    /// The fitted GPU-power forest.
    pub fn power_forest(&self) -> &RandomForest {
        &self.power_forest
    }

    /// This predictor's cache-identity tag: process-unique and strictly
    /// increasing across assemblies, never 0 (the thread-local scratch's
    /// "empty" sentinel). Two predictors share specialization state only
    /// if their generations are equal — i.e. never.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Convenience: split, train, and report in one call.
    pub fn train_and_evaluate(
        dataset: &Dataset,
        params: &ForestParams,
        test_fraction: f64,
        seed: u64,
    ) -> (RandomForestPredictor, TrainReport) {
        let (train, test) = dataset.split(test_fraction, seed);
        let rf = RandomForestPredictor::train(&train, params, seed);
        let report = rf.evaluate(&test, train.len());
        (rf, report)
    }
}

impl PowerPerfPredictor for RandomForestPredictor {
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate {
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            scratch.buf.begin_snapshot(&snapshot.counters);
            scratch.buf.push_config(cfg);
            let row = scratch.buf.matrix().row(0);
            PowerPerfEstimate {
                time_s: self.time_flat.predict(row).exp().max(1e-9),
                gpu_power_w: self.power_flat.predict(row).max(0.1),
            }
        })
    }

    fn predict_batch(
        &self,
        snapshot: &KernelSnapshot,
        cfgs: &[HwConfig],
        out: &mut Vec<PowerPerfEstimate>,
    ) {
        SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            if cfgs.is_empty() {
                out.clear();
                return;
            }
            // Every row of the batch shares the snapshot's counter
            // prefix, so prefix splits resolve once per batch and the
            // per-row walk only compares config features — the batch
            // never materializes full feature rows at all, just the
            // compact config suffixes. The specialized forests are cached
            // against the exact prefix bits: repeated sweeps over the
            // same snapshot (hill-climb rounds, MPC horizon steps) skip
            // re-specialization entirely.
            let prefix = encode_counter_features(&snapshot.counters);
            const PREFIX_LEN: usize = crate::features::NUM_FEATURES - NUM_CONFIG_FEATURES;
            let hit = scratch.cached_generation == self.generation
                && scratch.cached_prefix.len() == PREFIX_LEN
                && scratch
                    .cached_prefix
                    .iter()
                    .zip(&prefix)
                    .all(|(&bits, v)| bits == v.to_bits());
            if !hit {
                self.time_flat
                    .specialize_into(&prefix, PREFIX_LEN, &mut scratch.time_pruned);
                self.power_flat
                    .specialize_into(&prefix, PREFIX_LEN, &mut scratch.power_pruned);
                scratch.cached_generation = self.generation;
                scratch.cached_prefix.clear();
                scratch
                    .cached_prefix
                    .extend(prefix.iter().map(|v| v.to_bits()));
                scratch.epoch += 1;
            }
            if scratch.memo.len() != HwConfig::DENSE_COUNT {
                scratch.memo.resize(
                    HwConfig::DENSE_COUNT,
                    PowerPerfEstimate {
                        time_s: 0.0,
                        gpu_power_w: 0.0,
                    },
                );
                scratch.memo_epoch.resize(HwConfig::DENSE_COUNT, 0);
            }
            // Walk only the configs this snapshot hasn't priced yet;
            // everything else is a memo copy. Duplicate candidates in one
            // batch are walked per occurrence and scatter the same value.
            scratch.suffix.clear();
            scratch.pending.clear();
            for &cfg in cfgs {
                let dense = cfg.dense_index();
                if scratch.memo_epoch[dense] != scratch.epoch {
                    scratch.pending.push(dense as u32);
                    scratch
                        .suffix
                        .extend_from_slice(&encode_config_features(cfg));
                }
            }
            if !scratch.pending.is_empty() {
                scratch
                    .time_pruned
                    .predict_suffix_batch_into(&scratch.suffix, &mut scratch.time_out);
                scratch
                    .power_pruned
                    .predict_suffix_batch_into(&scratch.suffix, &mut scratch.power_out);
                for ((&dense, &log_time), &power) in scratch
                    .pending
                    .iter()
                    .zip(&scratch.time_out)
                    .zip(&scratch.power_out)
                {
                    scratch.memo[dense as usize] = PowerPerfEstimate {
                        time_s: log_time.exp().max(1e-9),
                        gpu_power_w: power.max(0.1),
                    };
                    scratch.memo_epoch[dense as usize] = scratch.epoch;
                }
            }
            out.clear();
            out.extend(cfgs.iter().map(|cfg| scratch.memo[cfg.dense_index()]));
        });
    }

    fn name(&self) -> &str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::{ConfigSpace, CpuPState, GpuDpm};
    use gpm_sim::{ApuSimulator, KernelCharacteristics};

    fn campaign() -> (ApuSimulator, Vec<KernelCharacteristics>, Dataset) {
        let sim = ApuSimulator::default();
        let kernels = vec![
            KernelCharacteristics::compute_bound("cb", 15.0),
            KernelCharacteristics::memory_bound("mb", 1.5),
            KernelCharacteristics::peak("pk", 8.0),
            KernelCharacteristics::unscalable("us", 0.01),
        ];
        let space = ConfigSpace::paper_campaign();
        let ds = Dataset::from_campaign(&sim, &kernels, &space, HwConfig::FAIL_SAFE);
        (sim, kernels, ds)
    }

    #[test]
    fn training_produces_usable_accuracy() {
        let (_, _, ds) = campaign();
        let (_, report) =
            RandomForestPredictor::train_and_evaluate(&ds, &ForestParams::default(), 0.2, 11);
        // In-distribution accuracy should beat the paper's out-of-sample
        // 25%/12% MAPE comfortably.
        assert!(report.time_mape < 0.25, "time MAPE {}", report.time_mape);
        assert!(report.power_mape < 0.15, "power MAPE {}", report.power_mape);
        assert!(report.time_r2 > 0.8, "time R² {}", report.time_r2);
        assert_eq!(report.train_samples + report.test_samples, ds.len());
    }

    #[test]
    fn predictor_tracks_config_trends() {
        let (sim, kernels, ds) = campaign();
        let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let cb = &kernels[0];
        let out = sim.evaluate(cb, HwConfig::FAIL_SAFE);
        let snap = gpm_sim::predictor::KernelSnapshot::counters_only(
            out.counters,
            HwConfig::FAIL_SAFE,
            cb.ginstructions(),
        );
        // Compute-bound kernel: 8 CUs at DPM4 must be predicted faster than
        // 2 CUs at DPM0.
        let fast = rf.predict(&snap, HwConfig::MAX_PERF);
        let slow_cfg = HwConfig::new(
            CpuPState::P7,
            gpm_hw::NbState::Nb3,
            GpuDpm::Dpm0,
            gpm_hw::CuCount::MIN,
        );
        let slow = rf.predict(&snap, slow_cfg);
        assert!(
            fast.time_s < slow.time_s,
            "fast {} slow {}",
            fast.time_s,
            slow.time_s
        );
        assert!(fast.gpu_power_w > slow.gpu_power_w);
    }

    #[test]
    fn prediction_is_deterministic() {
        let (_, _, ds) = campaign();
        let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let snap = gpm_sim::predictor::KernelSnapshot::counters_only(
            gpm_sim::CounterSet::default(),
            HwConfig::FAIL_SAFE,
            1.0,
        );
        let a = rf.predict(&snap, HwConfig::MAX_PERF);
        let b = rf.predict(&snap, HwConfig::MAX_PERF);
        assert_eq!(a, b);
    }

    #[test]
    fn predict_matches_nested_reference_path() {
        // The flat hot path must reproduce the seed formula bit-for-bit:
        // one-shot encoding + nested forest traversal + exp/clamp.
        let (_, _, ds) = campaign();
        let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let snap = gpm_sim::predictor::KernelSnapshot::counters_only(
            gpm_sim::CounterSet::from_values([1e8, 40.0, 60.0, 1e5, 6.0, 3.0, 1e6, 1e6]),
            HwConfig::FAIL_SAFE,
            1.0,
        );
        for cfg in &ConfigSpace::paper_campaign() {
            let features = crate::features::encode_features(&snap.counters, cfg);
            let reference = PowerPerfEstimate {
                time_s: rf.time_forest().predict(&features).exp().max(1e-9),
                gpu_power_w: rf.power_forest().predict(&features).max(0.1),
            };
            let est = rf.predict(&snap, cfg);
            assert_eq!(est.time_s.to_bits(), reference.time_s.to_bits(), "{cfg}");
            assert_eq!(
                est.gpu_power_w.to_bits(),
                reference.gpu_power_w.to_bits(),
                "{cfg}"
            );
        }
    }

    #[test]
    fn predict_batch_bit_identical_to_scalar_loop() {
        let (_, _, ds) = campaign();
        let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let snap = gpm_sim::predictor::KernelSnapshot::counters_only(
            gpm_sim::CounterSet::from_values([1e7, 30.0, 55.0, 1e4, 2.0, 1.0, 1e5, 1e5]),
            HwConfig::FAIL_SAFE,
            1.0,
        );
        let cfgs: Vec<HwConfig> = ConfigSpace::paper_campaign().iter().collect();
        let mut batch = Vec::new();
        rf.predict_batch(&snap, &cfgs, &mut batch);
        assert_eq!(batch.len(), cfgs.len());
        for (est, &cfg) in batch.iter().zip(&cfgs) {
            let scalar = rf.predict(&snap, cfg);
            assert_eq!(est.time_s.to_bits(), scalar.time_s.to_bits(), "{cfg}");
            assert_eq!(
                est.gpu_power_w.to_bits(),
                scalar.gpu_power_w.to_bits(),
                "{cfg}"
            );
        }
    }

    #[test]
    fn specialization_cache_invalidates_on_snapshot_and_predictor_change() {
        // Alternates two snapshots and two predictors on one thread; the
        // thread-local specialization cache must miss on every switch and
        // stay bit-identical to the scalar path throughout.
        let (_, _, ds) = campaign();
        let rf_a = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let rf_b = RandomForestPredictor::train(&ds, &ForestParams::default(), 23);
        let snap_a = gpm_sim::predictor::KernelSnapshot::counters_only(
            gpm_sim::CounterSet::from_values([1e7, 30.0, 55.0, 1e4, 2.0, 1.0, 1e5, 1e5]),
            HwConfig::FAIL_SAFE,
            1.0,
        );
        let snap_b = gpm_sim::predictor::KernelSnapshot::counters_only(
            gpm_sim::CounterSet::from_values([9e8, 80.0, 20.0, 9e5, 15.0, 1.0, 9e6, 1e5]),
            HwConfig::FAIL_SAFE,
            1.0,
        );
        let cfgs: Vec<HwConfig> = ConfigSpace::paper_campaign().iter().collect();
        let mut batch = Vec::new();
        for _ in 0..2 {
            for rf in [&rf_a, &rf_b] {
                for snap in [&snap_a, &snap_b] {
                    rf.predict_batch(snap, &cfgs, &mut batch);
                    for (est, &cfg) in batch.iter().zip(&cfgs) {
                        let scalar = rf.predict(snap, cfg);
                        assert_eq!(est.time_s.to_bits(), scalar.time_s.to_bits(), "{cfg}");
                        assert_eq!(est.gpu_power_w.to_bits(), scalar.gpu_power_w.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn serde_roundtrip_rebuilds_flat_engines() {
        let (_, _, ds) = campaign();
        let params = ForestParams {
            num_trees: 6,
            ..ForestParams::default()
        };
        let rf = RandomForestPredictor::train(&ds, &params, 11);
        let json = serde_json::to_string(&rf).unwrap();
        let back: RandomForestPredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rf, "flat engines must rebuild identically on load");
        // The wire format carries only the nested forests.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let keys: Vec<&str> = value
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str().unwrap())
            .collect();
        assert_eq!(keys, ["time_forest", "power_forest"]);
    }

    #[test]
    fn predictions_are_positive_even_on_garbage() {
        let (_, _, ds) = campaign();
        let rf = RandomForestPredictor::train(&ds, &ForestParams::default(), 11);
        let snap = gpm_sim::predictor::KernelSnapshot::counters_only(
            gpm_sim::CounterSet::from_values([0.0; 8]),
            HwConfig::FAIL_SAFE,
            1.0,
        );
        let est = rf.predict(&snap, HwConfig::FAIL_SAFE);
        assert!(est.time_s > 0.0);
        assert!(est.gpu_power_w > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let _ = RandomForestPredictor::train(&Dataset::default(), &ForestParams::default(), 1);
    }
}
