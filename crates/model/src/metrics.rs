//! Regression error metrics.
//!
//! The paper reports its Random Forest's **Mean Absolute Percentage Error**
//! (25% for performance, 12% for power over its 15 benchmarks,
//! Section VI-D); these helpers let the reproduction check the same
//! quantities.

/// Mean Absolute Percentage Error of `pred` against `truth`, as a fraction
/// (0.25 = 25%).
///
/// Pairs whose truth is zero are skipped (a percentage error is undefined
/// there). Returns 0 for empty input.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use gpm_model::mape;
/// let err = mape(&[110.0, 90.0], &[100.0, 100.0]);
/// assert!((err - 0.10).abs() < 1e-12);
/// ```
pub fn mape(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        truth.len(),
        "pred and truth must have equal length"
    );
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&p, &t) in pred.iter().zip(truth) {
        if t != 0.0 {
            sum += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Root-mean-square error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        truth.len(),
        "pred and truth must have equal length"
    );
    if pred.is_empty() {
        return 0.0;
    }
    let sse: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    (sse / pred.len() as f64).sqrt()
}

/// Coefficient of determination R².
///
/// Returns 1.0 for a perfect fit; can be negative for fits worse than the
/// mean predictor. Returns 0 when `truth` has zero variance.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        truth.len(),
        "pred and truth must have equal length"
    );
    if truth.is_empty() {
        return 0.0;
    }
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_basic() {
        assert_eq!(mape(&[100.0], &[100.0]), 0.0);
        assert!((mape(&[120.0], &[100.0]) - 0.2).abs() < 1e-12);
        assert!((mape(&[80.0], &[100.0]) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_truth() {
        let err = mape(&[5.0, 110.0], &[0.0, 100.0]);
        assert!((err - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mape_empty_is_zero() {
        assert_eq!(mape(&[], &[]), 0.0);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[], &[]), 0.0);
        assert_eq!(rmse(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
        assert!((rmse(&[0.0, 2.0], &[0.0, 0.0]) - (2.0f64.powi(2) / 2.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_mean() {
        let truth = [1.0, 2.0, 3.0, 4.0];
        assert!((r2(&truth, &truth) - 1.0).abs() < 1e-12);
        let mean = [2.5; 4];
        assert!(r2(&mean, &truth).abs() < 1e-12);
    }

    #[test]
    fn r2_zero_variance_truth() {
        assert_eq!(r2(&[1.0, 2.0], &[3.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = mape(&[1.0], &[1.0, 2.0]);
    }
}
