//! Oracle predictors with injected half-normal error (Figure 13).
//!
//! To study sensitivity to model accuracy, the paper compares its Random
//! Forest against hypothetical predictors whose errors follow a
//! half-normal distribution with a given mean absolute error:
//! `Err_15%_10%` (15% time / 10% power, after Wu et al.), `Err_5%`
//! (Paul et al.), and `Err_0%` (perfect). This module reproduces those
//! predictors by perturbing the oracle deterministically.

use gpm_hw::HwConfig;
use gpm_sim::predictor::{KernelSnapshot, PowerPerfEstimate, PowerPerfPredictor};
use gpm_sim::{ApuSimulator, OraclePredictor};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Mean absolute relative error targets for an [`ErrorInjectedPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSpec {
    /// Mean absolute relative error of time predictions (0.15 = 15%).
    pub time_mae: f64,
    /// Mean absolute relative error of power predictions.
    pub power_mae: f64,
}

impl ErrorSpec {
    /// The `Err_15%_10%` model of Figure 13 (Wu et al. accuracy).
    pub const ERR_15_10: ErrorSpec = ErrorSpec {
        time_mae: 0.15,
        power_mae: 0.10,
    };

    /// The `Err_5%` model of Figure 13 (Paul et al. accuracy).
    pub const ERR_5: ErrorSpec = ErrorSpec {
        time_mae: 0.05,
        power_mae: 0.05,
    };

    /// The `Err_0%` perfect-prediction model of Figure 13.
    pub const ERR_0: ErrorSpec = ErrorSpec {
        time_mae: 0.0,
        power_mae: 0.0,
    };
}

/// Oracle prediction perturbed by deterministic half-normal relative error.
///
/// The error magnitude `|e|` follows a half-normal distribution whose mean
/// equals the spec's MAE (so `σ = mae·√(π/2)`), with an independent random
/// sign — the "half random normal distribution" construction the paper
/// cites. The draw is a pure function of (kernel snapshot, configuration),
/// so repeated queries are consistent, as a real (biased) model would be.
///
/// # Examples
///
/// ```
/// use gpm_model::{ErrorInjectedPredictor, ErrorSpec};
/// use gpm_sim::{ApuSimulator, PowerPerfPredictor};
///
/// let sim = ApuSimulator::default();
/// let perfect = ErrorInjectedPredictor::new(&sim, ErrorSpec::ERR_0, 1);
/// assert_eq!(perfect.name(), "err-injected");
/// ```
#[derive(Debug, Clone)]
pub struct ErrorInjectedPredictor {
    oracle: OraclePredictor,
    spec: ErrorSpec,
    seed: u64,
}

impl ErrorInjectedPredictor {
    /// Wraps an oracle on `sim` with the given error spec.
    pub fn new(sim: &ApuSimulator, spec: ErrorSpec, seed: u64) -> ErrorInjectedPredictor {
        ErrorInjectedPredictor {
            oracle: OraclePredictor::new(sim),
            spec,
            seed,
        }
    }

    /// The error specification in force.
    pub fn spec(&self) -> ErrorSpec {
        self.spec
    }

    /// Signed relative error draws (time, power) for a query.
    fn errors(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> (f64, f64) {
        let mut h = DefaultHasher::new();
        self.seed.hash(&mut h);
        cfg.dense_index().hash(&mut h);
        for &v in snapshot.counters.values() {
            v.to_bits().hash(&mut h);
        }
        let s = h.finish();
        let e_time = signed_half_normal(s.wrapping_add(0x1234), self.spec.time_mae);
        let e_power = signed_half_normal(s.wrapping_add(0x5678), self.spec.power_mae);
        (e_time, e_power)
    }
}

impl PowerPerfPredictor for ErrorInjectedPredictor {
    fn predict(&self, snapshot: &KernelSnapshot, cfg: HwConfig) -> PowerPerfEstimate {
        let exact = self.oracle.predict(snapshot, cfg);
        if self.spec.time_mae == 0.0 && self.spec.power_mae == 0.0 {
            return exact;
        }
        let (et, ep) = self.errors(snapshot, cfg);
        PowerPerfEstimate {
            time_s: (exact.time_s * (1.0 + et)).max(1e-9),
            gpu_power_w: (exact.gpu_power_w * (1.0 + ep)).max(0.1),
        }
    }

    fn name(&self) -> &str {
        "err-injected"
    }
}

/// A signed half-normal draw: magnitude from `|N(0, σ)|` with
/// `σ = mae·√(π/2)` (so `E[|e|] = mae`), sign from an independent fair bit.
fn signed_half_normal(seed: u64, mae: f64) -> f64 {
    if mae == 0.0 {
        return 0.0;
    }
    let sigma = mae * (std::f64::consts::PI / 2.0).sqrt();
    let u1 = splitmix_unit(seed.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(1));
    let u2 = splitmix_unit(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(2));
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let sign = if splitmix_unit(seed.wrapping_add(3)) < 0.5 {
        -1.0
    } else {
        1.0
    };
    sign * z.abs() * sigma
}

fn splitmix_unit(mut z: u64) -> f64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    ((z >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_sim::KernelCharacteristics;

    fn snapshot(sim: &ApuSimulator) -> KernelSnapshot {
        let k = KernelCharacteristics::compute_bound("cb", 10.0);
        let out = sim.evaluate_exact(&k, HwConfig::FAIL_SAFE);
        KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k)
    }

    #[test]
    fn err0_matches_oracle_exactly() {
        let sim = ApuSimulator::default();
        let snap = snapshot(&sim);
        let perfect = ErrorInjectedPredictor::new(&sim, ErrorSpec::ERR_0, 7);
        let oracle = OraclePredictor::new(&sim);
        let a = perfect.predict(&snap, HwConfig::MAX_PERF);
        let b = oracle.predict(&snap, HwConfig::MAX_PERF);
        assert_eq!(a, b);
    }

    #[test]
    fn predictions_are_deterministic() {
        let sim = ApuSimulator::default();
        let snap = snapshot(&sim);
        let p = ErrorInjectedPredictor::new(&sim, ErrorSpec::ERR_15_10, 7);
        assert_eq!(
            p.predict(&snap, HwConfig::MAX_PERF),
            p.predict(&snap, HwConfig::MAX_PERF)
        );
    }

    #[test]
    fn mean_absolute_error_matches_spec() {
        // Over many (kernel, config) pairs the empirical MAE must approach
        // the specification.
        let sim = ApuSimulator::default();
        let oracle = OraclePredictor::new(&sim);
        let p = ErrorInjectedPredictor::new(&sim, ErrorSpec::ERR_15_10, 7);
        let mut errs_t = Vec::new();
        let mut errs_p = Vec::new();
        for gops in 1..200 {
            let k = KernelCharacteristics::compute_bound(format!("k{gops}"), gops as f64);
            let out = sim.evaluate_exact(&k, HwConfig::FAIL_SAFE);
            let snap = KernelSnapshot::with_truth(out.counters, HwConfig::FAIL_SAFE, k);
            let exact = oracle.predict(&snap, HwConfig::MAX_PERF);
            let noisy = p.predict(&snap, HwConfig::MAX_PERF);
            errs_t.push(((noisy.time_s - exact.time_s) / exact.time_s).abs());
            errs_p.push(((noisy.gpu_power_w - exact.gpu_power_w) / exact.gpu_power_w).abs());
        }
        let mae_t = errs_t.iter().sum::<f64>() / errs_t.len() as f64;
        let mae_p = errs_p.iter().sum::<f64>() / errs_p.len() as f64;
        assert!((mae_t - 0.15).abs() < 0.04, "time MAE {mae_t}");
        assert!((mae_p - 0.10).abs() < 0.03, "power MAE {mae_p}");
    }

    #[test]
    fn signs_are_balanced() {
        let mut pos = 0;
        let mut neg = 0;
        for i in 0..2000u64 {
            let e = signed_half_normal(i, 0.1);
            if e > 0.0 {
                pos += 1;
            } else if e < 0.0 {
                neg += 1;
            }
        }
        let frac = pos as f64 / (pos + neg) as f64;
        assert!((frac - 0.5).abs() < 0.05, "positive fraction {frac}");
    }

    #[test]
    fn error_never_makes_predictions_nonpositive() {
        let sim = ApuSimulator::default();
        let snap = snapshot(&sim);
        let p = ErrorInjectedPredictor::new(
            &sim,
            ErrorSpec {
                time_mae: 0.8,
                power_mae: 0.8,
            },
            3,
        );
        for idx in 0..560 {
            let cfg = HwConfig::from_dense_index(idx).unwrap();
            let est = p.predict(&snap, cfg);
            assert!(est.time_s > 0.0 && est.gpu_power_w > 0.0);
        }
    }
}
