//! Permutation feature importance.
//!
//! Measures how much a fitted forest relies on each feature: shuffle one
//! feature column across the evaluation set and record how much the error
//! grows. Features the model ignores score ≈ 0; load-bearing features
//! (for this problem, the GPU clock and CU count for time; the rail
//! voltage for power) score high. Used by the `model_accuracy` binary and
//! as a sanity check that the forest learned physics, not noise.

use crate::dataset::Dataset;
use crate::forest::RandomForest;
use crate::metrics::rmse;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Importance of one feature: the relative RMSE increase when the feature
/// is permuted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureImportance {
    /// Feature index (see [`crate::features::FEATURE_NAMES`]).
    pub feature: usize,
    /// Baseline RMSE on the intact evaluation set.
    pub baseline_rmse: f64,
    /// RMSE with this feature's column permuted.
    pub permuted_rmse: f64,
}

impl FeatureImportance {
    /// Relative error increase; 0 = the model ignores the feature.
    pub fn score(&self) -> f64 {
        if self.baseline_rmse <= 0.0 {
            return self.permuted_rmse;
        }
        (self.permuted_rmse - self.baseline_rmse) / self.baseline_rmse
    }
}

/// Computes permutation importance of every feature for `forest` on
/// `eval_set`, against the targets produced by `target_of`.
///
/// Returns one entry per feature, in feature order.
///
/// # Panics
///
/// Panics if the evaluation set is empty.
pub fn permutation_importance<F>(
    forest: &RandomForest,
    eval_set: &Dataset,
    target_of: F,
    seed: u64,
) -> Vec<FeatureImportance>
where
    F: Fn(&crate::dataset::Sample) -> f64,
{
    assert!(
        !eval_set.is_empty(),
        "cannot measure importance on an empty set"
    );
    let xs = eval_set.xs();
    let ys: Vec<f64> = eval_set.samples().iter().map(&target_of).collect();
    let preds: Vec<f64> = xs.iter().map(|x| forest.predict(x)).collect();
    let baseline = rmse(&preds, &ys);
    let num_features = xs[0].len();

    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_features)
        .map(|f| {
            let mut column: Vec<f64> = xs.iter().map(|x| x[f]).collect();
            column.shuffle(&mut rng);
            let permuted_preds: Vec<f64> = xs
                .iter()
                .zip(&column)
                .map(|(x, &v)| {
                    let mut x2 = x.clone();
                    x2[f] = v;
                    forest.predict(&x2)
                })
                .collect();
            FeatureImportance {
                feature: f,
                baseline_rmse: baseline,
                permuted_rmse: rmse(&permuted_preds, &ys),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::forest::ForestParams;

    /// Synthetic data where only feature 0 matters.
    fn dataset() -> Dataset {
        let samples: Vec<Sample> = (0..240)
            .map(|i| {
                let x0 = (i % 60) as f64;
                let noise = ((i * 37) % 17) as f64; // pure distractor
                Sample {
                    features: vec![x0, noise],
                    time_s: (2.0 * x0).exp().clamp(1e-9, 1e6),
                    gpu_power_w: 2.0 * x0 + 5.0,
                    kernel: format!("k{}", i % 3),
                }
            })
            .collect();
        Dataset::from_samples(samples)
    }

    #[test]
    fn informative_feature_dominates() {
        let ds = dataset();
        let forest = RandomForest::fit(&ds.xs(), &ds.ys_power(), &ForestParams::default(), 5);
        let imp = permutation_importance(&forest, &ds, |s| s.gpu_power_w, 5);
        assert_eq!(imp.len(), 2);
        assert!(
            imp[0].score() > 5.0 * imp[1].score().max(0.01),
            "feature 0 score {} should dwarf feature 1 score {}",
            imp[0].score(),
            imp[1].score()
        );
    }

    #[test]
    fn scores_are_nonnegative_in_expectation() {
        let ds = dataset();
        let forest = RandomForest::fit(&ds.xs(), &ds.ys_power(), &ForestParams::default(), 5);
        let imp = permutation_importance(&forest, &ds, |s| s.gpu_power_w, 5);
        // Permuting can only help by chance; allow tiny negatives.
        for fi in &imp {
            assert!(
                fi.score() > -0.1,
                "feature {} score {}",
                fi.feature,
                fi.score()
            );
        }
    }

    #[test]
    fn importance_is_deterministic_per_seed() {
        let ds = dataset();
        let forest = RandomForest::fit(&ds.xs(), &ds.ys_power(), &ForestParams::default(), 5);
        let a = permutation_importance(&forest, &ds, |s| s.gpu_power_w, 9);
        let b = permutation_importance(&forest, &ds, |s| s.gpu_power_w, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_set_panics() {
        let ds = dataset();
        let forest = RandomForest::fit(&ds.xs(), &ds.ys_power(), &ForestParams::default(), 5);
        let _ = permutation_importance(&forest, &Dataset::default(), |s| s.gpu_power_w, 1);
    }
}
