//! Power and performance prediction models (Section IV-A3 of the paper).
//!
//! The paper trains an offline **Random Forest** regressor that maps a
//! kernel's performance counters plus a candidate hardware configuration to
//! predicted execution time and GPU power. This crate implements that
//! pipeline from scratch:
//!
//! * [`tree`] — CART regression trees with variance-reduction splitting;
//! * [`forest`] — bagged ensembles with per-split feature subsampling;
//! * [`features`] — the 14-dimensional feature encoding (8 log-scaled
//!   Table III counters + 6 configuration features), split into a
//!   per-snapshot prefix and per-candidate suffix with a reusable
//!   [`FeatureBuffer`] for allocation-free candidate sweeps;
//! * [`flat`] — the batched structure-of-arrays inference engine
//!   ([`FlatForest`]), bit-identical to the nested traversal but walked
//!   tree-major over whole candidate batches;
//! * [`dataset`] — building training data from a simulated measurement
//!   campaign over the paper's 336-configuration space;
//! * [`importance`] — permutation feature importance, a check that the
//!   forest learned the hardware's physics (GPU clock, CU count, rail
//!   voltage) rather than noise;
//! * [`metrics`] — MAPE/RMSE/R², to verify the paper's reported model
//!   error (≈25% performance, ≈12% power MAPE, Section VI-D);
//! * [`rf_predictor`] — the trained forest behind the
//!   [`PowerPerfPredictor`](gpm_sim::PowerPerfPredictor) interface;
//! * [`error_model`] — synthetic predictors with half-normal error
//!   (Err_15%_10%, Err_5%, Err_0% of Figure 13).
//!
//! # Examples
//!
//! ```
//! use gpm_model::{RandomForest, ForestParams};
//!
//! // Tiny synthetic regression: y = 3·x₀.
//! let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0]).collect();
//! let forest = RandomForest::fit(&xs, &ys, &ForestParams::default(), 7);
//! let pred = forest.predict(&[30.0]);
//! assert!((pred - 90.0).abs() < 15.0);
//! ```

pub mod dataset;
pub mod error_model;
pub mod features;
pub mod flat;
pub mod forest;
pub mod importance;
pub mod metrics;
pub mod rf_predictor;
pub mod tree;

pub use dataset::{Dataset, Sample};
pub use error_model::{ErrorInjectedPredictor, ErrorSpec};
pub use features::{
    encode_config_features, encode_counter_features, encode_features, FeatureBuffer, FeatureMatrix,
    FEATURE_NAMES, NUM_CONFIG_FEATURES, NUM_FEATURES,
};
pub use flat::{FlatForest, FlatTree, PrunedForest};
pub use forest::{ForestParams, RandomForest};
pub use importance::{permutation_importance, FeatureImportance};
pub use metrics::{mape, r2, rmse};
pub use rf_predictor::{RandomForestPredictor, TrainReport};
pub use tree::{RegressionTree, TreeParams};
