//! Batched, allocation-free forest inference (the MPC hot-path engine).
//!
//! A fitted [`RegressionTree`] stores an enum node
//! array (~40 bytes per node, pointer-chased per prediction). This module
//! re-lays each tree into a structure-of-arrays [`FlatTree`] — contiguous
//! `u16` feature ids, `f64` thresholds, and `u32` right-child indices,
//! with the left child always the next slot — and walks **tree-major**
//! over a row-major [`FeatureMatrix`]: each tree's three small arrays
//! stay cache-hot while every candidate row runs through it, instead of
//! the whole multi-megabyte forest being re-walked per candidate.
//!
//! The engine is *decision-invariant* by construction: every comparison
//! (`x[feature] <= threshold`), every leaf value, and the per-row
//! accumulation order (tree 0, tree 1, …, then one division by the tree
//! count) are exactly those of the nested traversal, so predictions are
//! bit-identical to [`RandomForest::predict`] — the equivalence tests in
//! this module and in `tests/flat_equivalence.rs` pin that guarantee.
//!
//! On top of the flat layout, [`FlatForest::specialize_into`] partially
//! evaluates a forest against a batch's shared counter prefix, producing
//! a [`PrunedForest`] whose interleaved walk compares only the six
//! config features of compact suffix rows — the engine actually run per
//! candidate sweep.

use crate::features::FeatureMatrix;
use crate::forest::RandomForest;
use crate::tree::{Node, RegressionTree};

/// Sentinel feature id marking a leaf; the threshold lane then holds the
/// leaf value.
const LEAF: u16 = u16::MAX;

/// One regression tree in structure-of-arrays form.
///
/// Layout invariants, validated at construction:
/// * the left child of the split at slot `i` is slot `i + 1` (the fitted
///   builder reserves a node's slot before recursing left, so the nested
///   array already satisfies this — flattening is a re-encoding, not a
///   re-ordering);
/// * every right-child index is `> i` and `< len` (traversal strictly
///   advances, so it always terminates);
/// * every feature id is `< num_features`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatTree {
    /// Feature id per node; [`LEAF`] marks leaves.
    feature: Vec<u16>,
    /// Split threshold per node; holds the leaf value at leaves.
    threshold: Vec<f64>,
    /// Right-child index per node; unused (0) at leaves.
    right: Vec<u32>,
}

impl FlatTree {
    /// Flattens a fitted tree.
    ///
    /// # Panics
    ///
    /// Panics if the tree violates the layout invariants above — possible
    /// only for a corrupted (hand-deserialized) tree, never for one
    /// produced by [`RegressionTree::fit`].
    pub fn from_tree(tree: &RegressionTree) -> FlatTree {
        let nodes = tree.nodes();
        let num_features = tree.num_features();
        assert!(
            num_features < LEAF as usize,
            "feature dimensionality {num_features} overflows the u16 id space"
        );
        assert!(
            nodes.len() <= u32::MAX as usize,
            "tree too large for u32 child indices"
        );
        let mut flat = FlatTree {
            feature: Vec::with_capacity(nodes.len()),
            threshold: Vec::with_capacity(nodes.len()),
            right: Vec::with_capacity(nodes.len()),
        };
        for (i, node) in nodes.iter().enumerate() {
            match *node {
                Node::Leaf { value } => {
                    flat.feature.push(LEAF);
                    flat.threshold.push(value);
                    flat.right.push(0);
                }
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    assert!(
                        left == i + 1,
                        "split at {i} has non-adjacent left child {left}"
                    );
                    assert!(
                        right > i && right < nodes.len(),
                        "split at {i} has out-of-range right child {right}"
                    );
                    assert!(
                        feature < num_features,
                        "split at {i} references feature {feature} >= {num_features}"
                    );
                    flat.feature.push(feature as u16);
                    flat.threshold.push(threshold);
                    flat.right.push(right as u32);
                }
            }
        }
        flat
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.feature.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.feature.len() <= 1
    }

    /// Walks one feature row to its leaf.
    ///
    /// The row must have the fitted dimensionality; the construction-time
    /// feature-id bound makes the `row[f]` access in-range whenever it
    /// does (callers assert the width once per batch).
    #[inline]
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            let t = self.threshold[i];
            if f == LEAF {
                return t;
            }
            i = if row[f as usize] <= t {
                i + 1
            } else {
                self.right[i] as usize
            };
        }
    }

    /// Appends the subtree rooted at `root`, specialized against
    /// `prefix`, to `out`, returning the emitted subtree's depth in edges
    /// (see [`FlatForest::specialize_into`]).
    ///
    /// Splits on prefix features compare once here — with exactly the
    /// `x[f] <= t` semantics of the full walk — and collapse to the taken
    /// side; splits on suffix features are re-emitted (left child first,
    /// preserving the left-is-next-slot layout). Recursion depth is
    /// bounded by the emitted depth, itself bounded by the fitted tree
    /// depth.
    fn specialize_node(
        &self,
        root: usize,
        prefix: &[f64],
        prefix_len: usize,
        out: &mut PrunedForest,
    ) -> u32 {
        let mut i = root;
        // Resolve the chain of prefix-feature splits leading to the next
        // emitted node.
        let (slot, left, right) = loop {
            let f = self.feature[i];
            let t = self.threshold[i];
            if f == LEAF {
                out.nodes.push(PrunedNode {
                    threshold: t,
                    feature: PRUNED_LEAF,
                    right: 0,
                });
                return 0;
            }
            let fi = f as usize;
            if fi < prefix_len {
                i = if prefix[fi] <= t {
                    i + 1
                } else {
                    self.right[i] as usize
                };
                continue;
            }
            let slot = out.nodes.len();
            out.nodes.push(PrunedNode {
                threshold: t,
                feature: (fi - prefix_len) as u32,
                right: 0,
            });
            break (slot, i + 1, self.right[i] as usize);
        };
        let left_depth = self.specialize_node(left, prefix, prefix_len, out);
        out.nodes[slot].right = out.nodes.len() as u32;
        let right_depth = self.specialize_node(right, prefix, prefix_len, out);
        1 + left_depth.max(right_depth)
    }
}

/// A [`FlatForest`] partially evaluated against one snapshot's shared
/// feature prefix — the per-batch engine behind the Random-Forest
/// predictor's `predict_batch`.
///
/// Within one knob sweep every candidate row carries the *same* counter
/// prefix (written once by
/// [`FeatureBuffer::begin_snapshot`](crate::FeatureBuffer::begin_snapshot))
/// and differs only in the config suffix. Every tree split on a prefix
/// feature therefore takes the same branch for all rows; specialization
/// resolves those splits once and keeps only the suffix splits, so the
/// per-row walk touches a handful of nodes instead of the full tree
/// depth.
///
/// The buffers are reused across [`FlatForest::specialize_into`] calls —
/// steady-state specialization allocates nothing.
///
/// Nodes are stored array-of-structs: one 16-byte `PrunedNode` holds the
/// threshold, feature id, and right-child index together, so each walk
/// step touches a single cache line instead of three parallel arrays —
/// the pruned power forest typically spills past L1, where that halves
/// the loads in the dependent chain.
#[derive(Debug, Clone, Default)]
pub struct PrunedForest {
    nodes: Vec<PrunedNode>,
    roots: Vec<u32>,
    /// Depth in edges of each pruned tree, index-aligned with `roots`;
    /// lets the interleaved walk run an exact-count loop with no per-step
    /// are-all-lanes-done reduction.
    depths: Vec<u32>,
    num_features: usize,
    /// The `prefix_len` the forest was specialized with; node feature ids
    /// are stored relative to it, so the hot walk can run over compact
    /// suffix-only rows.
    suffix_base: usize,
}

/// Leaf sentinel in `PrunedNode::feature`; the threshold lane then
/// holds the leaf value.
const PRUNED_LEAF: u32 = u32::MAX;

/// One specialized split or leaf, packed into 16 bytes.
#[derive(Debug, Clone, Copy)]
struct PrunedNode {
    /// Split threshold, or the leaf value when `feature` is
    /// [`PRUNED_LEAF`].
    threshold: f64,
    /// Feature id compared at this node, relative to
    /// [`PrunedForest::suffix_base`].
    feature: u32,
    /// Right-child index; the left child is always the next slot.
    right: u32,
}

impl PrunedForest {
    /// Number of nodes across all pruned trees (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether every tree pruned down to a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= self.roots.len()
    }

    /// Width of the compact suffix rows
    /// [`predict_suffix_batch_into`](PrunedForest::predict_suffix_batch_into)
    /// expects.
    pub fn suffix_width(&self) -> usize {
        self.num_features - self.suffix_base
    }

    /// Prices every row of `matrix`, writing the per-row forest means
    /// into `out` (cleared and refilled, allocation reused).
    ///
    /// Bit-identical to [`FlatForest::predict_batch_into`] on the source
    /// forest **provided** every row carries the prefix the forest was
    /// specialized against: the walk performs the same suffix
    /// comparisons, reaches the same leaves, and accumulates in the same
    /// tree order before one division per row. The interleaved hot path
    /// is [`predict_suffix_batch_into`](PrunedForest::predict_suffix_batch_into);
    /// this full-width walk is the plain reference form.
    ///
    /// # Panics
    ///
    /// Panics when the matrix width differs from the fitted
    /// dimensionality.
    pub fn predict_batch_into(&self, matrix: &FeatureMatrix, out: &mut Vec<f64>) {
        assert_eq!(
            crate::features::NUM_FEATURES,
            self.num_features,
            "feature matrix width differs from fitted dimensionality"
        );
        out.clear();
        out.resize(matrix.rows(), 0.0);
        for &root in &self.roots {
            for (acc, row) in out.iter_mut().zip(matrix.iter_rows()) {
                let mut i = root as usize;
                loop {
                    let node = self.nodes[i];
                    if node.feature == PRUNED_LEAF {
                        *acc += node.threshold;
                        break;
                    }
                    i = if row[self.suffix_base + node.feature as usize] <= node.threshold {
                        i + 1
                    } else {
                        node.right as usize
                    };
                }
            }
        }
        let n = self.roots.len() as f64;
        for acc in out.iter_mut() {
            *acc /= n;
        }
    }

    /// Prices compact suffix-only rows — the batch hot path.
    ///
    /// `suffix` is row-major with
    /// [`suffix_width`](PrunedForest::suffix_width) columns per row: just
    /// the features past the specialization prefix (for the power/perf
    /// model, the six config features — 6×8 bytes per row instead of the
    /// full 14, so a whole campaign sweep stays L1-resident next to the
    /// pruned nodes). Bit-identical to
    /// [`predict_batch_into`](PrunedForest::predict_batch_into) on rows
    /// whose suffix matches.
    ///
    /// # Panics
    ///
    /// Panics when `suffix.len()` is not a multiple of the suffix width.
    pub fn predict_suffix_batch_into(&self, suffix: &[f64], out: &mut Vec<f64>) {
        let width = self.suffix_width();
        assert_eq!(
            suffix.len() % width.max(1),
            0,
            "suffix rows must be {width} wide"
        );
        let rows = suffix.len() / width.max(1);
        out.clear();
        out.resize(rows, 0.0);
        let row_at = |r: usize| &suffix[r * width..r * width + width];
        let nodes = &self.nodes[..];
        for (&root, &depth) in self.roots.iter().zip(&self.depths) {
            let root = root as usize;
            // Eight interleaved traversals, advanced exactly `depth`
            // times: each walk is a dependent load chain (node → feature
            // → compare → next node), so advancing independent rows side
            // by side hides that latency. A lane that reaches its leaf
            // early parks there (`i` unchanged) — after `depth` steps
            // every lane sits at exactly the leaf the scalar walk
            // reaches, with no per-step are-we-done reduction.
            let mut r = 0;
            while r + 8 <= rows {
                let (r0, r1) = (row_at(r), row_at(r + 1));
                let (r2, r3) = (row_at(r + 2), row_at(r + 3));
                let (r4, r5) = (row_at(r + 4), row_at(r + 5));
                let (r6, r7) = (row_at(r + 6), row_at(r + 7));
                let (mut i0, mut i1, mut i2, mut i3) = (root, root, root, root);
                let (mut i4, mut i5, mut i6, mut i7) = (root, root, root, root);
                for _ in 0..depth {
                    i0 = step(i0, nodes[i0], r0);
                    i1 = step(i1, nodes[i1], r1);
                    i2 = step(i2, nodes[i2], r2);
                    i3 = step(i3, nodes[i3], r3);
                    i4 = step(i4, nodes[i4], r4);
                    i5 = step(i5, nodes[i5], r5);
                    i6 = step(i6, nodes[i6], r6);
                    i7 = step(i7, nodes[i7], r7);
                }
                out[r] += nodes[i0].threshold;
                out[r + 1] += nodes[i1].threshold;
                out[r + 2] += nodes[i2].threshold;
                out[r + 3] += nodes[i3].threshold;
                out[r + 4] += nodes[i4].threshold;
                out[r + 5] += nodes[i5].threshold;
                out[r + 6] += nodes[i6].threshold;
                out[r + 7] += nodes[i7].threshold;
                r += 8;
            }
            for (rr, acc) in out.iter_mut().enumerate().skip(r) {
                let row = row_at(rr);
                let mut i = root;
                loop {
                    let node = nodes[i];
                    if node.feature == PRUNED_LEAF {
                        *acc += node.threshold;
                        break;
                    }
                    i = if row[node.feature as usize] <= node.threshold {
                        i + 1
                    } else {
                        node.right as usize
                    };
                }
            }
        }
        let n = self.roots.len() as f64;
        for acc in out.iter_mut() {
            *acc /= n;
        }
    }
}

/// One interleaved-walk step: leaves self-loop, splits advance.
#[inline(always)]
fn step(i: usize, node: PrunedNode, row: &[f64]) -> usize {
    if node.feature == PRUNED_LEAF {
        i
    } else if row[node.feature as usize] <= node.threshold {
        i + 1
    } else {
        node.right as usize
    }
}

/// A whole forest in flat form: the batched inference engine.
///
/// # Examples
///
/// ```
/// use gpm_model::{FlatForest, ForestParams, RandomForest};
///
/// let xs: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
/// let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0]).collect();
/// let forest = RandomForest::fit(&xs, &ys, &ForestParams::default(), 7);
/// let flat = FlatForest::from_forest(&forest);
/// // Bit-identical to the nested traversal.
/// assert_eq!(flat.predict(&[30.0]), forest.predict(&[30.0]));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
    num_features: usize,
}

impl FlatForest {
    /// Flattens every tree of a fitted forest.
    ///
    /// # Panics
    ///
    /// Propagates the [`FlatTree::from_tree`] invariant panics.
    pub fn from_forest(forest: &RandomForest) -> FlatForest {
        FlatForest {
            trees: forest.trees().iter().map(FlatTree::from_tree).collect(),
            num_features: forest
                .trees()
                .first()
                .map_or(0, RegressionTree::num_features),
        }
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Dimensionality the forest was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Mean prediction over all trees for one row — bit-identical to
    /// [`RandomForest::predict`] on the source forest.
    ///
    /// # Panics
    ///
    /// Panics if `row` is narrower than the fitted dimensionality (via the
    /// feature access; see [`RegressionTree::predict`]'s contract).
    pub fn predict(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len(), self.num_features, "feature dimensionality");
        let mut sum = 0.0;
        for tree in &self.trees {
            sum += tree.predict_row(row);
        }
        sum / self.trees.len() as f64
    }

    /// Prices every row of `matrix` in one tree-major pass, writing the
    /// per-row forest means into `out` (cleared and refilled; the
    /// allocation is reused across calls, so steady-state batches
    /// allocate nothing).
    ///
    /// Per-row results are bit-identical to calling
    /// [`predict`](FlatForest::predict) on each row: trees accumulate in
    /// the same order and the division happens once per row.
    ///
    /// # Panics
    ///
    /// Panics when the matrix width differs from the fitted
    /// dimensionality — the batch-boundary check that replaces the
    /// demoted per-call assertions.
    pub fn predict_batch_into(&self, matrix: &FeatureMatrix, out: &mut Vec<f64>) {
        assert_eq!(
            crate::features::NUM_FEATURES,
            self.num_features,
            "feature matrix width differs from fitted dimensionality"
        );
        out.clear();
        out.resize(matrix.rows(), 0.0);
        for tree in &self.trees {
            for (acc, row) in out.iter_mut().zip(matrix.iter_rows()) {
                *acc += tree.predict_row(row);
            }
        }
        let n = self.trees.len() as f64;
        for acc in out.iter_mut() {
            *acc /= n;
        }
    }

    /// Allocating convenience wrapper around
    /// [`predict_batch_into`](FlatForest::predict_batch_into).
    pub fn predict_batch(&self, matrix: &FeatureMatrix) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_batch_into(matrix, &mut out);
        out
    }

    /// Partially evaluates every tree against the first `prefix_len`
    /// features of `prefix`, rebuilding `out` in place.
    ///
    /// `prefix` is typically a batch's first row: within one knob sweep
    /// all rows share a bit-identical counter prefix, so splits on those
    /// features resolve to the same side for every row and can be
    /// collapsed once here instead of being re-compared per row. The
    /// resulting [`PrunedForest`] predicts bit-identically to this forest
    /// for any row that carries that exact prefix.
    ///
    /// # Panics
    ///
    /// Panics when `prefix` is shorter than `prefix_len`.
    pub fn specialize_into(&self, prefix: &[f64], prefix_len: usize, out: &mut PrunedForest) {
        let _span = gpm_telemetry::span("flat.specialize");
        assert!(
            prefix.len() >= prefix_len,
            "prefix row narrower than prefix_len"
        );
        out.nodes.clear();
        out.roots.clear();
        out.depths.clear();
        out.num_features = self.num_features;
        out.suffix_base = prefix_len;
        for tree in &self.trees {
            let root = out.nodes.len() as u32;
            let depth = tree.specialize_node(0, prefix, prefix_len, out);
            out.roots.push(root);
            out.depths.push(depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{encode_features, FeatureBuffer, NUM_FEATURES};
    use crate::forest::ForestParams;
    use crate::tree::TreeParams;
    use gpm_hw::{ConfigSpace, HwConfig};
    use gpm_sim::CounterSet;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random regression problem of the model's real dimensionality.
    fn random_problem(seed: u64, n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                (0..NUM_FEATURES)
                    .map(|_| rng.gen_range(-5.0..5.0))
                    .collect()
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x[0] * 2.0 - x[3] + (x[7] * x[1]).sin() + rng.gen_range(-0.1..0.1))
            .collect();
        (xs, ys)
    }

    #[test]
    fn flat_predictions_bit_identical_to_nested_across_random_forests() {
        for seed in 0..8u64 {
            let (xs, ys) = random_problem(seed, 160);
            let params = ForestParams {
                num_trees: 9,
                tree: TreeParams {
                    max_depth: 7,
                    min_samples_leaf: 2,
                    feature_subsample: None,
                    threshold_candidates: 8,
                },
                bootstrap_fraction: 0.8,
            };
            let forest = RandomForest::fit(&xs, &ys, &params, seed ^ 0xDEAD);
            let flat = FlatForest::from_forest(&forest);
            for x in &xs {
                assert_eq!(
                    flat.predict(x).to_bits(),
                    forest.predict(x).to_bits(),
                    "seed {seed}: flat and nested traversal diverged"
                );
            }
        }
    }

    #[test]
    fn batch_predictions_bit_identical_to_looped_scalar() {
        let sim_counters = CounterSet::from_values([1e8, 40.0, 60.0, 1e5, 6.0, 3.0, 1e6, 1e6]);
        let space = ConfigSpace::paper_campaign();
        let xs: Vec<Vec<f64>> = space
            .iter()
            .map(|cfg| encode_features(&sim_counters, cfg))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[11] * 3.0 - x[12]).collect();
        let forest = RandomForest::fit(&xs, &ys, &ForestParams::default(), 5);
        let flat = FlatForest::from_forest(&forest);

        let mut buf = FeatureBuffer::new();
        buf.begin_snapshot(&sim_counters);
        for cfg in &space {
            buf.push_config(cfg);
        }
        let batch = flat.predict_batch(buf.matrix());
        assert_eq!(batch.len(), space.len());
        for (out, x) in batch.iter().zip(&xs) {
            assert_eq!(out.to_bits(), forest.predict(x).to_bits());
            assert_eq!(out.to_bits(), flat.predict(x).to_bits());
        }
    }

    #[test]
    fn batch_into_reuses_allocation() {
        let (xs, ys) = random_problem(3, 80);
        let forest = RandomForest::fit(
            &xs,
            &ys,
            &ForestParams {
                num_trees: 4,
                ..ForestParams::default()
            },
            1,
        );
        let flat = FlatForest::from_forest(&forest);
        let mut buf = FeatureBuffer::new();
        buf.begin_snapshot(&CounterSet::default());
        for cfg in &ConfigSpace::paper_campaign() {
            buf.push_config(cfg);
        }
        let mut out = Vec::new();
        flat.predict_batch_into(buf.matrix(), &mut out);
        let cap = out.capacity();
        let first = out.clone();
        flat.predict_batch_into(buf.matrix(), &mut out);
        assert_eq!(out, first);
        assert_eq!(out.capacity(), cap, "refill must not reallocate");
    }

    #[test]
    fn specialized_forest_bit_identical_for_shared_prefix_rows() {
        use crate::features::NUM_CONFIG_FEATURES;
        const PREFIX: usize = NUM_FEATURES - NUM_CONFIG_FEATURES;
        for seed in 0..6u64 {
            let counters = {
                let mut rng = StdRng::seed_from_u64(seed);
                CounterSet::from_values([
                    rng.gen_range(0.0..1e9),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..1e6),
                    rng.gen_range(0.0..16.0),
                    rng.gen_range(0.0..10.0),
                    rng.gen_range(0.0..1e7),
                    rng.gen_range(0.0..1e7),
                ])
            };
            let space = ConfigSpace::paper_campaign();
            // Train across several snapshots so the fitted trees split on
            // counter features too — otherwise there is nothing to prune.
            let other_a = CounterSet::from_values([9e8, 80.0, 20.0, 9e5, 15.0, 1.0, 9e6, 1e5]);
            let other_b = CounterSet::from_values([1e6, 5.0, 95.0, 1e3, 1.0, 9.0, 1e4, 8e6]);
            let xs: Vec<Vec<f64>> = [&counters, &other_a, &other_b]
                .into_iter()
                .flat_map(|c| space.iter().map(move |cfg| encode_features(c, cfg)))
                .collect();
            let ys: Vec<f64> = xs
                .iter()
                .map(|x| x[0] * 1e-9 + x[9] - 2.0 * x[12])
                .collect();
            let forest = RandomForest::fit(&xs, &ys, &ForestParams::default(), seed);
            let flat = FlatForest::from_forest(&forest);

            let mut buf = FeatureBuffer::new();
            buf.begin_snapshot(&counters);
            for cfg in &space {
                buf.push_config(cfg);
            }
            let mut pruned = PrunedForest::default();
            flat.specialize_into(buf.matrix().row(0), PREFIX, &mut pruned);
            assert!(
                pruned.len() < flat.trees.iter().map(FlatTree::len).sum::<usize>(),
                "seed {seed}: specialization removed no nodes"
            );
            let mut fast = Vec::new();
            pruned.predict_batch_into(buf.matrix(), &mut fast);
            let full = flat.predict_batch(buf.matrix());
            for (i, (a, b)) in fast.iter().zip(&full).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "seed {seed}, row {i}: pruned and full walks diverged"
                );
            }
            // The compact suffix-only walk (the hot path) must agree too.
            assert_eq!(pruned.suffix_width(), NUM_CONFIG_FEATURES);
            let suffix: Vec<f64> = buf
                .matrix()
                .iter_rows()
                .flat_map(|row| row[PREFIX..].to_vec())
                .collect();
            let mut compact = Vec::new();
            pruned.predict_suffix_batch_into(&suffix, &mut compact);
            for (i, (a, b)) in compact.iter().zip(&full).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "seed {seed}, row {i}: compact suffix walk diverged"
                );
            }
            // Reuse: re-specializing against another snapshot stays correct.
            let counters2 = CounterSet::from_values([5e8, 10.0, 90.0, 2e5, 3.0, 7.0, 4e6, 9e5]);
            let mut buf2 = FeatureBuffer::new();
            buf2.begin_snapshot(&counters2);
            for cfg in &space {
                buf2.push_config(cfg);
            }
            flat.specialize_into(buf2.matrix().row(0), PREFIX, &mut pruned);
            pruned.predict_batch_into(buf2.matrix(), &mut fast);
            let full2 = flat.predict_batch(buf2.matrix());
            for (a, b) in fast.iter().zip(&full2) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn single_leaf_tree_flattens() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64; NUM_FEATURES]).collect();
        let ys = vec![7.5; 20];
        let forest = RandomForest::fit(
            &xs,
            &ys,
            &ForestParams {
                num_trees: 2,
                ..ForestParams::default()
            },
            1,
        );
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.predict(&xs[0]), 7.5);
        assert!(flat.trees.iter().all(FlatTree::is_empty));
    }

    #[test]
    fn flat_forest_reports_shape() {
        let (xs, ys) = random_problem(9, 60);
        let params = ForestParams {
            num_trees: 5,
            ..ForestParams::default()
        };
        let forest = RandomForest::fit(&xs, &ys, &params, 2);
        let flat = FlatForest::from_forest(&forest);
        assert_eq!(flat.num_trees(), 5);
        assert_eq!(flat.num_features(), NUM_FEATURES);
        assert!(flat.trees.iter().all(|t| !t.feature.is_empty()));
        let _ = HwConfig::FAIL_SAFE; // keep the hw import exercised in all cfgs
    }
}
