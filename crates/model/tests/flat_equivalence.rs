//! Property tests pinning the batched flat-inference engine to the nested
//! traversal: across randomly fitted forests, flat predictions are
//! bit-identical to [`RandomForest::predict`], and batched prediction is
//! bit-identical to the scalar loop.

use gpm_hw::ConfigSpace;
use gpm_model::{
    encode_features, FeatureBuffer, FlatForest, ForestParams, RandomForest, TreeParams,
    NUM_FEATURES,
};
use gpm_sim::CounterSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random regression problem of the model's real dimensionality.
fn random_problem(seed: u64, rows: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            (0..NUM_FEATURES)
                .map(|_| rng.gen_range(-10.0..10.0))
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x[0] - 0.5 * x[5] + (x[9] * 0.3).tanh() + rng.gen_range(-0.2..0.2))
        .collect();
    (xs, ys)
}

fn forest_params(num_trees: usize, max_depth: usize) -> ForestParams {
    ForestParams {
        num_trees,
        tree: TreeParams {
            max_depth,
            min_samples_leaf: 2,
            feature_subsample: None,
            threshold_candidates: 6,
        },
        bootstrap_fraction: 0.9,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn flat_forest_is_bit_identical_to_nested(
        seed in 0u64..(1u64 << 32),
        num_trees in 1usize..8,
        max_depth in 2usize..8,
        rows in 20usize..80,
    ) {
        let (xs, ys) = random_problem(seed, rows);
        let forest = RandomForest::fit(&xs, &ys, &forest_params(num_trees, max_depth), seed);
        let flat = FlatForest::from_forest(&forest);
        // Training rows land exactly on leaves; probe rows exercise both
        // branch directions away from fitted thresholds.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let probes: Vec<Vec<f64>> = (0..20)
            .map(|_| (0..NUM_FEATURES).map(|_| rng.gen_range(-12.0..12.0)).collect())
            .collect();
        for x in xs.iter().take(25).chain(&probes) {
            prop_assert_eq!(flat.predict(x).to_bits(), forest.predict(x).to_bits());
        }
    }

    #[test]
    fn batch_is_bit_identical_to_scalar_loop(
        seed in 0u64..(1u64 << 32),
        num_trees in 1usize..6,
    ) {
        let counters = {
            let mut rng = StdRng::seed_from_u64(seed);
            CounterSet::from_values([
                rng.gen_range(0.0..1e9),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..1e6),
                rng.gen_range(0.0..16.0),
                rng.gen_range(0.0..10.0),
                rng.gen_range(0.0..1e7),
                rng.gen_range(0.0..1e7),
            ])
        };
        let space = ConfigSpace::paper_campaign();
        let xs: Vec<Vec<f64>> = space.iter().map(|cfg| encode_features(&counters, cfg)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[11] - x[13]).collect();
        let forest = RandomForest::fit(&xs, &ys, &forest_params(num_trees, 6), seed);
        let flat = FlatForest::from_forest(&forest);

        let mut buf = FeatureBuffer::new();
        buf.begin_snapshot(&counters);
        for cfg in &space {
            buf.push_config(cfg);
        }
        let batch = flat.predict_batch(buf.matrix());
        prop_assert_eq!(batch.len(), space.len());
        for (out, x) in batch.iter().zip(&xs) {
            prop_assert_eq!(out.to_bits(), flat.predict(x).to_bits());
            prop_assert_eq!(out.to_bits(), forest.predict(x).to_bits());
        }
    }

    #[test]
    fn predict_all_into_matches_scalar_mean(
        seed in 0u64..(1u64 << 32),
        num_trees in 1usize..8,
    ) {
        let (xs, ys) = random_problem(seed, 40);
        let forest = RandomForest::fit(&xs, &ys, &forest_params(num_trees, 5), seed);
        let mut per_tree = Vec::new();
        for x in xs.iter().take(10) {
            forest.predict_all_into(x, &mut per_tree);
            prop_assert_eq!(per_tree.len(), forest.num_trees());
            let mean = per_tree.iter().sum::<f64>() / per_tree.len() as f64;
            prop_assert_eq!(mean.to_bits(), forest.predict(x).to_bits());
        }
    }
}
