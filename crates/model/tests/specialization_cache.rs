//! Property tests for the flat-forest specialization cache: retraining
//! (through any `fit_with_threads` thread count) assembles a predictor
//! with a strictly newer generation tag, and the thread-local
//! specialization + per-snapshot value memos never serve state cached
//! for an older predictor — batched predictions after a retrain are
//! bit-identical to the fresh predictor's scalar path.

use gpm_hw::{ConfigSpace, HwConfig};
use gpm_model::{ForestParams, RandomForest, RandomForestPredictor, TreeParams, NUM_FEATURES};
use gpm_sim::predictor::{KernelSnapshot, PowerPerfPredictor};
use gpm_sim::CounterSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random regression problem of the model's real dimensionality.
fn random_problem(seed: u64, rows: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            (0..NUM_FEATURES)
                .map(|_| rng.gen_range(-10.0..10.0))
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x[0] - 0.5 * x[5] + (x[9] * 0.3).tanh() + rng.gen_range(-0.2..0.2))
        .collect();
    (xs, ys)
}

fn params() -> ForestParams {
    ForestParams {
        num_trees: 4,
        tree: TreeParams {
            max_depth: 6,
            min_samples_leaf: 2,
            feature_subsample: None,
            threshold_candidates: 6,
        },
        bootstrap_fraction: 0.9,
    }
}

/// Fits both forests at `threads` and assembles a predictor — the
/// retraining path the cache must survive.
fn fit_predictor(seed: u64, threads: usize) -> RandomForestPredictor {
    let (xs, ys_time) = random_problem(seed, 60);
    let (_, ys_power) = random_problem(seed ^ 0xABCD, 60);
    let time = RandomForest::fit_with_threads(&xs, &ys_time, &params(), seed, threads);
    let power = RandomForest::fit_with_threads(&xs, &ys_power, &params(), seed ^ 1, threads);
    RandomForestPredictor::from_forests(time, power)
}

fn snapshot(seed: u64) -> KernelSnapshot {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut values = [0.0f64; 8];
    for v in &mut values {
        *v = rng.gen_range(0.0..1e6);
    }
    KernelSnapshot::counters_only(CounterSet::from_values(values), HwConfig::FAIL_SAFE, 1.0)
}

/// Scalar reference: the predictor's own per-call path (fresh feature
/// row each time, no batch memo involvement beyond a single row).
fn scalar_sweep(rf: &RandomForestPredictor, snap: &KernelSnapshot, cfgs: &[HwConfig]) -> Vec<u64> {
    cfgs.iter()
        .flat_map(|&cfg| {
            let est = rf.predict(snap, cfg);
            [est.time_s.to_bits(), est.gpu_power_w.to_bits()]
        })
        .collect()
}

fn batched_sweep(rf: &RandomForestPredictor, snap: &KernelSnapshot, cfgs: &[HwConfig]) -> Vec<u64> {
    let mut out = Vec::new();
    rf.predict_batch(snap, cfgs, &mut out);
    out.iter()
        .flat_map(|est| [est.time_s.to_bits(), est.gpu_power_w.to_bits()])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Generation tags are strictly monotone across retrains, whatever
    /// thread count fitted the forests — so scratch state primed by an
    /// older predictor can never look current to a newer one.
    #[test]
    fn retraining_strictly_advances_the_generation(
        seed in 0u64..(1u64 << 32),
        threads_a in 0usize..4,
        threads_b in 0usize..4,
    ) {
        let a = fit_predictor(seed, threads_a);
        let b = fit_predictor(seed ^ 0x5EED, threads_b);
        prop_assert!(a.generation() > 0, "generation 0 is the empty-scratch sentinel");
        prop_assert!(
            b.generation() > a.generation(),
            "retrain produced generation {} after {}",
            b.generation(),
            a.generation()
        );
        // Clones share the fitted model and its cache identity.
        prop_assert_eq!(a.clone().generation(), a.generation());
    }

    /// The stale-serve property itself: prime the thread-local memo with
    /// predictor A, retrain to B on the same thread, and batch-predict
    /// the same snapshot/configs — every value must match B's scalar
    /// path bit-for-bit (a stale `PrunedForest` or memo row from A would
    /// leak A's values). Interleaving A afterwards must restore A's
    /// values just as exactly.
    #[test]
    fn memo_primed_by_an_old_predictor_is_never_served_after_retrain(
        seed in 0u64..(1u64 << 32),
        threads in 0usize..4,
    ) {
        let cfgs: Vec<HwConfig> = ConfigSpace::paper_campaign().iter().collect();
        let snap = snapshot(seed ^ 0xC0FFEE);

        let a = fit_predictor(seed, threads);
        // Prime: specialize + fill the value memo for this exact
        // (generation, prefix) on this thread, twice so the second call
        // is a pure memo hit.
        let a_first = batched_sweep(&a, &snap, &cfgs);
        let a_memo = batched_sweep(&a, &snap, &cfgs);
        prop_assert_eq!(&a_first, &a_memo, "A's memo hit diverged from its own fill");

        // Retrain. Same thread, same snapshot, same configs — only the
        // predictor (and its generation) changed.
        let b = fit_predictor(seed ^ 0xB00_57ED, threads);
        let b_batched = batched_sweep(&b, &snap, &cfgs);
        let b_scalar = scalar_sweep(&b, &snap, &cfgs);
        prop_assert_eq!(&b_batched, &b_scalar, "B served stale state primed by A");
        prop_assert_ne!(&b_batched, &a_first, "distinct forests predicted identically");

        // Swap back to A: its values must round-trip exactly, through
        // re-specialization, not a stale B memo.
        let a_again = batched_sweep(&a, &snap, &cfgs);
        prop_assert_eq!(&a_again, &a_first, "A's values did not survive the B interleave");
    }

    /// `fit_with_threads` is bit-identical across thread counts, so the
    /// cache property composes with parallel retraining: predictors
    /// fitted at different thread counts from the same data predict
    /// identically (while still carrying distinct generations).
    #[test]
    fn thread_count_changes_generation_but_not_predictions(
        seed in 0u64..(1u64 << 32),
    ) {
        let cfgs: Vec<HwConfig> = ConfigSpace::paper_campaign().iter().collect();
        let snap = snapshot(seed);
        let seq = fit_predictor(seed, 1);
        let par = fit_predictor(seed, 0);
        prop_assert!(par.generation() > seq.generation());
        prop_assert_eq!(batched_sweep(&seq, &snap, &cfgs), batched_sweep(&par, &snap, &cfgs));
    }
}
