//! The eight GPU performance counters of Table III.
//!
//! The pattern extractor stores these per kernel; the Random-Forest
//! predictor consumes them as features. On real hardware they come from
//! CodeXL; here they are synthesized from the kernel's characteristics and
//! the configuration it executed at.

use crate::kernel::KernelCharacteristics;
use crate::perf::TimeBreakdown;
use gpm_hw::HwConfig;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// Number of representative counters (Table III).
pub const NUM_COUNTERS: usize = 8;

/// Counter names in storage order, matching Table III.
pub const COUNTER_NAMES: [&str; NUM_COUNTERS] = [
    "GlobalWorkSize",
    "MemUnitStalled",
    "CacheHit",
    "VFetchInsts",
    "ScratchRegs",
    "LDSBankConflict",
    "VALUInsts",
    "FetchSize",
];

/// A sampled set of the eight Table III counters.
///
/// # Examples
///
/// ```
/// use gpm_sim::{CounterSet, COUNTER_NAMES};
///
/// let c = CounterSet::from_values([1024.0, 10.0, 80.0, 2.0, 8.0, 1.0, 64.0, 512.0]);
/// assert_eq!(c.get(COUNTER_NAMES[2]), Some(80.0));
/// assert_eq!(c.cache_hit_pct(), 80.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CounterSet([f64; NUM_COUNTERS]);

impl CounterSet {
    /// Builds a counter set from raw values in Table III order.
    pub fn from_values(values: [f64; NUM_COUNTERS]) -> CounterSet {
        CounterSet(values)
    }

    /// Synthesizes the counters a profiler would report for `kernel`
    /// executing at `cfg` with time behaviour `time`.
    pub fn synthesize(
        kernel: &KernelCharacteristics,
        cfg: HwConfig,
        time: &TimeBreakdown,
    ) -> CounterSet {
        let gws = kernel.global_work_size();
        let busy = (time.total_s - time.launch_s - time.fixed_s).max(1e-12);
        // Percentage of GPU time the memory unit is stalled.
        let mem_unit_stalled = (time.memory_s / busy * 100.0).clamp(0.0, 100.0);
        let cache_hit = kernel.cache_hit_at(cfg.cu.get()) * 100.0;
        // Average vector-fetch instructions per work-item (64 B granules).
        let vfetch = kernel.memory_gb() * 1e9 / 64.0 / gws;
        let scratch = kernel.scratch_regs();
        let lds = kernel.lds_conflict() * 100.0;
        // Average vector-ALU instructions per work-item.
        let valu = kernel.compute_gops() * 1e9 / gws;
        // Total kB fetched from video (here: system) memory.
        let fetch_kb = time.dram_traffic_gb * 1e6;
        CounterSet([
            gws,
            mem_unit_stalled,
            cache_hit,
            vfetch,
            scratch,
            lds,
            valu,
            fetch_kb,
        ])
    }

    /// Raw values in Table III order.
    pub fn values(&self) -> &[f64; NUM_COUNTERS] {
        &self.0
    }

    /// Mutable raw values, for fault-injection layers that perturb the
    /// counters a governor observes.
    pub fn values_mut(&mut self) -> &mut [f64; NUM_COUNTERS] {
        &mut self.0
    }

    /// Whether every counter is finite and non-negative — the invariant
    /// all synthesized counters satisfy and predictors rely on.
    pub fn is_well_formed(&self) -> bool {
        self.0.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Repairs corrupted values in place: non-finite or negative entries
    /// are clamped to 0.0. Returns `true` when anything changed.
    pub fn sanitize(&mut self) -> bool {
        let mut changed = false;
        for v in &mut self.0 {
            if !v.is_finite() || *v < 0.0 {
                *v = 0.0;
                changed = true;
            }
        }
        changed
    }

    /// Looks a counter up by its Table III name.
    pub fn get(&self, name: &str) -> Option<f64> {
        COUNTER_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| self.0[i])
    }

    /// `GlobalWorkSize`: work-items in the NDRange.
    pub fn global_work_size(&self) -> f64 {
        self.0[0]
    }

    /// `MemUnitStalled`: % of GPU time the memory unit is stalled.
    pub fn mem_unit_stalled_pct(&self) -> f64 {
        self.0[1]
    }

    /// `CacheHit`: % of cache-able accesses that hit.
    pub fn cache_hit_pct(&self) -> f64 {
        self.0[2]
    }

    /// `VFetchInsts`: average vector fetch instructions per work-item.
    pub fn vfetch_insts(&self) -> f64 {
        self.0[3]
    }

    /// `ScratchRegs`: scratch registers used.
    pub fn scratch_regs(&self) -> f64 {
        self.0[4]
    }

    /// `LDSBankConflict`: % of GPU time LDS is stalled by bank conflicts.
    pub fn lds_bank_conflict_pct(&self) -> f64 {
        self.0[5]
    }

    /// `VALUInsts`: average vector ALU instructions per work-item.
    pub fn valu_insts(&self) -> f64 {
        self.0[6]
    }

    /// `FetchSize`: total kB fetched from memory.
    pub fn fetch_size_kb(&self) -> f64 {
        self.0[7]
    }

    /// Euclidean distance in log-space, a scale-robust dissimilarity used
    /// by tests and diagnostics.
    pub fn log_distance(&self, other: &CounterSet) -> f64 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| {
                let la = (a.abs() + 1.0).ln();
                let lb = (b.abs() + 1.0).ln();
                (la - lb) * (la - lb)
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl Index<usize> for CounterSet {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (name, v)) in COUNTER_NAMES.iter().zip(self.0.iter()).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {v:.3}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimParams;
    use crate::perf::execution_time;
    use gpm_hw::{CpuPState, CuCount, GpuDpm, NbState};

    fn synth(kernel: &KernelCharacteristics, cu: u32) -> CounterSet {
        let p = SimParams::noiseless();
        let cfg = HwConfig::new(
            CpuPState::P1,
            NbState::Nb0,
            GpuDpm::Dpm4,
            CuCount::new(cu).unwrap(),
        );
        let t = execution_time(&p, kernel, cfg);
        CounterSet::synthesize(kernel, cfg, &t)
    }

    #[test]
    fn names_cover_all_slots() {
        assert_eq!(COUNTER_NAMES.len(), NUM_COUNTERS);
        let c = CounterSet::from_values([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        for (i, name) in COUNTER_NAMES.iter().enumerate() {
            assert_eq!(c.get(name), Some((i + 1) as f64));
        }
        assert_eq!(c.get("NotACounter"), None);
    }

    #[test]
    fn memory_bound_stalls_more_than_compute_bound() {
        let mb = synth(&KernelCharacteristics::memory_bound("m", 1.0), 8);
        let cb = synth(&KernelCharacteristics::compute_bound("c", 20.0), 8);
        assert!(mb.mem_unit_stalled_pct() > cb.mem_unit_stalled_pct());
    }

    #[test]
    fn peak_kernel_cache_hit_drops_with_cus() {
        let k = KernelCharacteristics::peak("p", 10.0);
        assert!(synth(&k, 8).cache_hit_pct() < synth(&k, 2).cache_hit_pct());
        assert!(synth(&k, 8).fetch_size_kb() > synth(&k, 2).fetch_size_kb());
    }

    #[test]
    fn percent_counters_bounded() {
        for k in [
            KernelCharacteristics::compute_bound("a", 10.0),
            KernelCharacteristics::memory_bound("b", 2.0),
            KernelCharacteristics::peak("c", 10.0),
            KernelCharacteristics::unscalable("d", 0.01),
        ] {
            for cu in [2u32, 8] {
                let c = synth(&k, cu);
                assert!((0.0..=100.0).contains(&c.mem_unit_stalled_pct()));
                assert!((0.0..=100.0).contains(&c.cache_hit_pct()));
                assert!((0.0..=100.0).contains(&c.lds_bank_conflict_pct()));
            }
        }
    }

    #[test]
    fn log_distance_zero_iff_equal() {
        let k = KernelCharacteristics::compute_bound("a", 10.0);
        let a = synth(&k, 4);
        assert_eq!(a.log_distance(&a), 0.0);
        let b = synth(&KernelCharacteristics::memory_bound("b", 2.0), 4);
        assert!(a.log_distance(&b) > 0.1);
    }

    #[test]
    fn sanitize_clamps_only_corrupted_values() {
        let mut clean = CounterSet::from_values([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert!(clean.is_well_formed());
        assert!(!clean.sanitize());

        let mut bad = clean;
        bad.values_mut()[1] = f64::NAN;
        bad.values_mut()[4] = -3.0;
        bad.values_mut()[6] = f64::INFINITY;
        assert!(!bad.is_well_formed());
        assert!(bad.sanitize());
        assert!(bad.is_well_formed());
        assert_eq!(bad.values()[1], 0.0);
        assert_eq!(bad.values()[4], 0.0);
        assert_eq!(bad.values()[6], 0.0);
        // Untouched slots keep their values.
        assert_eq!(bad.values()[0], 1.0);
        assert_eq!(bad.values()[7], 8.0);
    }

    #[test]
    fn display_lists_every_counter() {
        let c = CounterSet::default();
        let s = c.to_string();
        for name in COUNTER_NAMES {
            assert!(s.contains(name));
        }
    }
}
