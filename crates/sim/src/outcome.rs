//! Results of simulating one kernel invocation.

use crate::counters::CounterSet;
pub use crate::perf::TimeBreakdown;
pub use crate::power::PowerBreakdown;
use serde::{Deserialize, Serialize};

/// Energy consumed by one kernel invocation, split the way the paper
/// reports it, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EnergyBreakdown {
    /// CPU energy (dynamic + leakage).
    pub cpu_j: f64,
    /// GPU-domain energy: GPU + NB dynamic plus GPU leakage — what the
    /// APU's power controller attributes to the GPU rail.
    pub gpu_j: f64,
    /// DRAM energy.
    pub dram_j: f64,
    /// Remaining SoC energy.
    pub other_j: f64,
}

impl EnergyBreakdown {
    /// Integrates a power breakdown over `time_s` seconds.
    pub fn from_power(power: &PowerBreakdown, time_s: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            cpu_j: power.cpu_domain_w() * time_s,
            gpu_j: power.gpu_domain_w() * time_s,
            dram_j: power.dram_w * time_s,
            other_j: power.other_w * time_s,
        }
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.cpu_j + self.gpu_j + self.dram_j + self.other_j
    }

    /// Component-wise sum; useful for accumulating application totals.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.cpu_j += other.cpu_j;
        self.gpu_j += other.gpu_j;
        self.dram_j += other.dram_j;
        self.other_j += other.other_j;
    }
}

/// Complete observed outcome of one kernel invocation: what a governor
/// learns after the kernel retires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelOutcome {
    /// End-to-end kernel time in seconds (with measurement noise).
    pub time_s: f64,
    /// Noiseless time decomposition from the analytical model.
    pub time_breakdown: TimeBreakdown,
    /// Average power over the invocation (with measurement noise applied to
    /// the GPU domain).
    pub power: PowerBreakdown,
    /// Energy integrated over the (noisy) invocation time.
    pub energy: EnergyBreakdown,
    /// Synthesized Table III performance counters.
    pub counters: CounterSet,
    /// Instructions executed, in giga-instructions (the `I_i` of Eq. 1).
    pub ginstructions: f64,
}

impl KernelOutcome {
    /// Kernel instruction throughput in giga-instructions per second, the
    /// paper's performance metric.
    pub fn throughput(&self) -> f64 {
        self.ginstructions / self.time_s
    }

    /// Repairs a corrupted observation so learning components (pattern
    /// store, headroom tracker, predictors) can consume it without
    /// poisoning their state: counters are clamped finite and
    /// non-negative, and a non-finite or non-positive time / negative
    /// instruction count falls back to a tiny safe default. Returns
    /// `true` when anything had to change.
    pub fn sanitize(&mut self) -> bool {
        let mut changed = self.counters.sanitize();
        if !self.time_s.is_finite() || self.time_s <= 0.0 {
            self.time_s = 1e-9;
            changed = true;
        }
        if !self.ginstructions.is_finite() || self.ginstructions < 0.0 {
            self.ginstructions = 0.0;
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power() -> PowerBreakdown {
        PowerBreakdown {
            cpu_dyn_w: 10.0,
            gpu_dyn_w: 20.0,
            nb_dyn_w: 5.0,
            dram_w: 3.0,
            cpu_leak_w: 2.0,
            gpu_leak_w: 4.0,
            other_w: 1.0,
            temp_c: 50.0,
        }
    }

    #[test]
    fn energy_integrates_power() {
        let e = EnergyBreakdown::from_power(&power(), 2.0);
        assert!((e.cpu_j - 24.0).abs() < 1e-12); // (10 + 2) × 2
        assert!((e.gpu_j - 58.0).abs() < 1e-12); // (20 + 5 + 4) × 2
        assert!((e.dram_j - 6.0).abs() < 1e-12);
        assert!((e.other_j - 2.0).abs() < 1e-12);
        assert!((e.total_j() - power().total_w() * 2.0).abs() < 1e-12);
    }

    #[test]
    fn sanitize_repairs_corrupted_outcomes() {
        let mut out = KernelOutcome {
            time_s: 0.5,
            time_breakdown: TimeBreakdown {
                compute_s: 0.3,
                memory_s: 0.1,
                fixed_s: 0.05,
                launch_s: 0.05,
                total_s: 0.5,
                alu_activity: 0.5,
                mem_util: 0.2,
                dram_traffic_gb: 0.1,
            },
            power: power(),
            energy: EnergyBreakdown::from_power(&power(), 0.5),
            counters: CounterSet::from_values([1.0; 8]),
            ginstructions: 2.0,
        };
        assert!(!out.clone().sanitize());
        out.time_s = f64::NAN;
        out.ginstructions = f64::NEG_INFINITY;
        out.counters.values_mut()[3] = f64::NAN;
        assert!(out.sanitize());
        assert!(out.time_s > 0.0 && out.time_s.is_finite());
        assert_eq!(out.ginstructions, 0.0);
        assert!(out.counters.is_well_formed());
        assert!(out.throughput().is_finite());
    }

    #[test]
    fn accumulate_sums_componentwise() {
        let mut acc = EnergyBreakdown::default();
        let e = EnergyBreakdown::from_power(&power(), 1.0);
        acc.accumulate(&e);
        acc.accumulate(&e);
        assert!((acc.total_j() - 2.0 * e.total_j()).abs() < 1e-12);
        assert!((acc.cpu_j - 2.0 * e.cpu_j).abs() < 1e-12);
    }
}
