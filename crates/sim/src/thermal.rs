//! Temperature and leakage fixed point.
//!
//! Leakage power depends on die temperature, which depends on total power,
//! which includes leakage. We resolve the loop with a short fixed-point
//! iteration (the map is a mild contraction for realistic parameters).
//!
//! This coupling is what makes lowering the CPU DVFS state "slightly reduce
//! the GPU power due to a reduction in temperature and leakage"
//! (Section II-A of the paper).

use crate::params::SimParams;
use serde::{Deserialize, Serialize};

/// Result of the thermal fixed point: die temperature and total leakage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalState {
    /// Die temperature, °C.
    pub temp_c: f64,
    /// Leakage power at that temperature, W.
    pub leak_w: f64,
}

/// Leakage at temperature `temp_c` given nominal (45 °C) leakage
/// `leak_nominal_w`.
pub fn leakage_at(params: &SimParams, leak_nominal_w: f64, temp_c: f64) -> f64 {
    leak_nominal_w * (1.0 + params.leak_per_c * (temp_c - 45.0)).max(0.2)
}

/// Solves the temperature/leakage fixed point for a package dissipating
/// `dynamic_w` of dynamic power with `leak_nominal_w` of leakage at 45 °C.
///
/// Iterates `T = T_idle + k·(P_dyn + P_leak(T))` a few times; convergence
/// is geometric with ratio `k · leak_per_c · leak_nominal`, far below 1 for
/// default parameters.
pub fn solve(params: &SimParams, dynamic_w: f64, leak_nominal_w: f64) -> ThermalState {
    let mut temp_c = params.temp_idle_c + params.temp_c_per_w * dynamic_w;
    let mut leak_w = leakage_at(params, leak_nominal_w, temp_c);
    for _ in 0..4 {
        temp_c = params.temp_idle_c + params.temp_c_per_w * (dynamic_w + leak_w);
        leak_w = leakage_at(params, leak_nominal_w, temp_c);
    }
    ThermalState { temp_c, leak_w }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_grows_with_temperature() {
        let p = SimParams::default();
        assert!(leakage_at(&p, 10.0, 80.0) > leakage_at(&p, 10.0, 50.0));
    }

    #[test]
    fn leakage_floor_is_positive() {
        let p = SimParams::default();
        assert!(leakage_at(&p, 10.0, -200.0) > 0.0);
    }

    #[test]
    fn fixed_point_is_consistent() {
        let p = SimParams::default();
        let st = solve(&p, 60.0, 12.0);
        let t_check = p.temp_idle_c + p.temp_c_per_w * (60.0 + st.leak_w);
        assert!(
            (st.temp_c - t_check).abs() < 0.05,
            "temp residual too large"
        );
        let l_check = leakage_at(&p, 12.0, st.temp_c);
        assert!((st.leak_w - l_check).abs() < 0.05);
    }

    #[test]
    fn more_dynamic_power_means_more_leakage() {
        let p = SimParams::default();
        let low = solve(&p, 20.0, 12.0);
        let high = solve(&p, 80.0, 12.0);
        assert!(high.temp_c > low.temp_c);
        assert!(high.leak_w > low.leak_w);
    }

    #[test]
    fn zero_power_is_near_idle_temp() {
        let p = SimParams::default();
        let st = solve(&p, 0.0, 0.0);
        assert!((st.temp_c - p.temp_idle_c).abs() < 1e-9);
        assert_eq!(st.leak_w, 0.0);
    }
}
