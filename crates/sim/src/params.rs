//! Calibration constants for the APU model.
//!
//! The defaults are calibrated so that chip-level numbers land in the
//! A10-7850K's envelope: a 95 W TDP, ~20–25 W of busy-wait CPU power at P1,
//! ~30–40 W of GPU dynamic power at DPM4 with 8 CUs, and a memory system
//! that saturates at 12.8 GB/s with the 800 MHz DRAM clock.

use serde::{Deserialize, Serialize};

/// Tunable constants of the performance, power, and thermal models.
///
/// # Examples
///
/// ```
/// use gpm_sim::SimParams;
///
/// let mut p = SimParams::default();
/// p.tdp_w = 65.0; // model a lower-power part
/// assert!(p.tdp_w < SimParams::default().tdp_w);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    // ---- performance ----
    /// SIMD lanes per compute unit (GCN: 4 SIMDs × 16 lanes).
    pub lanes_per_cu: f64,
    /// Peak DRAM bytes/s per MHz of memory clock (dual-channel DDR3:
    /// 800 MHz → 12.8 GB/s).
    pub dram_gbps_per_mhz: f64,
    /// NB/interconnect bandwidth in GB/s per GHz of NB clock. Chosen so the
    /// link just saturates DRAM at NB2 (1.4 GHz), matching the plateau of
    /// Figure 2(b).
    pub nb_link_gbps_per_ghz: f64,
    /// L2 bandwidth in GB/s per CU per GHz of GPU clock.
    pub l2_gbps_per_cu_ghz: f64,
    /// Fraction of the shorter of (compute, memory) phases that does *not*
    /// overlap with the longer phase (0 = perfect overlap).
    pub overlap_penalty: f64,
    /// Multiplier on memory latency when LDS bank conflicts occur.
    pub lds_conflict_penalty: f64,

    // ---- power ----
    /// GPU dynamic power coefficient, W per (CU · V² · GHz).
    pub gpu_cv2f_w: f64,
    /// NB dynamic power coefficient, W per (V² · GHz).
    pub nb_cv2f_w: f64,
    /// DRAM static power, W.
    pub dram_static_w: f64,
    /// DRAM access energy, J per GB actually transferred.
    pub dram_j_per_gb: f64,
    /// CPU package dynamic power at P1 with 100% activity, W.
    pub cpu_dyn_max_w: f64,
    /// CPU activity factor while busy-waiting on the GPU.
    pub cpu_busywait_activity: f64,
    /// GPU leakage at nominal voltage/temperature, W per powered CU.
    pub gpu_leak_w_per_cu: f64,
    /// GPU uncore leakage (always-on), W.
    pub gpu_uncore_leak_w: f64,
    /// CPU leakage at nominal voltage/temperature, W.
    pub cpu_leak_w: f64,
    /// Remaining board/SoC power not attributed to CPU/GPU/NB/DRAM, W.
    pub soc_other_w: f64,
    /// Thermal design power of the package, W.
    pub tdp_w: f64,

    // ---- thermal ----
    /// Ambient-referenced die temperature at zero power, °C.
    pub temp_idle_c: f64,
    /// Die temperature rise per watt of package power, °C/W.
    pub temp_c_per_w: f64,
    /// Leakage increase per °C above 45 °C (fractional).
    pub leak_per_c: f64,

    // ---- measurement ----
    /// Relative standard deviation of multiplicative measurement noise
    /// applied to time and power (0 disables noise).
    pub noise_rel_std: f64,
    /// Seed mixed into the per-(kernel, config) noise streams.
    pub noise_seed: u64,

    // ---- transitions ----
    /// Multiplier on DVFS state-transition latencies
    /// (see [`crate::transition`]); 0 disables the model, matching the
    /// paper's free-transition assumption.
    pub dvfs_transition_scale: f64,
}

impl Default for SimParams {
    fn default() -> SimParams {
        SimParams {
            lanes_per_cu: 64.0,
            dram_gbps_per_mhz: 0.016,
            nb_link_gbps_per_ghz: 9.15,
            l2_gbps_per_cu_ghz: 28.0,
            overlap_penalty: 0.18,
            lds_conflict_penalty: 0.35,

            gpu_cv2f_w: 4.0,
            nb_cv2f_w: 2.4,
            dram_static_w: 1.2,
            dram_j_per_gb: 0.45,
            cpu_dyn_max_w: 32.0,
            cpu_busywait_activity: 0.65,
            gpu_leak_w_per_cu: 0.55,
            gpu_uncore_leak_w: 2.0,
            cpu_leak_w: 5.5,
            soc_other_w: 3.0,
            tdp_w: 95.0,

            temp_idle_c: 38.0,
            temp_c_per_w: 0.42,
            leak_per_c: 0.011,

            noise_rel_std: 0.02,
            noise_seed: 0x9e3779b97f4a7c15,

            dvfs_transition_scale: 0.0,
        }
    }
}

impl SimParams {
    /// Parameters with measurement noise disabled; useful for analytic
    /// tests that require exact model arithmetic.
    pub fn noiseless() -> SimParams {
        SimParams {
            noise_rel_std: 0.0,
            ..SimParams::default()
        }
    }

    /// Peak DRAM bandwidth in GB/s at the given memory clock in MHz.
    pub fn dram_bandwidth_gbps(&self, mem_freq_mhz: f64) -> f64 {
        self.dram_gbps_per_mhz * mem_freq_mhz
    }

    /// NB link bandwidth in GB/s at the given NB clock in GHz.
    pub fn nb_link_bandwidth_gbps(&self, nb_freq_ghz: f64) -> f64 {
        self.nb_link_gbps_per_ghz * nb_freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_hw::NbState;

    #[test]
    fn dram_bandwidth_at_800mhz_is_12_8() {
        let p = SimParams::default();
        assert!((p.dram_bandwidth_gbps(800.0) - 12.8).abs() < 1e-9);
    }

    #[test]
    fn nb2_link_saturates_dram() {
        // The defining property behind the Figure 2(b) plateau: from NB2 on,
        // the NB link is at least as fast as DRAM, so NB0–NB2 perform alike
        // for memory-bound kernels.
        let p = SimParams::default();
        let dram = p.dram_bandwidth_gbps(NbState::Nb2.mem_freq_mhz());
        let link = p.nb_link_bandwidth_gbps(NbState::Nb2.freq_ghz());
        assert!(link >= dram, "link {link} must saturate dram {dram}");
    }

    #[test]
    fn nb3_is_dram_limited() {
        let p = SimParams::default();
        let dram = p.dram_bandwidth_gbps(NbState::Nb3.mem_freq_mhz());
        let link = p.nb_link_bandwidth_gbps(NbState::Nb3.freq_ghz());
        assert!(dram < link);
        assert!(dram < 6.0);
    }

    #[test]
    fn noiseless_disables_noise_only() {
        let p = SimParams::noiseless();
        assert_eq!(p.noise_rel_std, 0.0);
        assert_eq!(p.tdp_w, SimParams::default().tdp_w);
    }

    #[test]
    fn default_tdp_matches_part() {
        assert_eq!(SimParams::default().tdp_w, 95.0);
    }
}
